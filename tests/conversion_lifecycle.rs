//! Cross-crate integration: the full content lifecycle the paper sketches
//! in §4.2 — a traditional page is converted to SWW form (prompt
//! inversion + bullets), stored, served, and regenerated on a client —
//! with fidelity measured at the end of the chain.

use std::collections::HashMap;
use sww::core::cms::{Cms, Template};
use sww::core::convert::Converter;
use sww::core::{GenAbility, GenerativeClient, GenerativeServer, SiteContent};
use sww::energy::device::{profile, DeviceKind};
use sww::genai::diffusion::{DiffusionModel, ImageModelKind};
use sww::genai::image::codec;
use sww::genai::metrics::clip;

#[tokio::test(flavor = "multi_thread")]
async fn convert_store_serve_regenerate() {
    // 1. The "legacy" page with a real stock image.
    let camera = DiffusionModel::new(ImageModelKind::Dalle3);
    let stock = camera.generate(
        "a wide mountain landscape with a river valley",
        224,
        224,
        15,
    );
    let stock_encoded = codec::encode(&stock, 70);
    let legacy_html = r#"<html><body>
        <h1>Trips</h1>
        <img src="img/stock.jpg" width="224" height="224">
        <p>The valley route rewards unhurried walkers with quiet paths that follow the river
        between the old stone villages, and the hills above the eastern bank offer wide views
        across the whole region toward the distant ranges that close the horizon on clear days.</p>
    </body></html>"#;

    // 2. Convert (CMS tags the stock image generatable by default).
    let mut cms = Cms::new();
    cms.register(Template::Blog, "img/stock.jpg");
    let store: HashMap<&str, Vec<u8>> = HashMap::from([("img/stock.jpg", stock_encoded.clone())]);
    let report = Converter::new(&cms).convert_page(legacy_html, |src| store.get(src).cloned());
    assert_eq!(report.items.len(), 2, "image + long text converted");
    assert!(report.compression_ratio() > 5.0);

    // 3. Store and serve the converted page.
    let mut site = SiteContent::new();
    site.add_page("/trips", report.html.clone());
    let converted_stored = site.stored_bytes();
    assert!(
        converted_stored < (legacy_html.len() + stock_encoded.len()) as u64,
        "SWW form must be smaller than legacy page + media"
    );
    let server = GenerativeServer::builder()
        .site(site)
        .ability(GenAbility::full())
        .build();
    let (a, b) = tokio::io::duplex(1 << 20);
    tokio::spawn(async move {
        let _ = server.serve_stream(b).await;
    });

    // 4. A client fetches and regenerates.
    let mut client = GenerativeClient::connect(a, GenAbility::full(), profile(DeviceKind::Laptop))
        .await
        .unwrap();
    let (page, stats) = client.fetch_page("/trips").await.unwrap();
    assert_eq!(page.generated_count(), 1);
    assert_eq!(page.expanded_texts.len(), 1);
    assert!(stats.wire_bytes < stock_encoded.len() as u64);

    // 5. End-of-chain fidelity: the regenerated image relates to the
    //    inverted prompt far better than chance.
    let regenerated = &page.resources[0].image;
    let prompt = report
        .items
        .iter()
        .find(|i| i.source == "img/stock.jpg")
        .map(|_| {
            // Recover the prompt from the converted page itself.
            let doc = sww::html::parse(&report.html);
            sww::html::gencontent::extract(&doc)
                .into_iter()
                .find(|g| g.content_type == sww::html::ContentType::Img)
                .unwrap()
                .prompt()
                .to_owned()
        })
        .unwrap();
    let score = clip::clip_score(regenerated, &prompt);
    assert!(
        score > clip::RANDOM_BASELINE + 0.05,
        "regenerated CLIP {score:.3} vs random {:.2}",
        clip::RANDOM_BASELINE
    );
}

#[test]
fn conversion_is_idempotent() {
    // Converting an already-converted page changes nothing: no <img> or
    // long <p> remains to convert.
    let cms = Cms::new();
    let html = sww::html::gencontent::image_div("a hill", "h.jpg", 64, 64);
    let report = Converter::new(&cms).convert_page(&html, |_| None);
    assert!(report.items.is_empty());
    let doc = sww::html::parse(&report.html);
    assert_eq!(sww::html::gencontent::extract(&doc).len(), 1);
}
