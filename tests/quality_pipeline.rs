//! Cross-crate integration: quality metrics measured through the whole
//! stack, and property-based checks of system invariants.

use proptest::prelude::*;
use sww::genai::diffusion::{DiffusionModel, ImageModelKind};
use sww::genai::image::codec;
use sww::genai::metrics::clip;
use sww::genai::text::{bullets, TextModel, TextModelKind};
use sww::html::gencontent;

#[test]
fn codec_round_trip_preserves_clip_score() {
    // Lossy encoding at serving quality must not destroy the semantic
    // signal the CLIP metric reads.
    let prompt = "a mountain landscape with a winding river at dusk";
    let model = DiffusionModel::new(ImageModelKind::Sd35Medium);
    let img = model.generate(prompt, 224, 224, 15);
    let decoded = codec::decode(&codec::encode(&img, 55)).unwrap();
    let before = clip::clip_score(&img, prompt);
    let after = clip::clip_score(&decoded, prompt);
    assert!(
        (before - after).abs() < 0.03,
        "CLIP drift through codec: {before:.3} → {after:.3}"
    );
}

#[test]
fn upscaled_delivery_preserves_clip_score() {
    let prompt = "a sandy beach with turquoise water, aerial photograph";
    let model = DiffusionModel::new(ImageModelKind::Sd3Medium);
    let small = model.generate(prompt, 128, 128, 15);
    let up = sww::genai::upscale::upscale(&small, 2);
    let s_small = clip::clip_score(&small, prompt);
    let s_up = clip::clip_score(&up, prompt);
    assert!((s_small - s_up).abs() < 0.05, "{s_small:.3} vs {s_up:.3}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn any_prompt_generates_valid_media(prompt in "[a-z ]{3,60}", side in 16u32..96) {
        let model = DiffusionModel::new(ImageModelKind::Sd21Base);
        let img = model.generate(&prompt, side, side, 5);
        prop_assert_eq!((img.width(), img.height()), (side, side));
        // Encoded form decodes to identical dimensions.
        let dec = codec::decode(&codec::encode(&img, 50)).unwrap();
        prop_assert_eq!((dec.width(), dec.height()), (side, side));
    }

    #[test]
    fn gencontent_divisions_always_roundtrip(prompt in "[ -~&&[^'<>]]{1,200}", w in 1u32..2048, h in 1u32..2048) {
        let html = gencontent::image_div(&prompt, "x.jpg", w, h);
        let doc = sww::html::parse(&html);
        let items = gencontent::extract(&doc);
        prop_assert_eq!(items.len(), 1);
        prop_assert_eq!(items[0].width(), w);
        prop_assert_eq!(items[0].height(), h);
    }

    #[test]
    fn expansion_respects_overshoot_envelope(target in 20usize..300, extra in "[a-z]{1,12}") {
        let model = TextModel::new(TextModelKind::DeepSeekR1_8B);
        let blist = vec!["alpha beta gamma".to_string(), extra];
        let text = model.expand(&blist, target);
        let overshoot = sww::genai::text::word_length_overshoot(&text, target);
        // The ±20% clamp plus sentence-boundary slack.
        prop_assert!(overshoot.abs() < 0.65, "target {} overshoot {:.2}", target, overshoot);
    }

    #[test]
    fn bullets_never_grow_content_words(text in "[a-z ]{10,400}") {
        let blist = bullets::to_bullets(&text, 8);
        let bullet_words: usize = blist.iter().map(|b| b.split(' ').count()).sum();
        let text_words = text.split_whitespace().count();
        prop_assert!(bullet_words <= text_words);
    }
}
