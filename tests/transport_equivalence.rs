//! Transport equivalence: the same `GenerativeServer` must answer
//! byte-identically over HTTP/2 and HTTP/3 — for every route, in every
//! negotiated mode. Both framings drive the one dispatch core, so any
//! divergence here means a transport adapter leaked semantics.

use sww::core::{GenAbility, GenerativeServer, SiteContent};
use sww::html::gencontent;
use sww::http2::{Request, Response};
use sww::http3::H3ClientConnection;

/// A multi-recipe page plus a static asset: the routes that matter to
/// both serving modes.
fn site() -> SiteContent {
    let mut s = SiteContent::new();
    let recipes: String = (0..3)
        .map(|r| {
            gencontent::image_div(
                &format!("equivalence recipe {r} granite tarn"),
                &format!("eq{r}.jpg"),
                64,
                64,
            )
        })
        .collect();
    s.add_page("/multi", format!("<html><body>{recipes}</body></html>"));
    s.add_asset("/static.bin", &b"transport-agnostic-bytes"[..]);
    s
}

async fn over_h2(server: &GenerativeServer, ability: GenAbility, paths: &[&str]) -> Vec<Response> {
    let (a, b) = tokio::io::duplex(1 << 20);
    let srv = server.clone();
    tokio::spawn(async move {
        let _ = srv.serve_stream(b).await;
    });
    let mut conn = sww::http2::ClientConnection::handshake(a, ability)
        .await
        .unwrap();
    let mut out = Vec::new();
    for path in paths {
        out.push(conn.send_request(&Request::get(*path)).await.unwrap());
    }
    let _ = conn.close().await;
    out
}

async fn over_h3(server: &GenerativeServer, ability: GenAbility, paths: &[&str]) -> Vec<Response> {
    let (a, b) = tokio::io::duplex(1 << 20);
    let srv = server.clone();
    tokio::spawn(async move {
        let _ = srv.serve_h3_stream(b).await;
    });
    let mut conn = H3ClientConnection::handshake(a, ability).await.unwrap();
    let reqs: Vec<Request> = paths.iter().map(|p| Request::get(*p)).collect();
    conn.send_requests(&reqs).await.unwrap()
}

fn assert_equivalent(h2: &[Response], h3: &[Response], paths: &[&str]) {
    for ((a, b), path) in h2.iter().zip(h3).zip(paths) {
        assert_eq!(a.status, b.status, "status diverged on {path}");
        assert_eq!(a.body, b.body, "body diverged on {path}");
        assert_eq!(
            a.headers.get("x-sww-mode"),
            b.headers.get("x-sww-mode"),
            "serve mode diverged on {path}"
        );
        assert_eq!(
            a.headers.get("content-type"),
            b.headers.get("content-type"),
            "content type diverged on {path}"
        );
    }
}

#[tokio::test(flavor = "multi_thread")]
async fn generative_clients_get_identical_bytes() {
    let server = GenerativeServer::builder()
        .site(site())
        .ability(GenAbility::full())
        .build();
    let paths = ["/multi", "/static.bin"];
    let h2 = over_h2(&server, GenAbility::full(), &paths).await;
    let h3 = over_h3(&server, GenAbility::full(), &paths).await;
    assert_eq!(h2[0].headers.get("x-sww-mode"), Some("generative"));
    assert_equivalent(&h2, &h3, &paths);
}

#[tokio::test(flavor = "multi_thread")]
async fn naive_clients_get_identical_materialized_recipes() {
    // Server-generated mode: the page is materialized, then each
    // per-recipe payload is fetched individually — all of it must be
    // bit-identical across transports (generation is deterministic and
    // transport-blind).
    let server = GenerativeServer::builder()
        .site(site())
        .ability(GenAbility::full())
        .build();
    let paths = [
        "/multi",
        "/generated/eq0.jpg",
        "/generated/eq1.jpg",
        "/generated/eq2.jpg",
        "/static.bin",
    ];
    let h2 = over_h2(&server, GenAbility::none(), &paths).await;
    let h3 = over_h3(&server, GenAbility::none(), &paths).await;
    assert_eq!(h2[0].headers.get("x-sww-mode"), Some("server-generated"));
    for (resp, path) in h2[1..4].iter().zip(&paths[1..4]) {
        assert_eq!(resp.status, 200, "GET {path}");
        assert!(
            sww::genai::codec::decode(&resp.body).is_ok(),
            "{path} must decode as an image"
        );
    }
    assert_equivalent(&h2, &h3, &paths);
}

#[tokio::test(flavor = "multi_thread")]
async fn errors_flow_through_the_same_choke_point_on_both_transports() {
    let server = GenerativeServer::builder()
        .site(site())
        .ability(GenAbility::full())
        .build();
    let paths = ["/missing"];
    let h2 = over_h2(&server, GenAbility::full(), &paths).await;
    let h3 = over_h3(&server, GenAbility::full(), &paths).await;
    assert_eq!(h2[0].status, 404);
    assert_eq!(h3[0].status, 404);
    assert_eq!(
        h2[0].headers.get("x-sww-error"),
        h3[0].headers.get("x-sww-error")
    );
    assert_eq!(h2[0].body, h3[0].body, "error payloads must match too");
}
