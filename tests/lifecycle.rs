//! Request-lifecycle suite: the acceptance tests for deadline
//! propagation, cooperative cancellation, and overload protection.
//!
//! Three end-to-end properties over the real serving stack:
//!
//! 1. **No work past the deadline** — under aggressive latency chaos
//!    (`engine.generate=latency:1.0:40`) and a tight 10 ms default
//!    deadline, every request is either shed at admission (`503`) or
//!    cancelled cooperatively and answered `504`; zero generations
//!    complete, and the `/metrics` exposition reconciles **exactly**
//!    with the observed statuses: `sww_deadline_exceeded_total` equals
//!    the `504` count, `sww_shed_total` equals the `503` count, and
//!    every `504` recorded exactly one `sww_cancelled_total` site.
//! 2. **Cancelled leader hands off** — when two requests share a
//!    single-flight generation and the deadline-bounded one is
//!    cancelled, the surviving unbounded request still receives the
//!    image, with exactly one generation run, whichever request
//!    happened to lead the flight.
//! 3. **Breaker trips and recovers** — consecutive generation faults
//!    open the per-model circuit breaker (instant `503` sheds, no
//!    backend calls), and after the cooldown a half-open probe re-closes
//!    it and traffic flows again.

use std::sync::Mutex;
use std::time::Duration;
use sww::core::faults::{self, ChaosSpec};
use sww::core::{BreakerConfig, GenAbility, GenerativeServer, SiteContent};
use sww::html::gencontent;
use sww::http2::Request;

/// The fault registry and the metrics registry are process-global, so
/// the tests in this binary must not interleave.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// One page per prompt, so every page costs its own generation and no
/// two requests coalesce unless the test wants them to.
fn site(pages: usize) -> SiteContent {
    let mut site = SiteContent::new();
    for p in 0..pages {
        site.add_page(
            format!("/page/{p}"),
            format!(
                "<html><body>{}</body></html>",
                gencontent::image_div(
                    &format!("lifecycle prompt {p} across the moor"),
                    &format!("lifecycle{p}.jpg"),
                    32,
                    32,
                )
            ),
        );
    }
    site
}

/// Sum every series of a counter family in the exposition
/// (`name{labels} value` and bare `name value` lines).
fn sum_family(exposition: &str, name: &str) -> f64 {
    exposition
        .lines()
        .filter_map(|line| {
            let rest = line.strip_prefix(name)?;
            let rest = match rest.as_bytes().first() {
                Some(b'{') => &rest[rest.find('}')? + 1..],
                Some(b' ') => rest,
                _ => return None,
            };
            rest.trim().parse::<f64>().ok()
        })
        .sum()
}

/// Value of an exact unlabeled series line (`name value`).
fn series_value(exposition: &str, series: &str) -> Option<f64> {
    exposition.lines().find_map(|line| {
        let rest = line.strip_prefix(series)?;
        rest.strip_prefix(' ')?.trim().parse().ok()
    })
}

/// Scrape `/metrics` through the same dispatch path as every other
/// request, with a generous explicit deadline so the scrape itself can
/// never trip the tight default deadline under test.
fn scrape(server: &GenerativeServer) -> String {
    let mut req = Request::get("/metrics");
    req.headers.insert("x-sww-deadline-ms", "60000");
    let resp = server.accept(GenAbility::none()).handle(&req);
    assert_eq!(resp.status, 200, "/metrics must stay readable");
    String::from_utf8(resp.body.to_vec()).expect("utf-8 exposition")
}

/// The tentpole acceptance test: aggressive latency chaos plus a tight
/// deadline means **zero** jobs complete past their deadline — every
/// request is shed (`503`) or cancelled (`504`), nothing generates, and
/// the metrics exposition reconciles exactly with the observed statuses.
#[test]
fn tight_deadlines_under_latency_chaos_reconcile_exactly() {
    let _serial = serial();
    const THREADS: usize = 4;
    const REQUESTS: usize = 3;
    sww::obs::reset();
    faults::clear();
    // Every generation sleeps 40 ms; every request has a 10 ms budget.
    faults::install(
        &ChaosSpec::parse("seed=7,engine.generate=latency:1.0:40").expect("spec parses"),
    );

    let server = GenerativeServer::builder()
        .site(site(THREADS * REQUESTS))
        .workers(2)
        .default_deadline(Duration::from_millis(10))
        .build();

    // Distinct page per request: no coalescing, so "zero generations"
    // below proves no single job ran to completion past its deadline.
    let (mut sheds, mut misses) = (0u64, 0u64);
    std::thread::scope(|scope| {
        let tallies: Vec<_> = (0..THREADS)
            .map(|t| {
                let session = server.accept(GenAbility::none());
                scope.spawn(move || {
                    let (mut shed, mut miss) = (0u64, 0u64);
                    for i in 0..REQUESTS {
                        let path = format!("/page/{}", t * REQUESTS + i);
                        let resp = session.handle(&Request::get(&path));
                        match resp.status {
                            503 => shed += 1,
                            504 => miss += 1,
                            other => panic!("GET {path}: unexpected status {other}"),
                        }
                    }
                    (shed, miss)
                })
            })
            .collect();
        for t in tallies {
            let (shed, miss) = t.join().expect("client thread");
            sheds += shed;
            misses += miss;
        }
    });

    // Accounting closes: every request was shed or cancelled, and the
    // engine never ran a generation to completion.
    assert_eq!(sheds + misses, (THREADS * REQUESTS) as u64);
    assert!(misses >= 1, "at least the first admitted request must 504");
    assert_eq!(server.engine().generations(), 0, "no job may complete");

    // Exact reconciliation against /metrics: each 504 was counted once,
    // each admission shed was counted once, and each 504 recorded
    // exactly one cancellation site (pool.queue or denoise).
    let exposition = scrape(&server);
    assert_eq!(
        series_value(&exposition, "sww_deadline_exceeded_total"),
        Some(misses as f64),
        "504 exposition:\n{exposition}"
    );
    assert_eq!(
        sum_family(&exposition, "sww_shed_total"),
        sheds as f64,
        "shed exposition:\n{exposition}"
    );
    assert_eq!(
        sum_family(&exposition, "sww_cancelled_total"),
        misses as f64,
        "cancel exposition:\n{exposition}"
    );

    faults::clear();
}

/// A cancelled request sharing a flight with a patient one must not
/// poison it: whichever request leads, exactly one generation runs, the
/// unbounded request gets the image, and the bounded request gets `504`.
#[test]
fn cancelled_flight_leader_hands_off_to_surviving_waiter() {
    let _serial = serial();
    sww::obs::reset();
    faults::clear();
    // 30 ms of injected latency holds the flight open long enough for
    // the second request to join it.
    faults::install(
        &ChaosSpec::parse("seed=11,engine.generate=latency:1.0:30").expect("spec parses"),
    );

    let server = GenerativeServer::builder().site(site(1)).build();
    std::thread::scope(|scope| {
        let bounded = {
            let session = server.accept(GenAbility::none());
            scope.spawn(move || {
                let mut req = Request::get("/page/0");
                req.headers.insert("x-sww-deadline-ms", "10");
                session.handle(&req)
            })
        };
        // Start the unbounded request while the bounded one is (very
        // likely) mid-flight. Every interleaving — waiter adopts the
        // cancelled leader's image, bounded waiter gives up on the
        // unbounded leader, or the two requests miss each other entirely
        // — must end in the same observable state.
        std::thread::sleep(Duration::from_millis(5));
        let unbounded = {
            let session = server.accept(GenAbility::none());
            scope.spawn(move || session.handle(&Request::get("/page/0")))
        };
        assert_eq!(bounded.join().expect("bounded request").status, 504);
        assert_eq!(unbounded.join().expect("unbounded request").status, 200);
    });
    assert_eq!(server.engine().generations(), 1, "exactly one generation");

    let exposition = scrape(&server);
    assert_eq!(
        series_value(&exposition, "sww_deadline_exceeded_total"),
        Some(1.0),
        "504 exposition:\n{exposition}"
    );
    assert_eq!(
        sum_family(&exposition, "sww_cancelled_total"),
        1.0,
        "cancel exposition:\n{exposition}"
    );

    faults::clear();
}

/// Consecutive generation faults trip the breaker (instant sheds, no
/// backend calls); after the cooldown one half-open probe re-closes it.
#[test]
fn breaker_trips_and_recovers_end_to_end() {
    let _serial = serial();
    sww::obs::reset();
    faults::clear();
    faults::install(&ChaosSpec::parse("seed=3,engine.generate=error:1.0").expect("spec parses"));

    let server = GenerativeServer::builder()
        .site(site(5))
        .breaker(BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(100),
        })
        .build();
    let session = server.accept(GenAbility::none());

    // Two consecutive injected generation faults surface as 500s and
    // trip the breaker.
    assert_eq!(session.handle(&Request::get("/page/0")).status, 500);
    assert_eq!(session.handle(&Request::get("/page/1")).status, 500);
    assert_eq!(faults::injected_total(), 2);

    // Open breaker: the next request sheds before the engine is ever
    // consulted — no new fault draw, advisory Retry-After attached.
    let shed = session.handle(&Request::get("/page/2"));
    assert_eq!(shed.status, 503);
    assert!(shed.headers.get("retry-after").is_some());
    assert_eq!(faults::injected_total(), 2, "no backend call while open");
    assert_eq!(server.engine().generations(), 0);

    // Backend heals; after the cooldown the half-open probe succeeds,
    // the breaker re-closes, and traffic flows again.
    faults::clear();
    std::thread::sleep(Duration::from_millis(120));
    assert_eq!(session.handle(&Request::get("/page/3")).status, 200);
    assert_eq!(session.handle(&Request::get("/page/4")).status, 200);
    assert_eq!(server.engine().generations(), 2);

    let exposition = scrape(&server);
    assert_eq!(
        sum_family(&exposition, "sww_shed_total"),
        1.0,
        "shed exposition:\n{exposition}"
    );
    assert_eq!(
        sum_family(&exposition, "sww_breaker_state"),
        0.0,
        "breaker must read closed again:\n{exposition}"
    );
}
