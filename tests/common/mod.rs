//! Helpers shared by the integration suites (`mod common;` per test
//! crate — compiled into each, so unused helpers in any one suite are
//! expected).
//!
//! Every real-TCP test binds [`EPHEMERAL`]: the kernel assigns a free
//! port per listener, so suites running in parallel (and repeated runs
//! on a busy CI host) can never collide on a hard-coded port.

#![allow(dead_code)]

use std::net::SocketAddr;
use sww::core::{EdgeRouter, GenerativeServer};

/// The port-0 wildcard address every test listener binds.
pub const EPHEMERAL: &str = "127.0.0.1:0";

/// Bind an HTTP/2 listener for `server` on an ephemeral port and return
/// the address the kernel picked.
pub async fn spawn_h2(server: &GenerativeServer) -> SocketAddr {
    server.spawn_tcp(EPHEMERAL).await.expect("bind h2 listener")
}

/// Bind an HTTP/3 listener for `server` on an ephemeral port.
pub async fn spawn_h3(server: &GenerativeServer) -> SocketAddr {
    server
        .spawn_tcp_h3(EPHEMERAL)
        .await
        .expect("bind h3 listener")
}

/// Bind an edge cluster's front listener on an ephemeral port
/// (connections round-robin across entry nodes).
pub async fn spawn_edge(router: &EdgeRouter) -> SocketAddr {
    router
        .spawn_tcp(EPHEMERAL)
        .await
        .expect("bind edge listener")
}

/// Connect to a listener one of the spawn helpers bound.
pub async fn connect(addr: SocketAddr) -> tokio::net::TcpStream {
    tokio::net::TcpStream::connect(addr).await.expect("connect")
}
