//! The h3 TCP front end end-to-end: `spawn_tcp_h3` binds a real
//! listener and an `H3ClientConnection` over a `TcpStream` negotiates
//! and fetches — the surface `sww serve --transport h3|both` exposes,
//! which the duplex-based suites never touch.

mod common;

use sww::core::{GenAbility, GenerativeServer, SiteContent};
use sww::html::gencontent;
use sww::http2::Request;
use sww::http3::H3ClientConnection;

#[tokio::test(flavor = "multi_thread")]
async fn h3_listener_serves_over_real_tcp() {
    let mut site = SiteContent::new();
    site.add_page(
        "/tcp",
        format!(
            "<html><body>{}</body></html>",
            gencontent::image_div("a red kite over chalk cliffs", "kite.jpg", 64, 64)
        ),
    );
    let server = GenerativeServer::builder()
        .site(site)
        .ability(GenAbility::full())
        .build();
    let addr = common::spawn_h3(&server).await;

    let sock = common::connect(addr).await;
    let mut client = H3ClientConnection::handshake(sock, GenAbility::full())
        .await
        .unwrap();
    assert!(client.negotiated_ability().can_generate());
    let resp = client.send_request(&Request::get("/tcp")).await.unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.headers.get("x-sww-mode"), Some("generative"));
    let body = String::from_utf8(resp.body.to_vec()).unwrap();
    assert!(body.contains("generated-content"));
}
