//! The distributed generative edge, end to end: an [`EdgeRouter`]
//! cluster must generate each recipe **exactly once cluster-wide**, keep
//! its `/metrics` exposition in exact agreement with per-node counters,
//! survive a chaos node-kill with zero lost responses and byte-identical
//! payloads, and rebalance on join/leave without dropping in-flight
//! work. These are the PR 8 acceptance scenarios (DESIGN.md "Edge
//! tier"), driven through the public surface only.
//!
//! The metrics registry and the chaos fault layer are process-global, so
//! every test in this binary holds [`SERIAL`] — the suite trades
//! parallelism for exact counter arithmetic.

mod common;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use sww::core::{
    EdgeConfig, EdgeRouter, GenAbility, GenerativeClient, GenerativeServer, ServerConfig,
    SiteContent,
};
use sww::energy::device::{profile, DeviceKind};
use sww::html::gencontent;
use sww::http2::{Request, Response};

/// Serializes the whole binary: chaos installs and registry resets are
/// process-wide, and the reconciliation test needs exclusive counters.
static SERIAL: Mutex<()> = Mutex::new(());

const PROMPTS: usize = 10;

/// Ten one-image pages; each page's image recipe is its routing key.
fn edge_site() -> SiteContent {
    let mut site = SiteContent::new();
    for p in 0..PROMPTS {
        site.add_page(
            format!("/page/{p}"),
            format!(
                "<html><body>{}</body></html>",
                gencontent::image_div(
                    &format!("edge prompt {p} over a basalt shore"),
                    &format!("edge{p}.jpg"),
                    64,
                    64
                )
            ),
        );
    }
    site
}

fn cluster(nodes: usize) -> EdgeRouter {
    EdgeRouter::new(
        EdgeConfig {
            nodes,
            ..EdgeConfig::default()
        },
        edge_site(),
        |site| {
            GenerativeServer::from_config(ServerConfig {
                site,
                ..ServerConfig::default()
            })
        },
    )
}

/// One naive GET with bounded retry; a 5xx (dead entry, mid-flight kill)
/// rotates to the next entry node, as a real client re-resolving to a
/// healthy PoP would. Returns the 200 response, or None if every attempt
/// failed — a lost response.
fn get_with_retry(
    router: &EdgeRouter,
    entry: usize,
    path: &str,
    retries: &AtomicU64,
) -> Option<Response> {
    let nodes = router.node_count().max(1);
    for attempt in 0..20 {
        let resp = router.handle(
            (entry + attempt) % nodes,
            GenAbility::none(),
            &Request::get(path),
        );
        if resp.status == 200 {
            return Some(resp);
        }
        retries.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    None
}

/// Sum of every sample of `name` in a Prometheus-text exposition,
/// across all label sets (e.g. the per-node `node="nX"` series).
fn series_sum(text: &str, name: &str) -> f64 {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| {
            let rest = l.strip_prefix(name)?;
            let rest = rest
                .strip_prefix('{')
                .map_or(rest, |r| r.split_once('}').map(|(_, v)| v).unwrap_or(rest));
            rest.trim().parse::<f64>().ok()
        })
        .sum()
}

/// M clients × N nodes over 10 prompts: exactly 10 generations
/// cluster-wide, and the `/metrics` exposition reconciles **exactly**
/// with the per-node counters — every request is a fill-cache hit, a
/// local serve, or a routed peer serve; every engine fetch is a hit, a
/// coalesce, or one of the 10 generations.
#[test]
fn cluster_generates_each_prompt_exactly_once_and_metrics_reconcile() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    sww::obs::reset();

    let nodes = 4usize;
    let threads = 8usize;
    let per_thread = PROMPTS;
    let router = cluster(nodes);
    let retries = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let router = router.clone();
            let retries = Arc::clone(&retries);
            std::thread::spawn(move || {
                for r in 0..per_thread {
                    let p = (t + r) % PROMPTS;
                    get_with_retry(&router, t % nodes, &format!("/page/{p}"), &retries)
                        .expect("no chaos, no lost responses");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let requests = (threads * per_thread) as u64;
    assert_eq!(retries.load(Ordering::Relaxed), 0, "healthy cluster");

    // Cluster-wide exactly-once: 10 prompts, 10 generations, no matter
    // that 8 clients × 4 entry nodes asked 80 times.
    let all = router.nodes();
    let generations: u64 = all.iter().map(|n| n.server().engine().generations()).sum();
    assert_eq!(generations, PROMPTS as u64, "global single-flight");

    // Per-node counter accounting covers every request exactly once.
    let stats: Vec<_> = all.iter().map(|n| n.stats()).collect();
    let fill_hits: u64 = stats.iter().map(|s| s.fill_hits).sum();
    let local: u64 = stats.iter().map(|s| s.local_media).sum();
    let routed: u64 = stats.iter().map(|s| s.peer_serves).sum();
    assert_eq!(
        fill_hits + local + routed,
        requests,
        "fill hits + local + routed must cover every request: {stats:?}"
    );

    // Engine accounting covers every dispatch that reached an owner:
    // `coalesced()` counts the amortized requests (shard-cache hits plus
    // in-flight joins), `generations()` the ones that paid.
    let coalesced: u64 = all.iter().map(|n| n.server().engine().coalesced()).sum();
    assert_eq!(
        coalesced + generations,
        local + routed,
        "every non-fill-cache request is amortized or generates"
    );

    // The /metrics exposition (scraped through the cluster itself) must
    // agree with the in-process counters, number for number.
    let scrape = router.handle(0, GenAbility::none(), &Request::get("/metrics"));
    assert_eq!(scrape.status, 200);
    let text = String::from_utf8(scrape.body.to_vec()).unwrap();
    // The scrape itself is counted at the entry before the text is
    // rendered, so the exposition includes it: requests + 1.
    assert_eq!(
        series_sum(&text, "sww_edge_requests_total"),
        (requests + 1) as f64
    );
    let fills: u64 = stats.iter().map(|s| s.fills).sum();
    assert_eq!(series_sum(&text, "sww_edge_peer_fill_total"), fills as f64);
    assert_eq!(
        series_sum(&text, "sww_edge_fill_hits_total"),
        fill_hits as f64
    );
    assert_eq!(series_sum(&text, "sww_edge_local_total"), local as f64);
    assert_eq!(series_sum(&text, "sww_edge_routed_total"), routed as f64);
    assert_eq!(series_sum(&text, "sww_edge_failover_total"), 0.0);
    assert_eq!(
        series_sum(&text, "sww_cache_coalesced_total"),
        coalesced as f64,
        "global coalesce series vs per-node engine counters"
    );
    assert_eq!(series_sum(&text, "sww_edge_ring_nodes"), nodes as f64);
    assert_eq!(series_sum(&text, "sww_edge_node_alive"), nodes as f64);
}

/// Chaos node-kill: kill the owner of the hottest recipes mid-flight.
/// The router fails over along the ring, clients retry any 5xx, and the
/// run must end with zero lost responses and payloads byte-identical to
/// a 1-node cluster — failover must not change a single byte.
#[test]
fn node_kill_mid_flight_loses_nothing_and_keeps_bytes_identical() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Deterministic generation latency widens the mid-flight window so
    // the kill lands while requests are in the air.
    let spec = sww::core::ChaosSpec::parse("seed=11,engine.generate=latency:1.0:10").unwrap();
    sww::core::faults::install(&spec);

    // Ground truth: a 1-node cluster's page and asset bytes.
    let baseline = cluster(1);
    let mut pages = Vec::new();
    for p in 0..PROMPTS {
        let resp = baseline.handle(0, GenAbility::none(), &Request::get(format!("/page/{p}")));
        assert_eq!(resp.status, 200);
        pages.push(resp.body.to_vec());
    }
    let asset0 = baseline.handle(0, GenAbility::none(), &Request::get("/generated/edge0.jpg"));
    assert_eq!(asset0.status, 200);

    let router = cluster(3);
    // Kill the node owning the most prompts — the worst case.
    let keys: Vec<String> = (0..PROMPTS).map(|p| format!("/page/{p}")).collect();
    let victim = {
        let mut owned = std::collections::HashMap::new();
        for key in &keys {
            *owned.entry(router.owner_of(key).unwrap()).or_insert(0usize) += 1;
        }
        owned.into_iter().max_by_key(|&(_, n)| n).unwrap().0
    };
    {
        let router = router.clone();
        let victim = victim.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(15));
            router.kill(&victim);
        });
    }
    let retries = Arc::new(AtomicU64::new(0));
    let lost = Arc::new(AtomicU64::new(0));
    let mismatched = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..6usize)
        .map(|t| {
            let router = router.clone();
            let retries = Arc::clone(&retries);
            let lost = Arc::clone(&lost);
            let mismatched = Arc::clone(&mismatched);
            let pages = pages.clone();
            std::thread::spawn(move || {
                for r in 0..PROMPTS {
                    let p = (t + r) % PROMPTS;
                    match get_with_retry(&router, t % 3, &format!("/page/{p}"), &retries) {
                        Some(resp) => {
                            if resp.body.as_ref() != pages[p].as_slice() {
                                mismatched.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        None => {
                            lost.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("chaos client thread");
    }
    sww::core::faults::clear();

    assert_eq!(lost.load(Ordering::Relaxed), 0, "zero lost responses");
    assert_eq!(
        mismatched.load(Ordering::Relaxed),
        0,
        "failover payloads must match the 1-node baseline byte for byte"
    );
    let failovers: u64 = router.nodes().iter().map(|n| n.stats().failovers).sum();
    assert!(failovers > 0, "the killed owner must have been skipped");
    // The media asset survives failover byte-identically too: the acting
    // owner regenerated it from the same recipe.
    let after =
        get_with_retry(&router, 0, "/generated/edge0.jpg", &retries).expect("asset after failover");
    assert_eq!(after.body, asset0.body, "regenerated media is identical");
}

/// Join/leave rebalancing: adding a node remaps some recipes onto it
/// without changing a payload byte; removing it drains cleanly (no
/// in-flight work abandoned) and restores the exact pre-join ownership —
/// the ring is a pure function of membership.
#[test]
fn join_then_leave_rebalances_and_drains_without_losing_work() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let router = cluster(2);
    let retries = AtomicU64::new(0);
    let paths: Vec<String> = (0..PROMPTS).map(|p| format!("/page/{p}")).collect();
    let owners_before: Vec<String> = paths.iter().map(|p| router.owner_of(p).unwrap()).collect();
    let bodies: Vec<Vec<u8>> = paths
        .iter()
        .map(|p| {
            get_with_retry(&router, 0, p, &retries)
                .expect("healthy fetch")
                .body
                .to_vec()
        })
        .collect();

    let newcomer = router.join();
    assert_eq!(router.node_count(), 3);
    let owners_joined: Vec<String> = paths.iter().map(|p| router.owner_of(p).unwrap()).collect();
    // Bounded churn: a remapped key may only have moved to the newcomer.
    for (p, (before, after)) in owners_before.iter().zip(&owners_joined).enumerate() {
        if before != after {
            assert_eq!(after, &newcomer, "page {p} moved to a non-newcomer");
        }
    }
    // Every page still serves the same bytes from every entry node.
    for entry in 0..3 {
        for (p, path) in paths.iter().enumerate() {
            let resp = get_with_retry(&router, entry, path, &retries).expect("post-join fetch");
            assert_eq!(resp.body.as_ref(), bodies[p].as_slice(), "entry {entry}");
        }
    }

    let report = router.leave(&newcomer).expect("newcomer was a member");
    assert_eq!(
        report.inflight_at_start, 0,
        "leave() unpublishes before draining, so nothing was in flight"
    );
    assert_eq!(router.node_count(), 2);
    // Pure function of membership: ownership reverts exactly.
    let owners_after: Vec<String> = paths.iter().map(|p| router.owner_of(p).unwrap()).collect();
    assert_eq!(owners_before, owners_after);
    for (p, path) in paths.iter().enumerate() {
        let resp = get_with_retry(&router, 1, path, &retries).expect("post-leave fetch");
        assert_eq!(resp.body.as_ref(), bodies[p].as_slice());
    }
    assert_eq!(retries.load(Ordering::Relaxed), 0, "no 5xx at any point");
}

fn replicated_cluster(nodes: usize, replication: usize) -> EdgeRouter {
    EdgeRouter::new(
        EdgeConfig {
            nodes,
            replication,
            hot_threshold: 2,
            ..EdgeConfig::default()
        },
        edge_site(),
        |site| {
            GenerativeServer::from_config(ServerConfig {
                site,
                ..ServerConfig::default()
            })
        },
    )
}

/// The node owning the most of the ten page keys (ties broken toward
/// the lexicographically smaller id, like the E19 chaos scenario).
fn most_loaded_owner(router: &EdgeRouter) -> String {
    let mut owned = std::collections::HashMap::new();
    for p in 0..PROMPTS {
        *owned
            .entry(router.owner_of(&format!("/page/{p}")).unwrap())
            .or_insert(0usize) += 1;
    }
    owned
        .into_iter()
        .max_by_key(|(id, n)| (*n, std::cmp::Reverse(id.clone())))
        .unwrap()
        .0
}

/// Warm every page at its *owner* entry `rounds` times: fill caches
/// stay empty (a local serve never peer-fills), so what survives an
/// owner kill is the replica machinery alone. Returns the page bodies.
fn warm_at_owners(router: &EdgeRouter, rounds: usize, retries: &AtomicU64) -> Vec<Vec<u8>> {
    let ids = router.node_ids();
    (0..PROMPTS)
        .map(|p| {
            let path = format!("/page/{p}");
            let owner = router.owner_of(&path).unwrap();
            let entry = ids.iter().position(|id| *id == owner).unwrap();
            let mut body = Vec::new();
            for _ in 0..rounds {
                body = get_with_retry(router, entry, &path, retries)
                    .expect("healthy warm fetch")
                    .body
                    .to_vec();
            }
            body
        })
        .collect()
}

/// PR 10 tentpole, end to end: with `replication 2`, killing the
/// most-loaded owner mid-flight serves every in-flight and repeat
/// hot-key request from replicas — zero lost responses, byte-identical
/// payloads, **zero additional generations** — and `/metrics`
/// reconciles exactly with the per-node replica counters. The same
/// scenario at `replication 1` must regenerate at least once: the
/// contrast that proves replicas (not caches) carried the failover.
#[test]
fn replicated_owner_kill_serves_hot_keys_with_zero_regeneration() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    sww::obs::reset();
    let retries = Arc::new(AtomicU64::new(0));

    let router = replicated_cluster(3, 2);
    let bodies = warm_at_owners(&router, 3, &retries);
    let generations_warm: u64 = router
        .nodes()
        .iter()
        .map(|n| n.server().engine().generations())
        .sum();
    assert_eq!(generations_warm, PROMPTS as u64, "one generation per page");
    let pushes: u64 = router
        .nodes()
        .iter()
        .map(|n| n.stats().replica_pushes)
        .sum();
    assert_eq!(pushes, PROMPTS as u64, "every hot page pushed to one seat");

    let victim = most_loaded_owner(&router);
    {
        let router = router.clone();
        let victim = victim.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            router.kill(&victim);
        });
    }
    let lost = Arc::new(AtomicU64::new(0));
    let mismatched = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..6usize)
        .map(|t| {
            let router = router.clone();
            let retries = Arc::clone(&retries);
            let lost = Arc::clone(&lost);
            let mismatched = Arc::clone(&mismatched);
            let bodies = bodies.clone();
            std::thread::spawn(move || {
                for r in 0..2 * PROMPTS {
                    let p = (t + r) % PROMPTS;
                    match get_with_retry(&router, t % 3, &format!("/page/{p}"), &retries) {
                        Some(resp) => {
                            if resp.body.as_ref() != bodies[p].as_slice() {
                                mismatched.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        None => {
                            lost.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("replica client thread");
    }

    assert_eq!(lost.load(Ordering::Relaxed), 0, "zero lost responses");
    assert_eq!(
        mismatched.load(Ordering::Relaxed),
        0,
        "replica payloads must match the owner's bytes exactly"
    );
    let generations_after: u64 = router
        .nodes()
        .iter()
        .map(|n| n.server().engine().generations())
        .sum();
    assert_eq!(
        generations_after, generations_warm,
        "owner death must cost zero additional generations"
    );
    let stats: Vec<_> = router.nodes().iter().map(|n| n.stats()).collect();
    let replica_hits: u64 = stats.iter().map(|s| s.replica_hits).sum();
    assert!(replica_hits > 0, "the victim's keys served from replicas");

    // Exact /metrics reconciliation for the new replica families.
    let scrape = {
        let ids = router.node_ids();
        let entry = ids.iter().position(|id| *id != victim).unwrap();
        router.handle(entry, GenAbility::none(), &Request::get("/metrics"))
    };
    assert_eq!(scrape.status, 200);
    let text = String::from_utf8(scrape.body.to_vec()).unwrap();
    let stats: Vec<_> = router.nodes().iter().map(|n| n.stats()).collect();
    assert_eq!(
        series_sum(&text, "sww_edge_replica_pushes_total"),
        stats.iter().map(|s| s.replica_pushes).sum::<u64>() as f64
    );
    assert_eq!(
        series_sum(&text, "sww_edge_replica_hits_total"),
        stats.iter().map(|s| s.replica_hits).sum::<u64>() as f64
    );
    assert_eq!(
        series_sum(&text, "sww_edge_replica_hints_total"),
        stats.iter().map(|s| s.replica_hints).sum::<u64>() as f64
    );
    assert_eq!(
        series_sum(&text, "sww_edge_replica_handoffs_total"),
        stats.iter().map(|s| s.replica_handoffs).sum::<u64>() as f64
    );

    // The contrast: replication 1 (no replicas) must pay at least one
    // regeneration for the same kill.
    let control = replicated_cluster(3, 1);
    let control_retries = Arc::new(AtomicU64::new(0));
    let control_bodies = warm_at_owners(&control, 3, &control_retries);
    let control_warm: u64 = control
        .nodes()
        .iter()
        .map(|n| n.server().engine().generations())
        .sum();
    let control_victim = most_loaded_owner(&control);
    control.kill(&control_victim);
    for (p, warm_body) in control_bodies.iter().enumerate() {
        let resp = get_with_retry(&control, 0, &format!("/page/{p}"), &control_retries)
            .expect("control fetch");
        assert_eq!(resp.body.as_ref(), warm_body.as_slice());
    }
    let control_after: u64 = control
        .nodes()
        .iter()
        .map(|n| n.server().engine().generations())
        .sum();
    assert!(
        control_after > control_warm,
        "without replicas, failover must re-render ({control_warm} -> {control_after})"
    );
}

/// Degenerate walk, half two: a node flapping alive/dead while requests
/// are mid-successor-walk. Every request must still yield exactly one
/// response (no panic, no hang, no duplicate), byte-identical to the
/// baseline, and no node may generate the page more than once — the
/// engine cache bounds regeneration even under flapping.
#[test]
fn flapping_node_mid_walk_yields_exactly_one_response() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let baseline = cluster(1);
    let retries = Arc::new(AtomicU64::new(0));
    let expected = get_with_retry(&baseline, 0, "/page/0", &retries)
        .expect("baseline fetch")
        .body
        .to_vec();

    let router = cluster(3);
    let flapper = router.owner_of("/page/0").unwrap();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flap_handle = {
        let router = router.clone();
        let flapper = flapper.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut alive = true;
            while !stop.load(Ordering::Relaxed) {
                alive = !alive;
                if alive {
                    router.revive(&flapper);
                } else {
                    router.kill(&flapper);
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            router.revive(&flapper);
        })
    };

    let handles: Vec<_> = (0..4usize)
        .map(|t| {
            let router = router.clone();
            let retries = Arc::clone(&retries);
            let expected = expected.clone();
            std::thread::spawn(move || {
                for _ in 0..20 {
                    let resp = get_with_retry(&router, t, "/page/0", &retries)
                        .expect("flapping must not lose a response");
                    assert_eq!(
                        resp.body.as_ref(),
                        expected.as_slice(),
                        "flapping must not change a byte"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("flapping client thread");
    }
    stop.store(true, Ordering::Relaxed);
    flap_handle.join().expect("flapper thread");

    for node in router.nodes() {
        assert!(
            node.server().engine().generations() <= 1,
            "node {} generated the page {} times — the engine cache must \
             bound regeneration to once per node",
            node.id(),
            node.server().engine().generations()
        );
    }
    let resp = get_with_retry(&router, 0, "/page/0", &retries).expect("post-flap fetch");
    assert_eq!(resp.body.as_ref(), expected.as_slice());
}

/// The cluster's TCP front door: one listener round-robins connections
/// across entry nodes; a naive HTTP/2 client and a full generative
/// client both get correct, deterministic answers.
#[test]
fn edge_cluster_serves_over_real_tcp() {
    // A plain test with its own runtime: the suite-serialization guard
    // (std `Mutex`) must not be held across await points, so the async
    // body runs under `block_on` instead of `#[tokio::test]`.
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(2)
        .enable_all()
        .build()
        .unwrap();
    rt.block_on(edge_cluster_over_tcp());
}

async fn edge_cluster_over_tcp() {
    let router = cluster(3);
    let addr = common::spawn_edge(&router).await;

    // Two naive connections land on different entry nodes (round-robin)
    // yet serve identical bytes.
    let mut naive_bodies = Vec::new();
    for _ in 0..2 {
        let sock = common::connect(addr).await;
        let mut conn = sww::http2::ClientConnection::handshake(sock, GenAbility::none())
            .await
            .unwrap();
        let resp = conn.send_request(&Request::get("/page/3")).await.unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.headers.get("x-sww-mode"), Some("server-generated"));
        naive_bodies.push(resp.body.to_vec());
        let _ = conn.close().await;
    }
    assert_eq!(naive_bodies[0], naive_bodies[1]);

    // A generative client gets the prompt form straight from its entry
    // node — no ring hop, the recipe is the payload.
    let sock = common::connect(addr).await;
    let mut client =
        GenerativeClient::connect(sock, GenAbility::full(), profile(DeviceKind::Laptop))
            .await
            .unwrap();
    assert!(client.negotiated_ability().can_generate());
    let (page, stats) = client.fetch_page("/page/7").await.unwrap();
    assert_eq!(page.generated_count(), 1);
    assert!(stats.wire_bytes < stats.traditional_bytes);
    client.close().await.unwrap();
    let prompt_local: u64 = router.nodes().iter().map(|n| n.stats().prompt_local).sum();
    assert_eq!(prompt_local, 1, "generative page served at the entry");
}
