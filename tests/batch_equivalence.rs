//! Batch equivalence suite: the proof harness for continuous batching.
//!
//! The batched denoising pass keeps one prompt-seeded RNG per latent, so
//! restructuring the loop step-major changes **nothing** about any
//! image's draw sequence. These tests pin that guarantee at every layer:
//!
//! 1. **Scheduler** — for adversarial interleavings (staggered
//!    arrivals, overflowing groups, mixed batch keys), every image that
//!    comes out of [`BatchScheduler::submit`] is byte-identical to the
//!    sequential [`DiffusionModel::generate`] output for its prompt.
//! 2. **Server** — a pooled, batching server materializes pages
//!    byte-identical to an inline, unbatched server, under concurrent
//!    naive sessions.
//! 3. **Chaos** — with `engine.generate` faults injected, a faulting
//!    batch member costs only its own retry: every request still
//!    converges, and every converged body is byte-identical to the
//!    clean unbatched reference.
//! 4. **Bounded wait** — a lone request through a batching server never
//!    waits out the batch deadline, and a member's reported group wait
//!    never exceeds it.
//!
//! The fault and metrics registries are process-global, so the tests in
//! this binary serialize on one mutex (same pattern as the chaos
//! suite).
//!
//! [`BatchScheduler::submit`]: sww::core::BatchScheduler
//! [`DiffusionModel::generate`]: sww::genai::diffusion::DiffusionModel

use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};
use sww::core::cache::Recipe;
use sww::core::faults::{self, ChaosSpec};
use sww::core::{
    BatchConfig, BatchScheduler, GenAbility, GenerativeServer, GenerativeServerBuilder, SiteContent,
};
use sww::genai::diffusion::{DiffusionModel, ImageModelKind};
use sww::html::gencontent;
use sww::http2::Request;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn recipe(prompt: &str, model: ImageModelKind, steps: u32) -> Recipe {
    Recipe {
        prompt: prompt.to_owned(),
        model,
        width: 32,
        height: 32,
        steps,
    }
}

/// One page per prompt, so a multi-threaded fetch storm is all cache
/// misses and everything flows through the batch scheduler.
fn equivalence_site(pages: usize) -> SiteContent {
    let mut site = SiteContent::new();
    for p in 0..pages {
        site.add_page(
            format!("/page/{p}"),
            format!(
                "<html><body>{}</body></html>",
                gencontent::image_div(
                    &format!("equivalence prompt {p} across a tidal flat"),
                    &format!("equiv{p}.jpg"),
                    48,
                    48,
                )
            ),
        );
    }
    site
}

fn batching_server(site: SiteContent, workers: usize, batch_max: usize) -> GenerativeServer {
    GenerativeServerBuilder::default()
        .site(site)
        .workers(workers)
        .batch_max(batch_max)
        .batch_wait(Duration::from_millis(50))
        .build()
}

/// Fetch a path with retry on transient statuses, returning the final
/// 200 body. Mirrors the documented client policy: 500/502/503 are
/// retryable, everything else must be a success.
fn fetch_converged(server: &GenerativeServer, path: &str) -> bytes::Bytes {
    let session = server.accept(GenAbility::none());
    loop {
        let resp = session.handle(&Request::get(path));
        if !matches!(resp.status, 500 | 502 | 503) {
            assert_eq!(resp.status, 200, "GET {path}");
            return resp.body;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Scheduler-level equivalence across adversarial interleavings: three
/// rounds of staggered concurrent submits, groups that overflow the
/// cap, and two incompatible batch keys in flight at once. Every image
/// must match its sequential reference bit for bit.
#[test]
fn scheduler_outputs_are_bit_identical_across_interleavings() {
    let _guard = serial();
    let sched = Arc::new(BatchScheduler::new(BatchConfig {
        max_batch: 3,
        max_wait: Duration::from_millis(40),
    }));
    for round in 0..3 {
        let jobs: Vec<Recipe> = (0..7)
            .map(|i| {
                // Two models and two schedules in flight: four distinct
                // batch keys, none of which may ever share a pass.
                let model = if i % 2 == 0 {
                    ImageModelKind::Sd3Medium
                } else {
                    ImageModelKind::Sd21Base
                };
                let steps = if i % 3 == 0 { 7 } else { 15 };
                recipe(&format!("interleaving round {round} job {i}"), model, steps)
            })
            .collect();
        let outputs: Vec<(Recipe, sww::genai::ImageBuffer)> = std::thread::scope(|scope| {
            jobs.iter()
                .enumerate()
                .map(|(i, job)| {
                    let sched = Arc::clone(&sched);
                    scope.spawn(move || {
                        // Staggered arrivals: some jobs land while a
                        // group is already open, some after it closed.
                        std::thread::sleep(Duration::from_micros((i as u64 % 4) * 300));
                        (job.clone(), sched.submit(job).unwrap().image)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for (job, image) in outputs {
            let reference = DiffusionModel::new(job.model).generate(
                &job.prompt,
                job.width,
                job.height,
                job.steps,
            );
            assert_eq!(
                image, reference,
                "batched output diverged for {:?}",
                job.prompt
            );
        }
    }
    let stats = sched.stats();
    assert_eq!(stats.jobs, 21, "every job went through the scheduler");
    assert!(stats.max_batch <= 3, "cap respected");
}

/// Server-level equivalence: a pooled batching server and an inline
/// unbatched server materialize byte-identical pages, even when the
/// batching server is hit by a concurrent fetch storm.
#[test]
fn batched_server_pages_match_unbatched_reference() {
    let _guard = serial();
    const PAGES: usize = 8;
    let reference = GenerativeServerBuilder::default()
        .site(equivalence_site(PAGES))
        .build();
    let batched = batching_server(equivalence_site(PAGES), 4, 4);

    // Storm the batching server: all pages at once, twice over.
    let barrier = Barrier::new(PAGES * 2);
    std::thread::scope(|scope| {
        for t in 0..PAGES * 2 {
            let batched = &batched;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                fetch_converged(batched, &format!("/page/{}", t % PAGES));
            });
        }
    });
    for p in 0..PAGES {
        let path = format!("/page/{p}");
        assert_eq!(
            fetch_converged(&batched, &path),
            fetch_converged(&reference, &path),
            "{path} diverged under batching"
        );
    }
    let stats = batched.batch_stats().expect("batching enabled");
    assert_eq!(
        stats.jobs, PAGES as u64,
        "one generation per page: single-flight composed with batching"
    );
}

/// Chaos equivalence: a faulting batch member must not corrupt or stall
/// its batch-mates. The `engine.generate` failpoint fires on the flight
/// leader *before* it joins a batch, so an injected fault only removes
/// that one job from the rendezvous; everyone converges by retry and
/// every converged body matches the clean unbatched reference exactly.
#[test]
fn chaos_faults_leave_batch_mates_byte_identical() {
    let _guard = serial();
    const PAGES: usize = 6;
    // Clean reference bodies first — chaos installation is global.
    let reference = GenerativeServerBuilder::default()
        .site(equivalence_site(PAGES))
        .build();
    let expected: Vec<bytes::Bytes> = (0..PAGES)
        .map(|p| fetch_converged(&reference, &format!("/page/{p}")))
        .collect();

    let spec = ChaosSpec::parse("seed=7,engine.generate=error:0.25").unwrap();
    faults::install(&spec);
    let batched = batching_server(equivalence_site(PAGES), 4, 4);
    let bodies: Vec<bytes::Bytes> = std::thread::scope(|scope| {
        (0..PAGES)
            .map(|p| {
                let batched = &batched;
                scope.spawn(move || fetch_converged(batched, &format!("/page/{p}")))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    let injected = faults::injected_total();
    faults::clear();

    for (p, (body, want)) in bodies.iter().zip(&expected).enumerate() {
        assert_eq!(body, want, "/page/{p} diverged under chaos + batching");
    }
    assert!(
        injected > 0,
        "the 25% fault rate must actually fire over {PAGES} generations and their retries"
    );
}

/// Tiled-kernel equivalence (PR 6): a batching server whose denoise
/// passes are split across data-parallel kernel lanes materializes
/// pages byte-identical to both the scalar batching server and the
/// inline unbatched reference, under a concurrent fetch storm. Tiling
/// may only move *where* a job's instruction stream runs — never what
/// it computes.
#[test]
fn tiled_kernel_server_pages_match_scalar_and_unbatched() {
    let _guard = serial();
    const PAGES: usize = 8;
    let reference = GenerativeServerBuilder::default()
        .site(equivalence_site(PAGES))
        .build();
    let scalar = batching_server(equivalence_site(PAGES), 4, 4);
    let tiled = GenerativeServerBuilder::default()
        .site(equivalence_site(PAGES))
        .workers(4)
        .batch_max(4)
        .batch_wait(Duration::from_millis(50))
        .kernel_tiles(4)
        .build();
    assert_eq!(tiled.kernel_tiles(), 4);

    // Storm the tiled server so real multi-lane batches form.
    let barrier = Barrier::new(PAGES * 2);
    std::thread::scope(|scope| {
        for t in 0..PAGES * 2 {
            let tiled = &tiled;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                fetch_converged(tiled, &format!("/page/{}", t % PAGES));
            });
        }
    });
    for p in 0..PAGES {
        let path = format!("/page/{p}");
        let tiled_body = fetch_converged(&tiled, &path);
        assert_eq!(
            tiled_body,
            fetch_converged(&reference, &path),
            "{path} diverged between tiled-kernel and unbatched servers"
        );
        assert_eq!(
            tiled_body,
            fetch_converged(&scalar, &path),
            "{path} diverged between tiled and scalar kernels"
        );
    }
    let stats = tiled.batch_stats().expect("batching enabled");
    assert_eq!(
        stats.jobs, PAGES as u64,
        "one generation per page: single-flight composed with tiled batching"
    );
}

/// A lone request through a batching server closes its group
/// immediately (rendezvous drain), and every member's reported wait is
/// bounded by the configured deadline.
#[test]
fn lone_request_wait_is_bounded_well_below_deadline() {
    let _guard = serial();
    // Deliberately huge deadline: only the drain rule can explain a
    // fast answer.
    let server = GenerativeServerBuilder::default()
        .site(equivalence_site(1))
        .batch_max(8)
        .batch_wait(Duration::from_secs(30))
        .build();
    let start = Instant::now();
    fetch_converged(&server, "/page/0");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "a lone request must not wait out the 30 s batch deadline"
    );
    let stats = server.batch_stats().expect("batching enabled");
    assert_eq!(stats.jobs, 1);
    assert!(
        stats.p99_wait_s < 5.0,
        "recorded group wait {:.3} s should reflect the immediate close",
        stats.p99_wait_s
    );
}
