//! Stress test for the concurrent serving engine (single-flight sharded
//! generation cache): 8 threads × 100 requests over 10 unique prompts
//! must run **exactly 10 generations** — every other request is either a
//! cache hit or coalesced onto an in-flight generation — and the final
//! cache state must equal a sequential baseline.
//!
//! This is the acceptance test for the engine's amortization contract:
//! `sww_cache_coalesced_total` (requests that did not pay for their own
//! generation) must equal 800 − 10 = 790 in the `/metrics` exposition.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use sww::core::cache::Recipe;
use sww::core::{
    FetchOutcome, GenAbility, GenerationEngine, GenerativeServer, SiteContent, SwwError,
};
use sww::genai::diffusion::ImageModelKind;
use sww::genai::ImageBuffer;
use sww::http2::Request;

const THREADS: usize = 8;
const REQUESTS_PER_THREAD: usize = 100;
const UNIQUE_PROMPTS: usize = 10;

/// The metrics registry is process-global and the stress test below
/// asserts exact counter values, so the tests in this binary must not
/// interleave.
static SERIAL: Mutex<()> = Mutex::new(());

fn recipe(p: usize) -> Recipe {
    Recipe {
        prompt: format!("stress prompt {p} over the ridge"),
        model: ImageModelKind::Sd3Medium,
        width: 32,
        height: 32,
        steps: 15,
    }
}

/// Deterministic stand-in for the diffusion pipeline: pixels are a pure
/// function of the recipe, so identical recipes must yield identical
/// images and the parallel/sequential cache states are comparable.
fn render(r: &Recipe) -> ImageBuffer {
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in r.prompt.bytes() {
        seed = (seed ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    let n = (r.width * r.height * 3) as usize;
    let data = (0..n)
        .map(|i| (seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9) >> 16) as u8)
        .collect();
    ImageBuffer::from_data(r.width, r.height, data)
}

/// Value of an exact series line (`name value`) in the exposition.
fn series_value(text: &str, series: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(series)?;
        rest.strip_prefix(' ')?.trim().parse().ok()
    })
}

/// Drive `engine` through the full request schedule on one thread,
/// counting actual generation-closure invocations.
fn run_sequential(engine: &GenerationEngine, calls: &AtomicUsize) {
    for t in 0..THREADS {
        for i in 0..REQUESTS_PER_THREAD {
            let r = recipe((i + t) % UNIQUE_PROMPTS);
            let (image, _) = engine.fetch_image(&r, || {
                calls.fetch_add(1, Ordering::SeqCst);
                render(&r)
            });
            assert_eq!(image.width(), 32);
        }
    }
}

#[tokio::test(flavor = "multi_thread")]
#[allow(clippy::await_holding_lock)] // the guard serializes the whole test
async fn eight_threads_generate_each_unique_prompt_exactly_once() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    sww::obs::reset();

    let engine = Arc::new(GenerationEngine::new(8, 64_000_000));
    let calls = Arc::new(AtomicUsize::new(0));
    let threads: Vec<_> = (0..THREADS)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let calls = Arc::clone(&calls);
            std::thread::spawn(move || {
                let mut outcomes = [0u64; 3];
                for i in 0..REQUESTS_PER_THREAD {
                    let r = recipe((i + t) % UNIQUE_PROMPTS);
                    let expected = render(&r);
                    let (image, outcome) = engine.fetch_image(&r, || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        render(&r)
                    });
                    // Every path — generated, hit, coalesced — must hand
                    // back the image this recipe renders to.
                    assert_eq!(image, expected, "wrong image for {}", r.prompt);
                    outcomes[match outcome {
                        FetchOutcome::Hit => 0,
                        FetchOutcome::Generated => 1,
                        FetchOutcome::Coalesced => 2,
                    }] += 1;
                }
                outcomes
            })
        })
        .collect();
    let mut totals = [0u64; 3];
    for t in threads {
        let outcomes = t.join().expect("stress thread");
        for (acc, n) in totals.iter_mut().zip(outcomes) {
            *acc += n;
        }
    }

    let total_requests = (THREADS * REQUESTS_PER_THREAD) as u64;
    // The single-flight contract: each unique key generated exactly once.
    assert_eq!(calls.load(Ordering::SeqCst), UNIQUE_PROMPTS, "ground truth");
    assert_eq!(engine.generations(), UNIQUE_PROMPTS as u64);
    // Everyone else was amortized onto those 10 generations.
    assert_eq!(engine.coalesced(), total_requests - UNIQUE_PROMPTS as u64);
    assert_eq!(totals[1], UNIQUE_PROMPTS as u64, "per-thread outcome sum");
    assert_eq!(
        totals[0] + totals[2],
        total_requests - UNIQUE_PROMPTS as u64
    );
    assert_eq!(engine.cache().len(), UNIQUE_PROMPTS);

    // The coalesced counter must be visible through a server's /metrics
    // route exactly as the acceptance criterion states: 800 − 10 = 790.
    let server = GenerativeServer::builder().site(SiteContent::new()).build();
    let (a, b) = tokio::io::duplex(1 << 20);
    tokio::spawn(async move {
        let _ = server.serve_stream(b).await;
    });
    let mut conn = sww::http2::ClientConnection::handshake(a, GenAbility::none())
        .await
        .unwrap();
    let resp = conn
        .send_request(&sww::http2::Request::get("/metrics"))
        .await
        .unwrap();
    assert_eq!(resp.status, 200);
    let exposition = String::from_utf8(resp.body.to_vec()).unwrap();
    assert_eq!(
        series_value(&exposition, "sww_cache_coalesced_total"),
        Some(790.0),
        "exposition:\n{exposition}"
    );

    // Final cache state must equal the sequential baseline: same keys,
    // same images, same generation count.
    let baseline = GenerationEngine::new(8, 64_000_000);
    let baseline_calls = AtomicUsize::new(0);
    run_sequential(&baseline, &baseline_calls);
    assert_eq!(baseline_calls.load(Ordering::SeqCst), UNIQUE_PROMPTS);
    assert_eq!(baseline.cache().len(), engine.cache().len());
    for p in 0..UNIQUE_PROMPTS {
        let r = recipe(p);
        let concurrent = engine.cache().get(&r).expect("concurrent cache entry");
        let sequential = baseline.cache().get(&r).expect("baseline cache entry");
        assert_eq!(concurrent, sequential, "cache divergence for {}", r.prompt);
    }
}

/// Graceful drain under concurrent load must lose no responses:
/// every request admitted before (or racing) the drain completes with a
/// real `200`, every request arriving after the flag flips is shed
/// `503`, and `drain` itself returns only once the server is idle.
///
/// Injected latency (`engine.generate=latency:1.0:50`) keeps the first
/// wave of requests in flight long enough for the drain to observably
/// overlap them.
#[test]
fn drain_under_concurrent_load_loses_no_responses() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    const THREADS: usize = 4;
    const REQUESTS: usize = 4;
    sww::obs::reset();
    sww::core::faults::clear();
    sww::core::faults::install(
        &sww::core::faults::ChaosSpec::parse("seed=5,engine.generate=latency:1.0:50")
            .expect("spec parses"),
    );

    let mut site = SiteContent::new();
    for p in 0..THREADS * REQUESTS {
        site.add_page(
            format!("/page/{p}"),
            format!(
                "<html><body>{}</body></html>",
                sww::html::gencontent::image_div(
                    &format!("drain prompt {p} under the viaduct"),
                    &format!("drain{p}.jpg"),
                    32,
                    32,
                )
            ),
        );
    }
    let server = GenerativeServer::builder().site(site).workers(2).build();

    let (mut served, mut shed) = (0u64, 0u64);
    let report = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..THREADS)
            .map(|t| {
                let session = server.accept(GenAbility::none());
                scope.spawn(move || {
                    let (mut served, mut shed) = (0u64, 0u64);
                    for i in 0..REQUESTS {
                        // Distinct page per request: every 200 below is
                        // backed by exactly one generation of its own.
                        let path = format!("/page/{}", t * REQUESTS + i);
                        let resp = session.handle(&Request::get(&path));
                        match resp.status {
                            200 => served += 1,
                            503 => shed += 1,
                            other => panic!("GET {path}: unexpected status {other}"),
                        }
                    }
                    (served, shed)
                })
            })
            .collect();
        // Flip the flag while the first wave (50 ms of injected latency
        // each) is still in flight; drain must block until they finish.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let report = server.drain();
        for c in clients {
            let (s, r) = c.join().expect("client thread");
            served += s;
            shed += r;
        }
        report
    });

    // Admission is a promise: everything in flight when the drain began
    // got a real response, and nothing was silently dropped.
    assert!(report.inflight_at_start >= 1, "drain must overlap requests");
    assert_eq!(served + shed, (THREADS * REQUESTS) as u64);
    assert!(served >= report.inflight_at_start as u64);
    assert_eq!(server.engine().generations(), served, "one per 200");
    assert!(server.is_draining());
    assert_eq!(
        server
            .accept(GenAbility::none())
            .handle(&Request::get("/page/0"))
            .status,
        503,
        "post-drain requests must shed"
    );

    // /metrics stays readable on a drained server and agrees with the
    // tallies (the post-drain probe above is the +1).
    let resp = server
        .accept(GenAbility::none())
        .handle(&Request::get("/metrics"));
    assert_eq!(resp.status, 200);
    let exposition = String::from_utf8(resp.body.to_vec()).unwrap();
    assert_eq!(series_value(&exposition, "sww_drain_state"), Some(2.0));
    assert_eq!(
        series_value(&exposition, "sww_drain_inflight_at_start"),
        Some(report.inflight_at_start as f64)
    );
    assert_eq!(
        series_value(&exposition, "sww_shed_total{reason=\"draining\"}"),
        Some((shed + 1) as f64),
        "shed exposition:\n{exposition}"
    );

    sww::core::faults::clear();
}

/// A leader that fails mid-generation must not strand its waiters: the
/// flight is poisoned, every waiter wakes and retries, exactly one of
/// them becomes the new leader, and exactly one extra generation runs.
#[tokio::test(flavor = "multi_thread")]
#[allow(clippy::await_holding_lock)] // the guard serializes the whole test
async fn poisoned_flight_releases_waiters_with_one_extra_generation() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    const WORKERS: usize = 6;
    let engine = Arc::new(GenerationEngine::new(4, 64_000_000));
    let calls = Arc::new(AtomicUsize::new(0));
    let errors = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(Barrier::new(WORKERS));

    let threads: Vec<_> = (0..WORKERS)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let calls = Arc::clone(&calls);
            let errors = Arc::clone(&errors);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let r = recipe(0);
                barrier.wait();
                // Retry until the fetch lands, like a resilient client
                // would. The first generation closure to run anywhere
                // sleeps long enough for waiters to pile onto its
                // flight, then fails; every later invocation succeeds.
                loop {
                    let result = engine.try_fetch_image(&r, || {
                        if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            return Err(SwwError::Generation {
                                reason: "leader faulted mid-generation".into(),
                            });
                        }
                        Ok(render(&r))
                    });
                    match result {
                        Ok((image, _)) => {
                            assert_eq!(image, render(&r), "wrong image after recovery");
                            return;
                        }
                        Err(err) => {
                            assert!(err.is_generation_failure(), "unexpected error: {err:?}");
                            errors.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("waiter thread must not be stranded");
    }

    // Only the faulting leader observed the failure; its waiters retried
    // against the poisoned flight and exactly one extra generation ran.
    assert_eq!(errors.load(Ordering::SeqCst), 1, "exactly one failed fetch");
    assert_eq!(
        calls.load(Ordering::SeqCst),
        2,
        "exactly one extra generation"
    );
    assert_eq!(engine.generations(), 1, "only the successful run counts");
    assert_eq!(engine.cache().len(), 1);
    assert_eq!(
        engine.cache().get(&recipe(0)).expect("recovered entry"),
        render(&recipe(0))
    );
}
