//! Cross-crate integration: the generative server's transport-independent
//! core behind an HTTP/3 front end (paper §3.1) — the same SiteContent
//! serves both protocol versions with identical negotiation semantics.
//!
//! Since the transport-agnostic refactor this needs no adapter glue at
//! all: [`GenerativeServer::serve_h3_stream`] is the h3 twin of
//! `serve_stream`, driving the same dispatch core behind the h3 framing.

use sww::core::{GenAbility, GenerativeServer, SiteContent};
use sww::html::gencontent;
use sww::http2::Request;
use sww::http3::H3ClientConnection;

fn site() -> SiteContent {
    let mut s = SiteContent::new();
    s.add_page(
        "/page",
        format!(
            "<html><body>{}</body></html>",
            gencontent::image_div("terraced rice fields at sunrise", "rice.jpg", 96, 96)
        ),
    );
    s
}

async fn h3_front_end(
    server: GenerativeServer,
    client_ability: GenAbility,
) -> H3ClientConnection<tokio::io::DuplexStream> {
    let (a, b) = tokio::io::duplex(1 << 20);
    tokio::spawn(async move {
        let _ = server.serve_h3_stream(b).await;
    });
    H3ClientConnection::handshake(a, client_ability)
        .await
        .expect("h3 handshake")
}

#[tokio::test(flavor = "multi_thread")]
async fn h3_serves_prompt_form_to_capable_client() {
    let server = GenerativeServer::builder()
        .site(site())
        .ability(GenAbility::full())
        .build();
    let mut client = h3_front_end(server.clone(), GenAbility::full()).await;
    let resp = client.send_request(&Request::get("/page")).await.unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.headers.get("x-sww-mode"), Some("generative"));
    let body = String::from_utf8(resp.body.to_vec()).unwrap();
    assert!(body.contains("generated-content"));
}

#[tokio::test(flavor = "multi_thread")]
async fn h3_materializes_for_naive_client() {
    let server = GenerativeServer::builder()
        .site(site())
        .ability(GenAbility::full())
        .build();
    let mut client = h3_front_end(server.clone(), GenAbility::none()).await;
    let resp = client.send_request(&Request::get("/page")).await.unwrap();
    assert_eq!(resp.headers.get("x-sww-mode"), Some("server-generated"));
    let body = String::from_utf8(resp.body.to_vec()).unwrap();
    assert!(!body.contains("generated-content"));
    assert!(body.contains("/generated/rice.jpg"));
    // The materialized asset is fetchable over the same H3 connection.
    let img = client
        .send_request(&Request::get("/generated/rice.jpg"))
        .await
        .unwrap();
    assert_eq!(img.status, 200);
    assert!(sww::genai::codec::decode(&img.body).is_ok());
}

#[tokio::test(flavor = "multi_thread")]
async fn same_site_same_bytes_across_h2_and_h3() {
    // Fetch the prompt-form page over both protocol versions and compare.
    let server = GenerativeServer::builder()
        .site(site())
        .ability(GenAbility::full())
        .build();

    let mut h3 = h3_front_end(server.clone(), GenAbility::full()).await;
    let h3_body = h3.send_request(&Request::get("/page")).await.unwrap().body;

    let (a, b) = tokio::io::duplex(1 << 20);
    let srv = server.clone();
    tokio::spawn(async move {
        let _ = srv.serve_stream(b).await;
    });
    let mut h2 = sww::http2::ClientConnection::handshake(a, GenAbility::full())
        .await
        .unwrap();
    let h2_body = h2.send_request(&Request::get("/page")).await.unwrap().body;

    assert_eq!(h2_body, h3_body, "transport must not change content");
}

#[tokio::test(flavor = "multi_thread")]
async fn zero_rtt_resumption_reaches_the_same_core() {
    // First connection establishes the ticket; the 0-RTT resume skips
    // the SETTINGS wait and still gets an identical prompt-form page.
    let server = GenerativeServer::builder()
        .site(site())
        .ability(GenAbility::full())
        .build();
    let mut first = h3_front_end(server.clone(), GenAbility::full()).await;
    let cold = first.send_request(&Request::get("/page")).await.unwrap();
    let ticket = first.session_ticket();

    let (a, b) = tokio::io::duplex(1 << 20);
    let srv = server.clone();
    tokio::spawn(async move {
        let _ = srv.serve_h3_stream(b).await;
    });
    let mut resumed = H3ClientConnection::handshake_0rtt(a, GenAbility::full(), ticket)
        .await
        .unwrap();
    assert!(resumed.resumed());
    assert!(resumed.negotiated_ability().can_generate());
    let warm = resumed.send_request(&Request::get("/page")).await.unwrap();
    assert_eq!(cold.body, warm.body, "0-RTT must not change content");
}
