//! Cross-crate integration: SWW over HTTP/3 (the paper's §3.1 next step).
//! The server delivers a prompt-form page over H3; the client negotiates
//! GEN_ABILITY via H3 SETTINGS, fetches, and resolves the page with the
//! same media generator the HTTP/2 path uses — same content, different
//! transport. Uses the raw `serve_h3_connection` driver (handlers run on
//! worker threads and receive an [`H3ServeContext`] with both sides'
//! advertisements).

use bytes::Bytes;
use sww::core::mediagen::{GeneratedMedia, MediaGenerator};
use sww::energy::device::{profile, DeviceKind};
use sww::html::gencontent;
use sww::http2::{GenAbility, Request, Response};
use sww::http3::{serve_h3_connection, H3ClientConnection, H3ServeContext};

fn page_html() -> String {
    format!(
        "<html><body>{}</body></html>",
        gencontent::image_div(
            "a quiet harbor at dawn with fishing boats",
            "harbor.jpg",
            96,
            96
        )
    )
}

#[tokio::test(flavor = "multi_thread")]
async fn sww_page_over_http3() {
    let (a, b) = tokio::io::duplex(1 << 20);
    tokio::spawn(async move {
        let html = page_html();
        // Handlers run off-thread, so report what was seen in headers
        // instead of asserting (a panicking handler never responds).
        let _ = serve_h3_connection(
            b,
            GenAbility::full(),
            move |req: Request, ctx: H3ServeContext| {
                let mut resp = Response::ok(Bytes::from(html.clone()));
                resp.headers.insert("content-type", "text/html");
                resp.headers.insert("x-sww-mode", "generative");
                resp.headers.insert("x-seen-path", &req.path);
                resp.headers.insert(
                    "x-negotiated-generate",
                    if ctx.negotiated().can_generate() {
                        "true"
                    } else {
                        "false"
                    },
                );
                resp
            },
        )
        .await;
    });
    let mut client = H3ClientConnection::handshake(a, GenAbility::full())
        .await
        .unwrap();
    assert!(client.negotiated_ability().can_generate());
    let resp = client.send_request(&Request::get("/harbor")).await.unwrap();
    assert_eq!(resp.headers.get("x-sww-mode"), Some("generative"));
    assert_eq!(resp.headers.get("x-seen-path"), Some("/harbor"));
    assert_eq!(resp.headers.get("x-negotiated-generate"), Some("true"));

    // Resolve the page with the shared media generator.
    let html = String::from_utf8(resp.body.to_vec()).unwrap();
    let doc = sww::html::parse(&html);
    let items = gencontent::extract(&doc);
    assert_eq!(items.len(), 1);
    let mut generator = MediaGenerator::new(profile(DeviceKind::Workstation));
    let (media, cost) = generator.generate(&items[0]);
    let GeneratedMedia::Image { image, .. } = media else {
        panic!("expected image");
    };
    assert_eq!(image.width(), 96);
    assert!(cost.time_s > 0.0);
}

#[tokio::test(flavor = "multi_thread")]
async fn h2_and_h3_render_identical_pixels() {
    // Transport must not affect content: the same prompt generates the
    // same image whichever protocol version carried it.
    let prompt = "a quiet harbor at dawn with fishing boats";
    let html = gencontent::image_div(prompt, "h.jpg", 64, 64);
    let doc = sww::html::parse(&html);
    let item = gencontent::extract(&doc).remove(0);
    let mut generator = MediaGenerator::new(profile(DeviceKind::Laptop));
    let (m1, _) = generator.generate(&item);
    let (m2, _) = generator.generate(&item);
    let (GeneratedMedia::Image { image: i1, .. }, GeneratedMedia::Image { image: i2, .. }) =
        (m1, m2)
    else {
        panic!("expected images");
    };
    assert_eq!(i1, i2);
}

#[tokio::test(flavor = "multi_thread")]
async fn h3_fallback_matrix() {
    for (server, client, expect) in [
        (GenAbility::full(), GenAbility::full(), true),
        (GenAbility::full(), GenAbility::none(), false),
        (GenAbility::none(), GenAbility::full(), false),
        (GenAbility::none(), GenAbility::none(), false),
    ] {
        let (a, b) = tokio::io::duplex(1 << 18);
        tokio::spawn(async move {
            let _ = serve_h3_connection(b, server, |_req: Request, ctx: H3ServeContext| {
                Response::ok(Bytes::from(ctx.negotiated().can_generate().to_string()))
            })
            .await;
        });
        let mut conn = H3ClientConnection::handshake(a, client).await.unwrap();
        assert_eq!(conn.negotiated_ability().can_generate(), expect);
        let resp = conn.send_request(&Request::get("/")).await.unwrap();
        assert_eq!(&resp.body[..], expect.to_string().as_bytes());
    }
}
