//! Replay-determinism acceptance tests for the E20 traffic generator:
//! the whole pipeline — small-world graph, Zipf popularity, random-walk
//! sessions, diurnal arrivals, replay through a real in-process server —
//! must be a pure function of the seed.
//!
//! Three properties, each over full server runs:
//!
//! 1. **Determinism** — the same seed yields a byte-identical trace, the
//!    same response digest, and an `/metrics` exposition whose
//!    `sww_workload_*` series reconcile exactly with ground truth
//!    (events generated, sessions started, requests replayed) on both
//!    runs.
//! 2. **Chaos waiver** — under the fault-injection layer the *trace*
//!    and the workload metrics stay deterministic and every request
//!    still completes; only the response digest is waived (fault draws
//!    come from one process-global stream, so scheduling leaks in).
//! 3. **Seed sensitivity** — different seeds produce different traces.

use std::sync::Mutex;
use sww::core::faults::{self, ChaosSpec};
use sww::workload::graph::SmallWorldConfig;
use sww::workload::replay::{ReplayConfig, ReplayEngine, ReplayOutcome, ReplayTarget};
use sww::workload::trace::{Trace, WorkloadConfig};

/// The fault registry and the metrics registry are process-global, so
/// the tests in this binary must not interleave.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A debug-build-sized workload: small graph, 120 requests.
fn small_cfg(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        graph: SmallWorldConfig {
            nodes: 48,
            k: 6,
            beta: 0.1,
            seed,
        },
        requests: 120,
        seed,
        ..WorkloadConfig::default()
    }
}

/// Value of an exact series line (`name{labels} value`) in the exposition.
fn series_value(text: &str, series: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(series)?;
        rest.strip_prefix(' ')?.trim().parse().ok()
    })
}

/// Just the workload family of an exposition, for run-to-run comparison.
fn workload_series(text: &str) -> String {
    text.lines()
        .filter(|l| l.starts_with("sww_workload"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// One full server run from a clean registry: generate the trace,
/// replay it against an in-process server, scrape the exposition.
fn run_once(cfg: &WorkloadConfig) -> (String, u64, ReplayOutcome, String) {
    sww::obs::reset();
    let engine = ReplayEngine::from_config(cfg);
    let trace_bytes = format!("{:?}", engine.trace().events());
    let sessions = engine.trace().sessions();
    let outcome = engine.run(&ReplayConfig {
        target: ReplayTarget::Single,
        threads: 2,
        ..ReplayConfig::default()
    });
    (trace_bytes, sessions, outcome, sww::obs::render())
}

/// The exposition's workload series must agree exactly with what the
/// run is known to have done.
fn reconcile(cfg: &WorkloadConfig, sessions: u64, outcome: &ReplayOutcome, metrics: &str) {
    assert_eq!(
        series_value(metrics, "sww_workload_traces_total"),
        Some(1.0),
        "one trace was generated"
    );
    assert_eq!(
        series_value(metrics, "sww_workload_trace_events_total"),
        Some(cfg.requests as f64),
        "every requested event was emitted"
    );
    assert_eq!(
        series_value(metrics, "sww_workload_replay_runs_total"),
        Some(1.0),
        "one replay ran"
    );
    assert_eq!(
        series_value(metrics, "sww_workload_replayed_total{target=\"single\"}"),
        Some(outcome.scorecard.requests as f64),
        "replayed_total matches the scorecard"
    );
    let device_sessions: f64 = ["laptop", "workstation", "mobile"]
        .iter()
        .filter_map(|d| {
            series_value(
                metrics,
                &format!("sww_workload_sessions_total{{device=\"{d}\"}}"),
            )
        })
        .sum();
    assert_eq!(
        device_sessions, sessions as f64,
        "per-device session counts sum to the trace's session count"
    );
}

#[test]
fn same_seed_replays_are_byte_identical_and_reconcile_with_metrics() {
    let _guard = serial();
    faults::clear();
    let cfg = small_cfg(7);
    let (trace_a, sessions_a, a, metrics_a) = run_once(&cfg);
    let (trace_b, sessions_b, b, metrics_b) = run_once(&cfg);
    assert_eq!(
        trace_a, trace_b,
        "same seed must give a byte-identical trace"
    );
    assert_eq!(a.trace_digest, b.trace_digest);
    assert_eq!(
        a.response_digest, b.response_digest,
        "same seed must give identical response payloads"
    );
    assert_eq!(a.scorecard.ok, b.scorecard.ok);
    assert_eq!(a.scorecard.requests, cfg.requests as u64);
    assert_eq!(a.generations, b.generations);
    reconcile(&cfg, sessions_a, &a, &metrics_a);
    reconcile(&cfg, sessions_b, &b, &metrics_b);
    assert_eq!(
        workload_series(&metrics_a),
        workload_series(&metrics_b),
        "the workload exposition must be identical run to run"
    );
}

#[test]
fn chaos_replays_keep_trace_and_metrics_deterministic() {
    let _guard = serial();
    let spec = ChaosSpec::parse("seed=9,engine.generate=latency:0.5:5").unwrap();
    faults::install(&spec);
    let cfg = small_cfg(21);
    let (trace_a, sessions_a, a, metrics_a) = run_once(&cfg);
    // Re-arm the identical fault stream for the second run.
    faults::install(&spec);
    let (trace_b, sessions_b, b, metrics_b) = run_once(&cfg);
    faults::clear();
    assert_eq!(trace_a, trace_b, "chaos must not touch trace generation");
    assert_eq!(a.trace_digest, b.trace_digest);
    // Response digests are deliberately NOT compared: fault draws come
    // from one process-global stream shared across replay threads.
    assert_eq!(a.scorecard.requests, cfg.requests as u64);
    assert_eq!(b.scorecard.requests, cfg.requests as u64);
    assert_eq!(
        a.scorecard.ok + a.scorecard.shed + a.scorecard.deadline + a.scorecard.errors,
        cfg.requests as u64,
        "every request must resolve under chaos"
    );
    reconcile(&cfg, sessions_a, &a, &metrics_a);
    reconcile(&cfg, sessions_b, &b, &metrics_b);
    assert_eq!(
        workload_series(&metrics_a),
        workload_series(&metrics_b),
        "the workload exposition must stay deterministic under chaos"
    );
}

#[test]
fn different_seeds_produce_different_traces() {
    let _guard = serial();
    faults::clear();
    let a = Trace::generate(&small_cfg(1));
    let b = Trace::generate(&small_cfg(2));
    assert_ne!(a.digest(), b.digest(), "seeds 1 and 2 collided");
    assert_ne!(
        format!("{:?}", a.events()),
        format!("{:?}", b.events()),
        "different seeds must walk different pages"
    );
}
