//! E18 end to end in its own binary: the chaos latency layer is
//! process-global, so the head-of-line experiment cannot share a test
//! binary with anything that watches fault or server counters.
//!
//! The scenario from the PR acceptance criteria: a multi-recipe page
//! where every recipe needs a slow server-side generation. Over h2 the
//! slow generations serialize — each recipe head-of-line-blocks the next
//! — so the page costs ≈ K·W. Over h3 each recipe rides its own stream,
//! the server generates concurrently and ships responses in completion
//! order, so the same page costs ≈ W. Payloads stay bit-identical, and
//! every request is reconciled against the `/metrics` exposition via the
//! new `transport` label.

use sww_bench::experiments::transport::{run_with_latency, TransportConfig};

/// Value of an exact series line (`name{labels} value`) in the exposition.
fn series_value(text: &str, series: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(series)?;
        rest.strip_prefix(' ')?.trim().parse().ok()
    })
}

#[test]
fn h3_beats_h2_when_generations_are_slow() {
    // This binary owns the whole process: reset the registry so the
    // /metrics reconciliation below can assert exact counts.
    sww::obs::reset();

    let cfg = TransportConfig {
        pages: 4,
        recipes: 4,
        gen_latency_ms: 30,
        seed: 7,
    };
    // run_with_latency drives its own runtimes internally, so this test
    // stays synchronous and spins one up only for the /metrics scrape.
    let run = run_with_latency(cfg);

    // The no-HoL win: modelled exactly K×, measured must clear the
    // 1.5× acceptance floor (the modelled ratio is 4×; the generous
    // margin absorbs scheduler noise on a loaded host).
    assert_eq!(run.modelled_speedup(), cfg.recipes as f64);
    assert!(
        run.h3.p99_ms < run.h2.p99_ms,
        "h3 page p99 {:.1} ms must beat h2 {:.1} ms",
        run.h3.p99_ms,
        run.h2.p99_ms
    );
    assert!(
        run.measured_p99_speedup() > 1.5,
        "expected ≈{}x, got {:.2}x (h2 {:.1} ms vs h3 {:.1} ms)",
        cfg.recipes,
        run.measured_p99_speedup(),
        run.h2.p99_ms,
        run.h3.p99_ms
    );

    // Bit-identical per-recipe payloads across transports.
    assert!(run.byte_identical, "payloads diverged between h2 and h3");
    assert_eq!(run.h2.bodies.len(), cfg.pages * cfg.recipes);

    // Reconcile against the server's own accounting…
    let expect = (cfg.pages * cfg.recipes) as f64;
    assert_eq!(run.h2.requests as f64, expect);
    assert_eq!(run.h3.requests as f64, expect);

    // …and against the Prometheus exposition, like any scraper would.
    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(2)
        .enable_all()
        .build()
        .unwrap();
    let text = rt.block_on(async {
        let server = sww::core::GenerativeServer::builder().build();
        let (a, b) = tokio::io::duplex(1 << 20);
        tokio::spawn(async move {
            let _ = server.serve_stream(b).await;
        });
        let mut conn = sww::http2::ClientConnection::handshake(a, sww::core::GenAbility::none())
            .await
            .unwrap();
        let resp = conn
            .send_request(&sww::http2::Request::get("/metrics"))
            .await
            .unwrap();
        assert_eq!(resp.status, 200);
        String::from_utf8(resp.body.to_vec()).unwrap()
    });
    assert_eq!(
        series_value(
            &text,
            "sww_server_requests_total{route=\"page\",transport=\"h2\"}"
        ),
        Some(expect),
        "h2 page requests vs exposition\n{text}"
    );
    assert_eq!(
        series_value(
            &text,
            "sww_server_requests_total{route=\"page\",transport=\"h3\"}"
        ),
        Some(expect),
        "h3 page requests vs exposition\n{text}"
    );
    // One h2 session per page, plus this scrape connection; one h3
    // session per page.
    assert_eq!(
        series_value(&text, "sww_server_sessions_total{transport=\"h2\"}"),
        Some(cfg.pages as f64 + 1.0)
    );
    assert_eq!(
        series_value(&text, "sww_server_sessions_total{transport=\"h3\"}"),
        Some(cfg.pages as f64)
    );
}
