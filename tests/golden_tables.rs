//! Golden regression tests for the paper tables.
//!
//! The §6 numbers the repo reproduces — Table 1 (model profiles, bench
//! experiment E4) and Table 2 (compression ratios, E8) — are fully
//! deterministic: modelled generation times, procedural generation, and
//! stable float formatting. These tests snapshot the rendered tables
//! under `tests/golden/` so a perf or refactor PR cannot silently shift
//! an evaluation number: any drift is a test failure showing the diff.
//!
//! To intentionally re-bless after a deliberate change:
//!
//! ```text
//! SWW_BLESS=1 cargo test --test golden_tables
//! ```
//!
//! then review and commit the updated snapshots like any other diff.

use std::path::Path;
use sww_bench::experiments::{compression, edge, models, workload};

/// Compare `rendered` against `tests/golden/<name>`, or rewrite the
/// snapshot when `SWW_BLESS=1` is set.
fn assert_matches_golden(name: &str, rendered: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var("SWW_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with SWW_BLESS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "{name} drifted from its golden snapshot; if the change is \
         intentional, re-bless with SWW_BLESS=1 and commit the diff"
    );
}

/// E4 / paper Table 1: the model-profile table (per-model resolution,
/// steps, modelled latency and energy).
#[test]
fn e4_model_profile_table_matches_golden() {
    let rows = models::table1();
    let rendered = models::table1_table(&rows).render();
    assert_matches_golden("e4_table1.txt", &rendered);
}

/// E8 / paper Table 2: compression ratios per workload page.
#[test]
fn e8_compression_table_matches_golden() {
    let rows = compression::run();
    let rendered = compression::table(&rows).render();
    assert_matches_golden("e8_table2.txt", &rendered);
}

/// E19: the modelled edge-cluster scaling table — ring ownership and the
/// deterministic cost model only, no wall clocks, so it is bit-stable
/// across hosts. Pins both the consistent-hash placement (a ring change
/// silently remapping recipes shows up here) and the hit-rate/throughput
/// scaling story.
#[test]
fn e19_edge_cluster_modelled_table_matches_golden() {
    let cfg = edge::EdgeClusterConfig::default();
    let rendered = edge::modelled_table(&cfg).render();
    assert_matches_golden("e19_edge_cluster.txt", &rendered);
}

/// E20: the modelled small-world workload scorecard — graph metrics,
/// bounded-LRU hit rates, and queueing percentiles are all pure
/// functions of the seed, so the table is bit-stable across hosts. Pins
/// the clustering→hit-rate story the compare gate enforces: a change to
/// the graph generator, the Zipf sampler, the walk, or the SLO model
/// shows up here as a diff.
#[test]
fn e20_workload_scorecard_matches_golden() {
    let cfg = workload::E20Config::quick();
    let rows = workload::modelled_sweep(&cfg);
    let rendered = workload::modelled_table(&cfg, &rows).render();
    assert_matches_golden("e20_workload.txt", &rendered);
}

/// The comparer itself must be deterministic: rendering twice in one
/// process yields identical bytes (guards against accidental map-order
/// or timing dependence sneaking into the table code).
#[test]
fn golden_targets_render_deterministically() {
    assert_eq!(
        models::table1_table(&models::table1()).render(),
        models::table1_table(&models::table1()).render()
    );
    assert_eq!(
        compression::table(&compression::run()).render(),
        compression::table(&compression::run()).render()
    );
    let ecfg = edge::EdgeClusterConfig::default();
    assert_eq!(
        edge::modelled_table(&ecfg).render(),
        edge::modelled_table(&ecfg).render()
    );
    let wcfg = workload::E20Config::quick();
    assert_eq!(
        workload::modelled_table(&wcfg, &workload::modelled_sweep(&wcfg)).render(),
        workload::modelled_table(&wcfg, &workload::modelled_sweep(&wcfg)).render()
    );
}
