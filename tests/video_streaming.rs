//! Cross-crate integration: §3.2 video streaming end to end over HTTP/2 —
//! playlist negotiation via SETTINGS, segment download, and the measured
//! wire savings of the negotiated rendition.

use sww::core::hls::VideoAsset;
use sww::core::video::Resolution;
use sww::core::{GenAbility, GenerativeServer, SiteContent};
use sww::http2::{ClientConnection, Request};

fn video_site() -> SiteContent {
    let mut site = SiteContent::new();
    site.add_video(VideoAsset {
        name: "trailer".into(),
        resolution: Resolution::Uhd4K,
        fps: 60,
        duration_s: 60,
        segment_s: 6,
    });
    site
}

fn ability_with_video() -> GenAbility {
    GenAbility::from_bits(GenAbility::GENERATE | GenAbility::VIDEO)
}

async fn connect(
    server: &GenerativeServer,
    ability: GenAbility,
) -> ClientConnection<tokio::io::DuplexStream> {
    let (a, b) = tokio::io::duplex(1 << 22);
    let srv = server.clone();
    tokio::spawn(async move {
        let _ = srv.serve_stream(b).await;
    });
    ClientConnection::handshake(a, ability).await.unwrap()
}

#[tokio::test(flavor = "multi_thread")]
async fn capable_client_streams_reduced_rendition() {
    let server = GenerativeServer::builder()
        .site(video_site())
        .ability(ability_with_video())
        .build();
    let mut client = connect(&server, ability_with_video()).await;
    let playlist = client
        .send_request(&Request::get("/video/trailer/playlist.m3u8"))
        .await
        .unwrap();
    assert_eq!(playlist.status, 200);
    assert_eq!(playlist.headers.get("x-sww-sent-fps"), Some("30"));
    let manifest = String::from_utf8(playlist.body.to_vec()).unwrap();
    assert!(manifest.contains("Hd@30fps upscale=true fpsboost=true"));

    // Download every listed segment and measure the wire.
    let mut total = 0u64;
    for line in manifest.lines().filter(|l| l.starts_with("/video/")) {
        let seg = client.send_request(&Request::get(line)).await.unwrap();
        assert_eq!(seg.status, 200, "{line}");
        total += seg.body.len() as u64;
    }
    // One minute of 4K60 is ~116.7 MB traditional; the negotiated HD30
    // rendition is ~25 MB (4.67× less).
    let traditional = 7.0e9 / 60.0; // bytes per minute at 4K60
    let ratio = traditional / total as f64;
    assert!(
        (4.0..5.4).contains(&ratio),
        "wire ratio {ratio:.2} ({total} B)"
    );
}

#[tokio::test(flavor = "multi_thread")]
async fn naive_client_streams_full_rate() {
    let server = GenerativeServer::builder()
        .site(video_site())
        .ability(ability_with_video())
        .build();
    let mut client = connect(&server, GenAbility::none()).await;
    let playlist = client
        .send_request(&Request::get("/video/trailer/playlist.m3u8"))
        .await
        .unwrap();
    assert_eq!(playlist.headers.get("x-sww-sent-fps"), Some("60"));
    let manifest = String::from_utf8(playlist.body.to_vec()).unwrap();
    assert!(manifest.contains("Uhd4K@60fps upscale=false fpsboost=false"));
}

#[tokio::test(flavor = "multi_thread")]
async fn withdrawing_video_ability_mid_connection_changes_rendition() {
    let server = GenerativeServer::builder()
        .site(video_site())
        .ability(ability_with_video())
        .build();
    let mut client = connect(&server, ability_with_video()).await;
    let first = client
        .send_request(&Request::get("/video/trailer/playlist.m3u8"))
        .await
        .unwrap();
    assert_eq!(first.headers.get("x-sww-sent-fps"), Some("30"));
    // Battery saver: withdraw upscaling; the next playlist is full rate.
    client.update_ability(GenAbility::none()).await.unwrap();
    let second = client
        .send_request(&Request::get("/video/trailer/playlist.m3u8"))
        .await
        .unwrap();
    assert_eq!(second.headers.get("x-sww-sent-fps"), Some("60"));
}

#[tokio::test(flavor = "multi_thread")]
async fn unknown_video_paths_are_404() {
    let server = GenerativeServer::builder()
        .site(video_site())
        .ability(ability_with_video())
        .build();
    let mut client = connect(&server, ability_with_video()).await;
    for path in [
        "/video/nope/playlist.m3u8",
        "/video/trailer/seg9999.ts",
        "/video/trailer/not-a-segment",
        "/video/trailer",
    ] {
        let resp = client.send_request(&Request::get(path)).await.unwrap();
        assert_eq!(resp.status, 404, "{path}");
    }
}
