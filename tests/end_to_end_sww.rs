//! Cross-crate integration: the full SWW stack — HTTP/2 negotiation,
//! generative server and client, media generation, rendering and
//! accounting — over real sockets and in-memory streams.

mod common;

use sww::core::{GenAbility, GenerativeClient, GenerativeServer, ServerPolicy, SiteContent};
use sww::energy::device::{profile, DeviceKind};
use sww::html::gencontent;

fn two_item_site() -> SiteContent {
    let mut site = SiteContent::new();
    site.add_page(
        "/page",
        format!(
            "<html><body>{}{}<img src=\"/unique.bin\"></body></html>",
            gencontent::image_div("a foggy pine forest at dawn", "forest.jpg", 128, 128),
            gencontent::text_div(&["forest fog dawn quiet".into()], 80),
        ),
    );
    site.add_asset("/unique.bin", &b"original-unique-data"[..]);
    site
}

#[tokio::test(flavor = "multi_thread")]
async fn generative_flow_over_tcp() {
    let server = GenerativeServer::builder()
        .site(two_item_site())
        .ability(GenAbility::full())
        .build();
    let addr = common::spawn_h2(&server).await;
    let sock = common::connect(addr).await;
    let mut client =
        GenerativeClient::connect(sock, GenAbility::full(), profile(DeviceKind::Laptop))
            .await
            .unwrap();
    assert!(client.negotiated_ability().can_generate());
    let (page, stats) = client.fetch_page("/page").await.unwrap();
    // One image generated, one text expanded, one unique asset fetched.
    assert_eq!(page.generated_count(), 1);
    assert_eq!(page.expanded_texts.len(), 1);
    assert_eq!(stats.items_generated, 2);
    assert_eq!(stats.items_fetched, 1);
    // The final page has no generation markers left.
    assert!(!page.html.contains("generated-content"));
    assert!(page.html.contains("generated/forest.jpg"));
    // Wire carried less than the traditional equivalent.
    assert!(stats.wire_bytes < stats.traditional_bytes);
    assert!(stats.compression_ratio() > 2.0);
    assert!(stats.generation_time_s > 0.0);
    client.close().await.unwrap();
}

#[tokio::test(flavor = "multi_thread")]
async fn naive_client_gets_working_page_with_no_savings() {
    let server = GenerativeServer::builder()
        .site(two_item_site())
        .ability(GenAbility::full())
        .build();
    let (a, b) = tokio::io::duplex(1 << 20);
    let srv = server.clone();
    tokio::spawn(async move {
        let _ = srv.serve_stream(b).await;
    });
    let mut client = GenerativeClient::connect(a, GenAbility::none(), profile(DeviceKind::Laptop))
        .await
        .unwrap();
    let (page, stats) = client.fetch_page("/page").await.unwrap();
    // Nothing generated on the client; media was fetched (server-side
    // generated image + unique asset).
    assert_eq!(page.generated_count(), 0);
    assert_eq!(stats.items_generated, 0);
    assert_eq!(stats.items_fetched, 2);
    assert!(!page.html.contains("generated-content"));
    // No transmission savings in this mode (§2.2 / §6.2).
    assert!((stats.compression_ratio() - 1.0).abs() < 1e-9);
    // The server did the generating.
    assert!(server.server_generation_time_s() > 0.0);
}

#[tokio::test(flavor = "multi_thread")]
async fn generated_media_is_deterministic_across_clients() {
    let server = GenerativeServer::builder()
        .site(two_item_site())
        .ability(GenAbility::full())
        .build();
    let addr = common::spawn_h2(&server).await;
    let mut hashes = Vec::new();
    for _ in 0..2 {
        let sock = common::connect(addr).await;
        let mut client =
            GenerativeClient::connect(sock, GenAbility::full(), profile(DeviceKind::Laptop))
                .await
                .unwrap();
        let (page, _) = client.fetch_page("/page").await.unwrap();
        let img = &page.resources.iter().find(|r| r.generated).unwrap().image;
        hashes.push(sww::genai::fnv1a(img.data()));
        client.close().await.unwrap();
    }
    assert_eq!(hashes[0], hashes[1], "same prompt ⇒ same pixels everywhere");
}

#[tokio::test(flavor = "multi_thread")]
async fn device_changes_cost_not_content() {
    let server = GenerativeServer::builder()
        .site(two_item_site())
        .ability(GenAbility::full())
        .build();
    let addr = common::spawn_h2(&server).await;
    let mut results = Vec::new();
    for device in [DeviceKind::Laptop, DeviceKind::Workstation] {
        let sock = common::connect(addr).await;
        let mut client = GenerativeClient::connect(sock, GenAbility::full(), profile(device))
            .await
            .unwrap();
        let (page, stats) = client.fetch_page("/page").await.unwrap();
        results.push((page.html.clone(), stats.generation_time_s));
        client.close().await.unwrap();
    }
    assert_eq!(
        results[0].0, results[1].0,
        "content identical across devices"
    );
    assert!(
        results[0].1 > results[1].1 * 2.0,
        "laptop {}s must cost more than workstation {}s",
        results[0].1,
        results[1].1
    );
}

#[tokio::test(flavor = "multi_thread")]
async fn server_policy_renewable_forces_server_generation() {
    let policy = ServerPolicy {
        allow_client_generation: false,
        expand_prompts_server_side: true,
        renewable_availability: 1.0,
    };
    let server = GenerativeServer::builder()
        .site(two_item_site())
        .ability(GenAbility::full())
        .policy(policy)
        .build();
    let (a, b) = tokio::io::duplex(1 << 20);
    let srv = server.clone();
    tokio::spawn(async move {
        let _ = srv.serve_stream(b).await;
    });
    // Even a fully capable client receives materialized content.
    let mut client = GenerativeClient::connect(a, GenAbility::full(), profile(DeviceKind::Laptop))
        .await
        .unwrap();
    let (page, stats) = client.fetch_page("/page").await.unwrap();
    assert_eq!(page.generated_count(), 0);
    assert!(stats.items_fetched >= 2);
    assert_eq!(server.served_modes()["server-generated"], 1);
}

#[tokio::test(flavor = "multi_thread")]
async fn personalization_changes_pixels_only_when_opted_in() {
    use sww::core::personalize::UserProfile;
    let server = GenerativeServer::builder()
        .site(two_item_site())
        .ability(GenAbility::full())
        .build();
    let addr = common::spawn_h2(&server).await;
    let mut images = Vec::new();
    for profile_opt in [
        None,
        Some(UserProfile::with_interests(["astronomy"])),
        Some(UserProfile::with_interests(["sailing"])),
    ] {
        let sock = common::connect(addr).await;
        let mut client =
            GenerativeClient::connect(sock, GenAbility::full(), profile(DeviceKind::Workstation))
                .await
                .unwrap();
        client.set_profile(profile_opt);
        let (page, _) = client.fetch_page("/page").await.unwrap();
        let img = page.resources.iter().find(|r| r.generated).unwrap();
        images.push(sww::genai::fnv1a(img.image.data()));
        client.close().await.unwrap();
    }
    // Different interests → different pixels; both differ from baseline.
    assert_ne!(images[0], images[1]);
    assert_ne!(images[1], images[2]);
    assert_ne!(images[0], images[2]);
}

#[tokio::test(flavor = "multi_thread")]
async fn conditional_requests_revalidate_with_304() {
    let server = GenerativeServer::builder()
        .site(two_item_site())
        .ability(GenAbility::full())
        .build();
    let (a, b) = tokio::io::duplex(1 << 20);
    tokio::spawn(async move {
        let _ = server.serve_stream(b).await;
    });
    let mut conn = sww::http2::ClientConnection::handshake(a, GenAbility::full())
        .await
        .unwrap();
    let first = conn
        .send_request(&sww::http2::Request::get("/page"))
        .await
        .unwrap();
    assert_eq!(first.status, 200);
    let etag = first.headers.get("etag").unwrap().to_string();
    // Revalidate: same page, matching tag → 304 with no body.
    let mut revalidate = sww::http2::Request::get("/page");
    revalidate.headers.insert("if-none-match", etag.clone());
    let second = conn.send_request(&revalidate).await.unwrap();
    assert_eq!(second.status, 304);
    assert!(second.body.is_empty());
    assert_eq!(second.headers.get("etag"), Some(etag.as_str()));
    // A stale tag still gets the full page.
    let mut stale = sww::http2::Request::get("/page");
    stale.headers.insert("if-none-match", "\"deadbeef\"");
    let third = conn.send_request(&stale).await.unwrap();
    assert_eq!(third.status, 200);
    assert!(!third.body.is_empty());
}

#[tokio::test(flavor = "multi_thread")]
async fn missing_page_surfaces_as_error() {
    let server = GenerativeServer::builder()
        .site(two_item_site())
        .ability(GenAbility::full())
        .build();
    let (a, b) = tokio::io::duplex(1 << 20);
    tokio::spawn(async move {
        let _ = server.serve_stream(b).await;
    });
    let mut client = GenerativeClient::connect(a, GenAbility::full(), profile(DeviceKind::Laptop))
        .await
        .unwrap();
    let err = client.fetch_page("/does-not-exist").await.unwrap_err();
    assert!(err.to_string().contains("404"), "{err}");
    // The connection survives the error.
    let (page, _) = client.fetch_page("/page").await.unwrap();
    assert_eq!(page.generated_count(), 1);
}

#[tokio::test(flavor = "multi_thread")]
async fn model_levels_negotiate_down_to_common_generation() {
    // A client advertising a newer image-model generation than the server
    // settles on the server's level, so both ends would render the same
    // pixels (§7 model negotiation).
    let server_ability = GenAbility::full().with_image_model_level(2); // SD 3
    let client_ability = GenAbility::full().with_image_model_level(4); // future-fast
    let server = GenerativeServer::builder()
        .site(two_item_site())
        .ability(server_ability)
        .build();
    let (a, b) = tokio::io::duplex(1 << 20);
    tokio::spawn(async move {
        let _ = server.serve_stream(b).await;
    });
    let client = GenerativeClient::connect(a, client_ability, profile(DeviceKind::Laptop))
        .await
        .unwrap();
    let negotiated = client.negotiated_ability();
    assert!(negotiated.can_generate());
    assert_eq!(negotiated.image_model_level(), 2, "minimum of both peers");
    let (img, _) = sww::core::negotiate::select_models(negotiated);
    assert_eq!(img, sww::genai::ImageModelKind::Sd3Medium);
}

#[tokio::test(flavor = "multi_thread")]
async fn generation_cache_eliminates_repeat_cost() {
    // Two pages sharing the same stock prompt: the second render must hit
    // the client cache and cost no generation time (§7 cache placement).
    let mut site = SiteContent::new();
    let shared_div = gencontent::image_div("a reused stock banner image", "banner.jpg", 128, 128);
    site.add_page("/a", format!("<html><body>{shared_div}</body></html>"));
    site.add_page("/b", format!("<html><body>{shared_div}</body></html>"));
    let server = GenerativeServer::builder()
        .site(site)
        .ability(GenAbility::full())
        .build();
    let (a, b) = tokio::io::duplex(1 << 20);
    tokio::spawn(async move {
        let _ = server.serve_stream(b).await;
    });
    let mut client = GenerativeClient::connect(a, GenAbility::full(), profile(DeviceKind::Laptop))
        .await
        .unwrap();
    let (page_a, stats_a) = client.fetch_page("/a").await.unwrap();
    let (page_b, stats_b) = client.fetch_page("/b").await.unwrap();
    assert_eq!(stats_a.items_cached, 0);
    assert!(stats_a.generation_time_s > 0.0);
    assert_eq!(stats_b.items_cached, 1);
    assert_eq!(stats_b.generation_time_s, 0.0, "cache hit is free");
    assert_eq!(client.cache().hits, 1);
    // Identical pixels either way.
    assert_eq!(
        page_a.resources[0].image.data(),
        page_b.resources[0].image.data()
    );
}

#[tokio::test(flavor = "multi_thread")]
async fn many_sequential_pages_on_one_connection() {
    let mut site = SiteContent::new();
    for i in 0..10 {
        site.add_page(
            format!("/p{i}"),
            format!(
                "<html><body>{}</body></html>",
                gencontent::image_div(&format!("scene variant {i}"), &format!("s{i}.jpg"), 64, 64)
            ),
        );
    }
    let server = GenerativeServer::builder()
        .site(site)
        .ability(GenAbility::full())
        .build();
    let (a, b) = tokio::io::duplex(1 << 20);
    tokio::spawn(async move {
        let _ = server.serve_stream(b).await;
    });
    let mut client =
        GenerativeClient::connect(a, GenAbility::full(), profile(DeviceKind::Workstation))
            .await
            .unwrap();
    for i in 0..10 {
        let (page, _) = client.fetch_page(&format!("/p{i}")).await.unwrap();
        assert_eq!(page.generated_count(), 1, "page {i}");
    }
    client.close().await.unwrap();
}
