//! Observability contract test: a full generative fetch must leave the
//! process-wide metrics registry consistent with the `PageStats` the
//! client reports, and `GET /metrics` must expose those series in
//! Prometheus text form (all of them documented in OBSERVABILITY.md).

use sww::core::{GenAbility, GenerativeClient, GenerativeServer, SiteContent};
use sww::energy::device::{profile, DeviceKind};
use sww::html::gencontent;

/// Value of an exact series line (`name{labels} value`) in the exposition.
fn series_value(text: &str, series: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(series)?;
        rest.strip_prefix(' ')?.trim().parse().ok()
    })
}

#[tokio::test(flavor = "multi_thread")]
async fn metrics_reflect_a_generative_fetch() {
    // The registry is process-global; this test owns the whole binary so a
    // reset gives it a clean slate.
    sww::obs::reset();

    let mut site = SiteContent::new();
    site.add_page(
        "/page",
        format!(
            "<html><body>{}{}<img src=\"/unique.bin\"></body></html>",
            gencontent::image_div("a foggy pine forest at dawn", "forest.jpg", 128, 128),
            gencontent::text_div(&["forest fog dawn quiet".into()], 80),
        ),
    );
    site.add_asset("/unique.bin", &b"original-unique-data"[..]);
    let server = GenerativeServer::builder()
        .site(site)
        .ability(GenAbility::full())
        .build();

    let (a, b) = tokio::io::duplex(1 << 20);
    let srv = server.clone();
    tokio::spawn(async move {
        let _ = srv.serve_stream(b).await;
    });
    let mut client = GenerativeClient::connect(a, GenAbility::full(), profile(DeviceKind::Laptop))
        .await
        .unwrap();
    let (_page, stats) = client.fetch_page("/page").await.unwrap();
    client.close().await.unwrap();

    // Scrape /metrics over a fresh HTTP/2 connection, like any scraper would.
    let (a, b) = tokio::io::duplex(1 << 20);
    tokio::spawn(async move {
        let _ = server.serve_stream(b).await;
    });
    let mut conn = sww::http2::ClientConnection::handshake(a, GenAbility::none())
        .await
        .unwrap();
    let resp = conn
        .send_request(&sww::http2::Request::get("/metrics"))
        .await
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.headers.get("content-type"),
        Some("text/plain; version=0.0.4")
    );
    let text = String::from_utf8(resp.body.to_vec()).unwrap();

    // Counters consistent with the client's own accounting.
    let generated = stats.items_generated - stats.items_cached;
    assert_eq!(
        series_value(&text, "sww_client_items_total{source=\"generated\"}"),
        Some(generated as f64),
        "generated-item counter vs PageStats\n{text}"
    );
    assert_eq!(
        series_value(&text, "sww_client_items_total{source=\"fetched\"}"),
        Some(stats.items_fetched as f64)
    );
    assert_eq!(series_value(&text, "sww_client_pages_total"), Some(1.0));
    assert_eq!(
        series_value(&text, "sww_cache_events_total{result=\"miss\"}"),
        Some(client.cache().misses as f64)
    );
    // The modelled generation time flows into the virtual-seconds histogram.
    let virtual_sum = series_value(
        &text,
        "sww_client_generate_virtual_seconds_sum{stage=\"page_item\"}",
    )
    .unwrap();
    assert!(
        (virtual_sum - stats.generation_time_s).abs() < 1e-9,
        "virtual span sum {virtual_sum} vs PageStats {}",
        stats.generation_time_s
    );
    // Both page requests (fetch + scrape-side HEADERS already counted) hit
    // the server's route counters, labelled with the transport that
    // carried them (both connections here are h2).
    assert_eq!(
        series_value(
            &text,
            "sww_server_requests_total{route=\"page\",transport=\"h2\"}"
        ),
        Some(1.0)
    );
    assert_eq!(
        series_value(&text, "sww_server_sessions_total{transport=\"h2\"}"),
        Some(2.0),
        "fetch connection + scrape connection"
    );
    assert_eq!(
        series_value(&text, "sww_negotiate_outcomes_total{mode=\"generative\"}"),
        Some(1.0)
    );
    // HTTP/2 accounting ran: frames in both directions, HPACK saved bytes.
    assert!(series_value(&text, "sww_http2_frames_sent_total{kind=\"HEADERS\"}").unwrap() >= 2.0);
    assert!(
        series_value(&text, "sww_http2_frames_received_total{kind=\"SETTINGS\"}").unwrap() >= 2.0
    );
    let raw = series_value(&text, "sww_http2_hpack_bytes_total{form=\"raw\"}").unwrap();
    let encoded = series_value(&text, "sww_http2_hpack_bytes_total{form=\"encoded\"}").unwrap();
    assert!(encoded < raw, "HPACK must compress: {encoded} vs {raw}");

    // The contract: at least 12 distinct series covering every subsystem.
    let families: std::collections::BTreeSet<&str> = text
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    assert!(
        families.len() >= 12,
        "expected ≥12 metric families, got {}: {families:?}",
        families.len()
    );
    for prefix in [
        "sww_http2_",
        "sww_negotiate_",
        "sww_cache_",
        "sww_genai_",
        "sww_client_",
        "sww_server_",
    ] {
        assert!(
            families.iter().any(|f| f.starts_with(prefix)),
            "no {prefix}* family in {families:?}"
        );
    }
}
