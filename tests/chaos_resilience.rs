//! Chaos suite: the resilience acceptance tests for the deterministic
//! fault-injection layer (`sww::core::faults`) and the client
//! retry/degradation machinery.
//!
//! Three properties, each proven end-to-end over real HTTP/2 framing:
//!
//! 1. **Convergence** — under the documented chaos spec
//!    (`seed=42,engine.generate=error:0.10,pool.enqueue=error:0.05`)
//!    every request against the concurrent engine eventually succeeds:
//!    either retried to success or degraded to the traditional fallback.
//!    No panics, no hangs, no surviving errors.
//! 2. **Reconciliation** — the `/metrics` exposition agrees exactly with
//!    ground truth: `sww_faults_injected_total` sums to the registry's
//!    injected count, `sww_client_retries_total` equals the sum of
//!    per-page [`PageStats::retries`], and `sww_client_fallbacks_total`
//!    equals the number of pages that reported `fell_back`.
//! 3. **Reproducibility** — with a fixed seed and a single-threaded
//!    driver, two consecutive chaos runs are bit-for-bit identical:
//!    same injected-fault tallies, same per-request retry counts, same
//!    byte accounting.
//!
//! [`PageStats::retries`]: sww::core::PageStats

use std::sync::{Arc, Mutex};
use std::time::Duration;
use sww::core::faults::{self, ChaosSpec, FaultScope, FaultSite};
use sww::core::{GenAbility, GenerativeClient, GenerativeServer, RetryPolicy, SiteContent};
use sww::energy::device::{profile, DeviceKind};
use sww::genai::ImageModelKind;
use sww::html::gencontent;
use sww::http2::{ClientConnection, Request};

/// The documented fixed-seed chaos spec from the issue: 10% generation
/// faults, 5% pool admission rejections, seed 42.
const CHAOS_SPEC: &str = "seed=42,engine.generate=error:0.10,pool.enqueue=error:0.05";

/// The fault registry and the metrics registry are process-global, so
/// the tests in this binary must not interleave.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// A retry policy with real-time delays small enough for a test, but
/// the same shape as production: capped exponential backoff, seeded
/// jitter, generous attempt budget.
fn fast_retries(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(10),
        deadline: Duration::from_secs(30),
        seed,
    }
}

/// One page per prompt so every page costs a fresh generation (the
/// client cache cannot absorb the fault draws).
fn chaos_site(pages: usize) -> SiteContent {
    let mut site = SiteContent::new();
    for p in 0..pages {
        site.add_page(
            format!("/page/{p}"),
            format!(
                "<html><body>{}</body></html>",
                gencontent::image_div(
                    &format!("chaos prompt {p} over a broken bridge"),
                    &format!("chaos{p}.jpg"),
                    32,
                    32,
                )
            ),
        );
    }
    site.add_page(
        "/unsupported",
        format!(
            "<html><body>{}</body></html>",
            gencontent::image_div("a model this device cannot run", "unsupported.jpg", 32, 32)
        ),
    );
    site
}

/// Sum every labeled series of a counter family in the exposition
/// (`name{labels} value` lines), e.g. all `sww_faults_injected_total`
/// site/kind combinations.
fn sum_family(exposition: &str, name: &str) -> f64 {
    exposition
        .lines()
        .filter_map(|line| {
            let rest = line.strip_prefix(name)?;
            let rest = match rest.as_bytes().first() {
                Some(b'{') => &rest[rest.find('}')? + 1..],
                Some(b' ') => rest,
                _ => return None,
            };
            rest.trim().parse::<f64>().ok()
        })
        .sum()
}

/// Value of an exact unlabeled series line (`name value`).
fn series_value(exposition: &str, series: &str) -> Option<f64> {
    exposition.lines().find_map(|line| {
        let rest = line.strip_prefix(series)?;
        rest.strip_prefix(' ')?.trim().parse().ok()
    })
}

/// Fetch `/metrics` over a fresh naive connection, retrying through any
/// injected pool rejections (the chaos layer faults that route too).
async fn scrape_metrics(server: &GenerativeServer) -> String {
    let (a, b) = tokio::io::duplex(1 << 20);
    let srv = server.clone();
    tokio::spawn(async move {
        let _ = srv.serve_stream(b).await;
    });
    let mut conn = ClientConnection::handshake(a, GenAbility::none())
        .await
        .expect("metrics handshake");
    for _ in 0..64 {
        let resp = conn
            .send_request(&Request::get("/metrics"))
            .await
            .expect("metrics request");
        if resp.status == 200 {
            return String::from_utf8(resp.body.to_vec()).expect("utf-8 exposition");
        }
        assert_eq!(resp.status, 503, "unexpected /metrics status");
        tokio::time::sleep(Duration::from_millis(2)).await;
    }
    panic!("/metrics rejected 64 times in a row");
}

/// Convergence + reconciliation: the documented chaos spec over the
/// concurrent engine (pooled server). Every page fetch must land —
/// retried or degraded — and `/metrics` must agree with ground truth.
#[tokio::test(flavor = "multi_thread")]
#[allow(clippy::await_holding_lock)] // the guard serializes the whole test
async fn seeded_chaos_run_converges_and_counters_reconcile() {
    let _serial = serial();
    const PAGES: usize = 24;
    sww::obs::reset();
    faults::clear();
    faults::install(&ChaosSpec::parse(CHAOS_SPEC).expect("documented spec parses"));

    let server = GenerativeServer::builder()
        .site(chaos_site(PAGES))
        .ability(GenAbility::full())
        .workers(2)
        .build();
    let (a, b) = tokio::io::duplex(1 << 20);
    let srv = server.clone();
    tokio::spawn(async move {
        let _ = srv.serve_stream(b).await;
    });
    let mut client = GenerativeClient::connect(a, GenAbility::full(), profile(DeviceKind::Laptop))
        .await
        .expect("handshake");
    client.set_retry_policy(fast_retries(1));

    let mut retries_sum: u64 = 0;
    let mut fallbacks: u64 = 0;
    for p in 0..PAGES {
        // Convergence: with retries + fallback armed, no injected fault
        // may surface. An Err here (or a panic/hang anywhere) fails the
        // suite.
        let (page, stats) = client
            .fetch_page(&format!("/page/{p}"))
            .await
            .unwrap_or_else(|err| panic!("page {p} did not converge: {err:?}"));
        assert!(!page.html.contains("generated-content"), "unresolved page");
        retries_sum += u64::from(stats.retries);
        fallbacks += u64::from(stats.fell_back);
    }

    // Deterministic degradation: force a model with no local cost
    // profile, so generation fails terminally (`UnsupportedModel`) and
    // the client must fall back to server-materialized content.
    client
        .generator_mut()
        .set_image_model(ImageModelKind::Dalle3);
    let (page, stats) = client
        .fetch_page("/unsupported")
        .await
        .expect("fallback must converge");
    assert!(stats.fell_back, "terminal generation fault must degrade");
    assert!(
        page.html.contains("/generated/unsupported.jpg"),
        "fallback page must carry server-materialized media: {}",
        page.html
    );
    assert!(!page.html.contains("generated-content"), "unresolved page");
    client
        .generator_mut()
        .set_image_model(ImageModelKind::Sd3Medium);
    retries_sum += u64::from(stats.retries);
    fallbacks += u64::from(stats.fell_back);

    // The run must actually have exercised the machinery.
    assert!(faults::injected_total() > 0, "chaos layer never fired");
    assert!(retries_sum >= 1, "expected at least one retry-then-success");
    assert!(fallbacks >= 1, "expected at least one fallback");

    // Reconciliation: the exposition agrees exactly with ground truth.
    let exposition = scrape_metrics(&server).await;
    assert_eq!(
        sum_family(&exposition, "sww_faults_injected_total"),
        faults::injected_total() as f64,
        "faults exposition:\n{exposition}"
    );
    let tallies = faults::injected_counts();
    assert_eq!(
        tallies.iter().map(|(_, _, n)| n).sum::<u64>(),
        faults::injected_total(),
        "per-site tallies must sum to the total: {tallies:?}"
    );
    assert_eq!(
        series_value(&exposition, "sww_client_retries_total"),
        Some(retries_sum as f64),
        "retries exposition:\n{exposition}"
    );
    assert_eq!(
        series_value(&exposition, "sww_client_fallbacks_total"),
        Some(fallbacks as f64),
        "fallbacks exposition:\n{exposition}"
    );

    faults::clear();
}

/// What one deterministic chaos run observed, in full.
#[derive(Debug, PartialEq)]
struct Snapshot {
    injected: Vec<(&'static str, &'static str, u64)>,
    injected_total: u64,
    per_request: Vec<(u32, bool, u64)>,
}

/// One single-threaded chaos scenario: inline server (no pool, so the
/// only fault draws are the causally ordered client/server ones), one
/// client, sequential fetches. Everything observable goes into the
/// snapshot.
async fn deterministic_run(spec: &str) -> Snapshot {
    const PAGES: usize = 12;
    sww::obs::reset();
    faults::clear();
    faults::install(&ChaosSpec::parse(spec).expect("spec parses"));

    let server = GenerativeServer::builder()
        .site(chaos_site(PAGES))
        .ability(GenAbility::full())
        .build();
    let (a, b) = tokio::io::duplex(1 << 20);
    tokio::spawn(async move {
        let _ = server.serve_stream(b).await;
    });
    let mut client = GenerativeClient::connect(a, GenAbility::full(), profile(DeviceKind::Laptop))
        .await
        .expect("handshake");
    client.set_retry_policy(fast_retries(9));

    let mut per_request = Vec::with_capacity(PAGES);
    for p in 0..PAGES {
        // Record outcomes rather than requiring them: determinism must
        // hold whether or not this seed happens to converge.
        match client.fetch_page(&format!("/page/{p}")).await {
            Ok((_, stats)) => per_request.push((stats.retries, stats.fell_back, stats.wire_bytes)),
            Err(_) => per_request.push((u32::MAX, false, 0)),
        }
    }
    let snapshot = Snapshot {
        injected: faults::injected_counts(),
        injected_total: faults::injected_total(),
        per_request,
    };
    faults::clear();
    snapshot
}

/// Per-node fault scoping (PR 10): draws made inside a [`FaultScope`]
/// come from a label-derived stream with its own counters, so (a) two
/// fresh scopes with the same label replay identically even after other
/// streams were consumed, (b) different labels draw independently, and
/// (c) every scoped injection still lands in the process-wide tally.
#[test]
fn scoped_streams_are_independent_and_replayable() {
    let _serial = serial();
    const SPEC: &str = "seed=11,engine.generate=error:0.5";
    sww::obs::reset();
    faults::clear();
    faults::install(&ChaosSpec::parse(SPEC).expect("spec parses"));

    let draws = |label: &str| {
        let scope = Arc::new(FaultScope::new(label));
        let _guard = faults::enter(&scope);
        (0..64)
            .map(|_| faults::at(FaultSite::EngineGenerate).is_some())
            .collect::<Vec<bool>>()
    };

    // Consume part of the *global* stream first: scope replay must not
    // depend on the global offset (this is exactly what broke the PR 9
    // determinism gate under --chaos).
    let global: Vec<bool> = (0..64)
        .map(|_| faults::at(FaultSite::EngineGenerate).is_some())
        .collect();
    let n0_first = draws("n0");
    let more_global: Vec<bool> = (0..64)
        .map(|_| faults::at(FaultSite::EngineGenerate).is_some())
        .collect();
    let n0_second = draws("n0");
    let n1 = draws("n1");
    assert_eq!(
        n0_first, n0_second,
        "fresh same-label scopes must replay identically"
    );
    assert_ne!(n1, n0_first, "labels must draw independently");
    assert_ne!(
        n0_first, global,
        "a scope must not mirror the global stream"
    );
    assert_ne!(global, more_global, "the global stream kept advancing");

    // Relabelling re-derives the stream — the edge router relabels each
    // node's "server" scope to its node id on join.
    let relabelled = Arc::new(FaultScope::new("server"));
    let probe_hit = {
        let _guard = faults::enter(&relabelled);
        faults::at(FaultSite::EngineGenerate).is_some()
    };
    relabelled.relabel("n0");
    let via_relabel: Vec<bool> = {
        let _guard = faults::enter(&relabelled);
        (0..64)
            .map(|_| faults::at(FaultSite::EngineGenerate).is_some())
            .collect()
    };
    assert_eq!(
        via_relabel, n0_first,
        "relabel must reset to the label's stream from offset zero"
    );

    // Every draw above — global or scoped — reconciles into the one
    // process-wide tally.
    let hits = |v: &[bool]| v.iter().filter(|hit| **hit).count() as u64;
    let expected = hits(&global)
        + hits(&more_global)
        + hits(&n0_first)
        + hits(&n0_second)
        + hits(&n1)
        + hits(&via_relabel)
        + u64::from(probe_hit);
    assert_eq!(
        faults::injected_total(),
        expected,
        "scoped and global injections must share the tally"
    );
    assert!(expected > 0, "a 50% coin must land across these draws");
    faults::clear();
}

/// Bit-for-bit reproducibility: two consecutive runs of the same seeded
/// spec observe identical fault tallies and identical per-request
/// accounting, down to the byte counts.
#[tokio::test(flavor = "multi_thread")]
#[allow(clippy::await_holding_lock)] // the guard serializes the whole test
async fn chaos_runs_replay_bit_for_bit() {
    let _serial = serial();
    const SPEC: &str = "seed=7,engine.generate=error:0.25,h2.read=error:0.15";
    let first = deterministic_run(SPEC).await;
    let second = deterministic_run(SPEC).await;
    assert!(first.injected_total > 0, "chaos layer never fired");
    assert_eq!(first, second, "seeded chaos run must replay bit-for-bit");

    // A different seed over the same rules must diverge somewhere —
    // otherwise the "seeded" in seeded-PRNG is doing nothing.
    let reseeded = deterministic_run("seed=8,engine.generate=error:0.25,h2.read=error:0.15").await;
    assert_ne!(
        first, reseeded,
        "different seeds should observe different fault patterns"
    );
}
