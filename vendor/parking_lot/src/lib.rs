//! Offline vendored stub of [`parking_lot`](https://crates.io/crates/parking_lot):
//! `Mutex` and `RwLock` with parking_lot's non-poisoning API, implemented
//! over `std::sync`. A poisoned std lock is treated as acquired (parking_lot
//! has no poisoning), matching the real crate's behaviour under panic.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new rwlock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
