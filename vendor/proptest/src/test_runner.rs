//! Test configuration and the deterministic RNG behind every strategy.

/// Per-property configuration; only `cases` is meaningful in the stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs through the property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 generator. Each property derives its seed from
/// the test name, so failures reproduce across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG from an explicit seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// RNG seeded from an FNV-1a hash of `name`.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform value in `0..n` over the wider domain (`0` when `n == 0`).
    pub fn below_u128(&mut self, n: u128) -> u128 {
        if n == 0 {
            return 0;
        }
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % n
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform length in `min..=max`.
    pub fn len_between(&mut self, min: usize, max: usize) -> usize {
        if max <= min {
            return min;
        }
        min + self.below((max - min + 1) as u64) as usize
    }
}
