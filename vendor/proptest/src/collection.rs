//! Collection strategies: `vec` and `btree_map`.

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A permitted size band for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange {
            min: r.start,
            max: r.end.saturating_sub(1),
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// Strategy for `Vec<T>` with element strategy `S` (see [`vec()`]).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.len_between(self.size.min, self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vectors of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeMap<K, V>` (see [`btree_map`]).
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let len = rng.len_between(self.size.min, self.size.max);
        // Duplicate keys collapse, so the map may come out smaller than
        // `len` — same behaviour as real proptest.
        (0..len)
            .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
            .collect()
    }
}

/// Maps with `keys`/`values` entries and a size drawn from `size`.
pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        keys,
        values,
        size: size.into(),
    }
}
