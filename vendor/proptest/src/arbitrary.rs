//! `any::<T>()` — default strategies per type.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical default strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draw a value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

impl<T> Debug for AnyStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnyStrategy").finish_non_exhaustive()
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default strategy for `T` (uniform bits, with occasional
/// min/max/zero edge cases for the integer types).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

macro_rules! int_arbitrary {
    ( $($t:ty),+ $(,)? ) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    let r = rng.next_u64();
                    // 1-in-16 draws pick an edge value; the rest are uniform.
                    if r % 16 == 0 {
                        match (r >> 4) % 3 {
                            0 => <$t>::MIN,
                            1 => <$t>::MAX,
                            _ => 0,
                        }
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )+
    };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.flip()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Half raw bit patterns (NaN/inf included), half modest magnitudes.
        if rng.flip() {
            f64::from_bits(rng.next_u64())
        } else {
            let mantissa = rng.next_u64() % 2_000_001;
            mantissa as f64 / 1000.0 - 1000.0
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        if rng.flip() {
            f32::from_bits(rng.next_u64() as u32)
        } else {
            (rng.next_u64() % 2_000_001) as f32 / 1000.0 - 1000.0
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        let r = rng.next_u64();
        if r.is_multiple_of(4) {
            // Arbitrary scalar value (may be multi-byte in UTF-8).
            char::from_u32((r >> 8) as u32 % 0x11_0000).unwrap_or('\u{fffd}')
        } else {
            // Printable ASCII.
            char::from_u32(0x20 + (r >> 8) as u32 % 0x5f).unwrap_or(' ')
        }
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> String {
        let len = rng.len_between(0, 32);
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! tuple_arbitrary {
    ( $( ($($name:ident),+) ),+ $(,)? ) => {
        $(
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        )+
    };
}

tuple_arbitrary! {
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
}
