//! The [`Strategy`] trait and its combinators.

use std::fmt::Debug;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree or shrinking: `generate`
/// draws a concrete value directly from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `fun`.
    fn prop_map<O, F>(self, fun: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, fun }
    }

    /// Keep only values for which `fun` returns true. `whence` labels the
    /// filter in the panic raised if it rejects too many draws.
    fn prop_filter<F>(self, whence: &'static str, fun: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence,
            fun,
        }
    }

    /// Build a recursive strategy: `self` generates leaves, and `recurse`
    /// wraps a strategy for depth `d` into one for depth `d + 1`. The
    /// `_desired_size` / `_expected_branch_size` hints are accepted for
    /// API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![base.clone(), deeper]).boxed();
        }
        strat
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Strategy generating exactly one value, cloned per draw.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Type-erased, cheaply clonable strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoxedStrategy").finish_non_exhaustive()
    }
}

/// Uniform choice among strategies with a common value type (the
/// expansion of [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options`.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    fun: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.fun)(self.source.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    fun: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.fun)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 1000 consecutive draws",
            self.whence
        );
    }
}

macro_rules! tuple_strategy {
    ( $( ($($name:ident . $idx:tt),+) ),+ $(,)? ) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
}

macro_rules! int_range_strategy {
    ( $($t:ty),+ $(,)? ) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below_u128(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    (lo as i128 + rng.below_u128(span) as i128) as $t
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
