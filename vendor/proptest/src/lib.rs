//! Offline vendored stub of [`proptest`](https://proptest-rs.github.io/),
//! implementing the API subset the `sww` workspace uses.
//!
//! The real crate cannot be fetched in this build environment, so the
//! workspace pins this path crate instead. Differences from real proptest:
//!
//! * No shrinking: a failing case reports the generated inputs (via
//!   `Debug`) and panics immediately.
//! * Deterministic RNG: each property seeds a [`test_runner::TestRng`]
//!   from a hash of the test name, so runs are reproducible.
//! * String strategies support the regex subset the workspace uses:
//!   character classes (ranges, `^` negation, `&&[...]` intersection,
//!   trailing literal `-`), `.`, literal characters, and `{m}` / `{m,n}` /
//!   `*` / `+` / `?` repetition.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The glob-import surface: strategies, `any`, config, and the macros,
/// plus `prop` as an alias of this crate (for `prop::collection::vec`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    let __vals = ( $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )+ );
                    let __desc = format!("{:?}", __vals);
                    let ( $($arg,)+ ) = __vals;
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || { $body })
                    );
                    if let Err(__panic) = __outcome {
                        eprintln!(
                            "proptest `{}` failed at case {}/{} with input {}",
                            stringify!($name), __case + 1, __config.cases, __desc
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a property; failures report the inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property; failures report the inputs.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property; failures report the inputs.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $s:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($s) ),+
        ])
    };
}
