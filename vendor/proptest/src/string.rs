//! String strategies from regex-like patterns.
//!
//! `&'static str` implements [`Strategy`] by interpreting the string as a
//! generator pattern, matching how the workspace's tests use proptest.
//! Supported syntax: literal characters, `\` escapes, `.`, character
//! classes `[...]` (ranges `a-z`, leading `^` negation, `&&[...]`
//! intersection, trailing literal `-`), and the repetitions `{m}`,
//! `{m,n}`, `*`, `+`, `?`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// One pattern element: a character set plus a repetition band.
struct Atom {
    set: Vec<char>,
    min: usize,
    max: usize,
}

fn printable_ascii() -> Vec<char> {
    (0x20u32..=0x7e).filter_map(char::from_u32).collect()
}

/// Parse a `[...]` class starting at `chars[*i] == '['`; leaves `*i` one
/// past the closing `]`.
fn parse_class(chars: &[char], i: &mut usize) -> Vec<char> {
    debug_assert_eq!(chars[*i], '[');
    *i += 1;
    let negated = chars.get(*i) == Some(&'^');
    if negated {
        *i += 1;
    }
    let mut set: Vec<char> = Vec::new();
    let mut intersect: Option<Vec<char>> = None;
    while *i < chars.len() && chars[*i] != ']' {
        // `&&[...]` — class intersection (Rust-regex syntax).
        if chars[*i] == '&' && chars.get(*i + 1) == Some(&'&') && chars.get(*i + 2) == Some(&'[') {
            *i += 2;
            let nested = parse_class(chars, i);
            intersect = Some(match intersect {
                None => nested,
                Some(prev) => prev.into_iter().filter(|c| nested.contains(c)).collect(),
            });
            continue;
        }
        let mut lo = chars[*i];
        if lo == '\\' {
            *i += 1;
            lo = chars[*i];
        }
        // A `-` is a range operator only between two class members.
        if chars.get(*i + 1) == Some(&'-') && chars.get(*i + 2).is_some_and(|&n| n != ']') {
            let mut hi = chars[*i + 2];
            let mut advance = 3;
            if hi == '\\' {
                hi = chars[*i + 3];
                advance = 4;
            }
            for cp in (lo as u32)..=(hi as u32) {
                if let Some(c) = char::from_u32(cp) {
                    set.push(c);
                }
            }
            *i += advance;
        } else {
            set.push(lo);
            *i += 1;
        }
    }
    *i += 1; // closing `]`
    if negated {
        let excluded = set;
        set = printable_ascii()
            .into_iter()
            .filter(|c| !excluded.contains(c))
            .collect();
    }
    if let Some(keep) = intersect {
        set.retain(|c| keep.contains(c));
    }
    set
}

/// Parse an optional repetition suffix; `(1, 1)` when absent.
fn parse_repeat(chars: &[char], i: &mut usize) -> (usize, usize) {
    match chars.get(*i) {
        Some('{') => {
            *i += 1;
            let mut min = 0usize;
            while chars[*i].is_ascii_digit() {
                min = min * 10 + chars[*i].to_digit(10).expect("digit") as usize;
                *i += 1;
            }
            let max = if chars[*i] == ',' {
                *i += 1;
                let mut m = 0usize;
                while chars[*i].is_ascii_digit() {
                    m = m * 10 + chars[*i].to_digit(10).expect("digit") as usize;
                    *i += 1;
                }
                m
            } else {
                min
            };
            debug_assert_eq!(chars[*i], '}');
            *i += 1;
            (min, max)
        }
        Some('*') => {
            *i += 1;
            (0, 8)
        }
        Some('+') => {
            *i += 1;
            (1, 8)
        }
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        _ => (1, 1),
    }
}

fn compile(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let set = match chars[i] {
            '[' => parse_class(&chars, &mut i),
            '.' => {
                i += 1;
                printable_ascii()
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = parse_repeat(&chars, &mut i);
        atoms.push(Atom { set, min, max });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in compile(self) {
            if atom.set.is_empty() {
                continue;
            }
            let reps = rng.len_between(atom.min, atom.max);
            for _ in 0..reps {
                let idx = rng.below(atom.set.len() as u64) as usize;
                out.push(atom.set[idx]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_and_repeats() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9-]{0,24}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 25);
            assert!(s.chars().next().expect("nonempty").is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn intersection_excludes() {
        let mut rng = TestRng::new(11);
        for _ in 0..200 {
            let s = "[ -~&&[^'<>]]{1,50}".generate(&mut rng);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            assert!(!s.contains(['\'', '<', '>']));
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut rng = TestRng::new(13);
        let mut saw_dash = false;
        for _ in 0..300 {
            let s = "[a-]{4}".generate(&mut rng);
            assert!(s.chars().all(|c| c == 'a' || c == '-'));
            saw_dash |= s.contains('-');
        }
        assert!(saw_dash);
    }
}
