//! Offline vendored stub of tokio's attribute macros.
//!
//! `#[tokio::main]` and `#[tokio::test]` rewrite an `async fn` into a
//! synchronous one whose body drives the original async body on the stub
//! runtime's `block_on`. Implemented on the raw `proc_macro` API (no
//! syn/quote available offline): the transform removes the leading `async`
//! keyword and wraps the final brace-delimited body group, which preserves
//! the signature — generics, return types and `?` all keep working.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};
use std::str::FromStr;

/// Marks an `async fn main` entry point; runs it on the stub runtime.
#[proc_macro_attribute]
pub fn main(_attr: TokenStream, item: TokenStream) -> TokenStream {
    transform(item, false)
}

/// Marks an `async fn` test; adds `#[test]` and runs it on the stub runtime.
#[proc_macro_attribute]
pub fn test(_attr: TokenStream, item: TokenStream) -> TokenStream {
    transform(item, true)
}

fn transform(item: TokenStream, add_test_attr: bool) -> TokenStream {
    let tokens: Vec<TokenTree> = item.into_iter().collect();
    let body_idx = tokens
        .iter()
        .rposition(|t| matches!(t, TokenTree::Group(g) if g.delimiter() == Delimiter::Brace))
        .expect("async fn must have a brace-delimited body");

    let mut out = TokenStream::new();
    if add_test_attr {
        out.extend(
            TokenStream::from_str("#[::core::prelude::v1::test]").expect("test attribute parses"),
        );
    }
    let mut removed_async = false;
    for (i, token) in tokens.iter().enumerate() {
        if !removed_async {
            if let TokenTree::Ident(id) = token {
                if id.to_string() == "async" {
                    removed_async = true;
                    continue;
                }
            }
        }
        if i == body_idx {
            let inner = match token {
                TokenTree::Group(g) => g.stream(),
                _ => unreachable!("body_idx points at a group"),
            };
            let wrapped = TokenStream::from_str(&format!(
                "::tokio::runtime::block_on(async {{ {} }})",
                inner
            ))
            .expect("wrapped body parses");
            out.extend([TokenTree::Group(Group::new(Delimiter::Brace, wrapped))]);
        } else {
            out.extend([token.clone()]);
        }
    }
    out
}
