//! Offline vendored stub of [`criterion`](https://github.com/bheisler/criterion.rs),
//! implementing the API subset the `sww` workspace's benches use.
//!
//! The real crate cannot be fetched in this build environment, so the
//! workspace pins this path crate instead. There is no statistical
//! machinery: each benchmark warms up briefly, then times a fixed batch of
//! iterations and prints the mean wall-clock time per iteration.

use std::time::{Duration, Instant};

/// The benchmark context handed to `criterion_group!` target functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored — the stub uses a fixed iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id.into()), f);
        self
    }

    /// Run one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.label), |b| f(b, input));
        self
    }

    /// Finish the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timer handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up; also bounds the timed batch so slow routines finish.
        let warm_start = Instant::now();
        std::hint::black_box(routine());
        let once = warm_start.elapsed();
        let batch = if once > Duration::from_millis(50) {
            3
        } else {
            20
        };
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = batch;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher {
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iterations == 0 {
        eprintln!("  {label}: no measurement");
        return;
    }
    let per_iter = b.elapsed.as_nanos() / u128::from(b.iterations);
    eprintln!("  {label}: {per_iter} ns/iter ({} iters)", b.iterations);
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
