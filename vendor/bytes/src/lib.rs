//! Offline vendored stub of the [`bytes`](https://crates.io/crates/bytes)
//! crate, implementing exactly the API subset the `sww` workspace uses.
//!
//! The real crate cannot be fetched in this build environment (no network,
//! no registry cache), so the workspace pins this path crate instead. The
//! semantics match the real crate for the covered surface: `Bytes` is a
//! cheaply cloneable, sliceable, immutable byte buffer backed by a shared
//! allocation; `BytesMut` is a growable buffer that freezes into `Bytes`;
//! `Buf`/`BufMut` provide cursor-style reads and big-endian writes.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
///
/// Clones and slices share the same backing allocation; `slice` is O(1).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// A buffer borrowing from static data (copied here; the distinction
    /// is unobservable through the public API).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(bytes)
    }

    /// A buffer holding a copy of `data`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Length in octets.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// O(1) sub-slice sharing the same allocation.
    ///
    /// # Panics
    /// Panics when the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end: len,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` octets pre-allocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Length in octets.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Append `data`.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.inner.extend_from_slice(data);
    }

    /// Clear the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.inner), f)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

/// Cursor-style big-endian reads over a byte source.
pub trait Buf {
    /// Octets remaining.
    fn remaining(&self) -> usize;
    /// The current contiguous chunk.
    fn chunk(&self) -> &[u8];
    /// Advance the cursor by `cnt`.
    fn advance(&mut self, cnt: usize);

    /// Whether any octets remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one octet.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes([self.get_u8(), self.get_u8()])
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        for slot in &mut b {
            *slot = self.get_u8();
        }
        u32::from_be_bytes(b)
    }

    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        for slot in &mut b {
            *slot = self.get_u8();
        }
        u64::from_be_bytes(b)
    }

    /// Copy the next `len` octets out as `Bytes`.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut out = Vec::with_capacity(len);
        let mut left = len;
        while left > 0 {
            let chunk = self.chunk();
            let take = left.min(chunk.len());
            out.extend_from_slice(&chunk[..take]);
            self.advance(take);
            left -= take;
        }
        Bytes::from(out)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Big-endian appends onto a growable byte sink.
pub trait BufMut {
    /// Append raw octets.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one octet.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append an entire `Buf`.
    fn put<B: Buf>(&mut self, mut src: B)
    where
        Self: Sized,
    {
        while src.has_remaining() {
            let chunk = src.chunk();
            let n = chunk.len();
            self.put_slice(chunk);
            src.advance(n);
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn buf_round_trip() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_u16(0x0102);
        m.put_u32(0x03040506);
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0x0102);
        assert_eq!(b.get_u32(), 0x03040506);
        assert!(!b.has_remaining());
    }
}
