//! The stub executor: `block_on` drives the main future plus all spawned
//! tasks on the current thread, re-polling pending futures round-robin
//! with adaptive backoff instead of waker-driven scheduling.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};
use std::time::Duration;

type Task = Pin<Box<dyn Future<Output = ()>>>;

thread_local! {
    /// Tasks spawned since the executor last collected them.
    static NEW_TASKS: RefCell<Vec<Task>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn enqueue(task: Task) {
    NEW_TASKS.with(|q| q.borrow_mut().push(task));
}

fn noop_waker() -> Waker {
    const VTABLE: RawWakerVTable = RawWakerVTable::new(
        |_| RawWaker::new(std::ptr::null(), &VTABLE),
        |_| {},
        |_| {},
        |_| {},
    );
    // Safety: the vtable functions are all no-ops over a null pointer.
    unsafe { Waker::from_raw(RawWaker::new(std::ptr::null(), &VTABLE)) }
}

/// Run `fut` to completion on the current thread, driving every task
/// spawned while it runs. Background tasks still pending when the main
/// future completes are dropped (as on tokio runtime shutdown).
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let waker = noop_waker();
    let mut cx = Context::from_waker(&waker);
    let mut main = Box::pin(fut);
    let mut tasks: Vec<Task> = Vec::new();
    // Consecutive rounds in which nothing completed; scales the backoff.
    let mut idle_rounds: u32 = 0;
    loop {
        if let Poll::Ready(out) = main.as_mut().poll(&mut cx) {
            return out;
        }
        NEW_TASKS.with(|q| tasks.append(&mut q.borrow_mut()));
        let mut progressed = false;
        let mut i = 0;
        while i < tasks.len() {
            match tasks[i].as_mut().poll(&mut cx) {
                Poll::Ready(()) => {
                    drop(tasks.swap_remove(i));
                    progressed = true;
                }
                Poll::Pending => i += 1,
            }
            NEW_TASKS.with(|q| tasks.append(&mut q.borrow_mut()));
        }
        if progressed {
            idle_rounds = 0;
        } else {
            // Every future is pending: wait for external progress (socket
            // readiness, the wall clock) with a latency-bounded backoff.
            idle_rounds = idle_rounds.saturating_add(1);
            let backoff_us = u64::from(idle_rounds.min(200)) * 5;
            std::thread::sleep(Duration::from_micros(backoff_us));
        }
    }
}

/// Handle to the stub runtime; all instances share the thread-local
/// executor.
#[derive(Debug)]
pub struct Runtime {
    _priv: (),
}

impl Runtime {
    /// A new runtime handle.
    pub fn new() -> std::io::Result<Runtime> {
        Ok(Runtime { _priv: () })
    }

    /// Run a future to completion (see module-level [`block_on`]).
    pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
        block_on(fut)
    }
}

/// Builder matching tokio's API; all configuration is accepted and
/// ignored — the stub always executes on the calling thread.
#[derive(Debug, Default)]
pub struct Builder {
    _priv: (),
}

impl Builder {
    /// Builder for the (nominally) multi-threaded runtime.
    pub fn new_multi_thread() -> Builder {
        Builder::default()
    }

    /// Builder for the current-thread runtime.
    pub fn new_current_thread() -> Builder {
        Builder::default()
    }

    /// Accepted and ignored (the stub has exactly one worker: the caller).
    pub fn worker_threads(&mut self, _n: usize) -> &mut Builder {
        self
    }

    /// Accepted and ignored (I/O and time are always enabled).
    pub fn enable_all(&mut self) -> &mut Builder {
        self
    }

    /// Accepted and ignored.
    pub fn enable_io(&mut self) -> &mut Builder {
        self
    }

    /// Accepted and ignored.
    pub fn enable_time(&mut self) -> &mut Builder {
        self
    }

    /// Build the runtime handle.
    pub fn build(&mut self) -> std::io::Result<Runtime> {
        Runtime::new()
    }
}
