//! TCP networking over nonblocking `std::net` sockets.
//!
//! The executor re-polls pending futures, so `WouldBlock` simply maps to
//! `Poll::Pending` — no reactor registration is needed.

use std::future::Future;
use std::io::{self, Read as _, Write as _};
use std::net::SocketAddr;
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::io::{AsyncRead, AsyncWrite, ReadBuf};

/// A TCP listener accepting connections asynchronously.
#[derive(Debug)]
pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl TcpListener {
    /// Bind to `addr` (any `ToSocketAddrs`) in nonblocking mode.
    pub async fn bind<A: std::net::ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
        let inner = std::net::TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpListener { inner })
    }

    /// Accept the next inbound connection.
    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        Accept { listener: self }.await
    }

    /// The local address this listener is bound to.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}

struct Accept<'a> {
    listener: &'a TcpListener,
}

impl Future for Accept<'_> {
    type Output = io::Result<(TcpStream, SocketAddr)>;
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        match self.listener.inner.accept() {
            Ok((stream, peer)) => {
                if let Err(e) = stream.set_nonblocking(true) {
                    return Poll::Ready(Err(e));
                }
                Poll::Ready(Ok((TcpStream { inner: stream }, peer)))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        }
    }
}

/// A nonblocking TCP stream driven by the stub executor.
#[derive(Debug)]
pub struct TcpStream {
    inner: std::net::TcpStream,
}

impl TcpStream {
    /// Connect to `addr` and switch the socket to nonblocking mode.
    pub async fn connect<A: std::net::ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
        // The blocking connect is acceptable for loopback test traffic.
        let inner = std::net::TcpStream::connect(addr)?;
        inner.set_nonblocking(true)?;
        inner.set_nodelay(true).ok();
        Ok(TcpStream { inner })
    }

    /// The remote peer's address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// The local socket address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}

impl AsyncRead for TcpStream {
    fn poll_read(
        self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        let mut tmp = [0u8; 8192];
        let want = buf.remaining().min(tmp.len());
        match (&self.get_mut().inner).read(&mut tmp[..want]) {
            Ok(n) => {
                buf.put_slice(&tmp[..n]);
                Poll::Ready(Ok(()))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Poll::Pending,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        }
    }
}

impl AsyncWrite for TcpStream {
    fn poll_write(
        self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        match (&self.get_mut().inner).write(buf) {
            Ok(n) => Poll::Ready(Ok(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Poll::Pending,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        }
    }

    fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        match (&self.get_mut().inner).flush() {
            Ok(()) => Poll::Ready(Ok(())),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        }
    }

    fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        match self.get_mut().inner.shutdown(std::net::Shutdown::Write) {
            Ok(()) | Err(_) => Poll::Ready(Ok(())),
        }
    }
}
