//! Async I/O traits, combinators, and the in-memory duplex pipe.

use std::future::Future;
use std::io;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll};

/// A read buffer tracking how much of the caller's slice has been filled.
pub struct ReadBuf<'a> {
    buf: &'a mut [u8],
    filled: usize,
}

impl<'a> ReadBuf<'a> {
    /// Wrap a (fully initialized) byte slice.
    pub fn new(buf: &'a mut [u8]) -> ReadBuf<'a> {
        ReadBuf { buf, filled: 0 }
    }

    /// The filled prefix.
    pub fn filled(&self) -> &[u8] {
        &self.buf[..self.filled]
    }

    /// Octets of capacity not yet filled.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.filled
    }

    /// Append octets to the filled region.
    ///
    /// # Panics
    /// Panics if `data` exceeds the remaining capacity.
    pub fn put_slice(&mut self, data: &[u8]) {
        let end = self.filled + data.len();
        self.buf[self.filled..end].copy_from_slice(data);
        self.filled = end;
    }
}

/// Poll-based asynchronous byte reads.
pub trait AsyncRead {
    /// Attempt to read into `buf`, appending to its filled region. EOF is
    /// signalled by returning `Ready(Ok(()))` without filling anything.
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>>;
}

/// Poll-based asynchronous byte writes.
pub trait AsyncWrite {
    /// Attempt to write from `buf`, returning how many octets were taken.
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>>;
    /// Flush buffered data to the underlying transport.
    fn poll_flush(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>>;
    /// Shut down the write half.
    fn poll_shutdown(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>>;
}

impl<T: AsyncRead + Unpin + ?Sized> AsyncRead for &mut T {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        Pin::new(&mut **self.get_mut()).poll_read(cx, buf)
    }
}

impl<T: AsyncWrite + Unpin + ?Sized> AsyncWrite for &mut T {
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        Pin::new(&mut **self.get_mut()).poll_write(cx, buf)
    }
    fn poll_flush(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Pin::new(&mut **self.get_mut()).poll_flush(cx)
    }
    fn poll_shutdown(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Pin::new(&mut **self.get_mut()).poll_shutdown(cx)
    }
}

/// Future returned by [`AsyncReadExt::read`].
pub struct Read<'a, T: ?Sized> {
    io: &'a mut T,
    buf: &'a mut [u8],
}

impl<T: AsyncRead + Unpin + ?Sized> Future for Read<'_, T> {
    type Output = io::Result<usize>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut rb = ReadBuf::new(this.buf);
        match Pin::new(&mut *this.io).poll_read(cx, &mut rb) {
            Poll::Ready(Ok(())) => Poll::Ready(Ok(rb.filled().len())),
            Poll::Ready(Err(e)) => Poll::Ready(Err(e)),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Future returned by [`AsyncReadExt::read_exact`].
pub struct ReadExact<'a, T: ?Sized> {
    io: &'a mut T,
    buf: &'a mut [u8],
    done: usize,
}

impl<T: AsyncRead + Unpin + ?Sized> Future for ReadExact<'_, T> {
    type Output = io::Result<usize>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        while this.done < this.buf.len() {
            let mut rb = ReadBuf::new(&mut this.buf[this.done..]);
            match Pin::new(&mut *this.io).poll_read(cx, &mut rb) {
                Poll::Ready(Ok(())) => {
                    let n = rb.filled().len();
                    if n == 0 {
                        return Poll::Ready(Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "early eof",
                        )));
                    }
                    this.done += n;
                }
                Poll::Ready(Err(e)) => return Poll::Ready(Err(e)),
                Poll::Pending => return Poll::Pending,
            }
        }
        Poll::Ready(Ok(this.done))
    }
}

/// Future returned by [`AsyncReadExt::read_to_end`].
pub struct ReadToEnd<'a, T: ?Sized> {
    io: &'a mut T,
    out: &'a mut Vec<u8>,
    read: usize,
}

impl<T: AsyncRead + Unpin + ?Sized> Future for ReadToEnd<'_, T> {
    type Output = io::Result<usize>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        loop {
            let mut chunk = [0u8; 4096];
            let mut rb = ReadBuf::new(&mut chunk);
            match Pin::new(&mut *this.io).poll_read(cx, &mut rb) {
                Poll::Ready(Ok(())) => {
                    let filled = rb.filled();
                    if filled.is_empty() {
                        return Poll::Ready(Ok(this.read));
                    }
                    this.read += filled.len();
                    this.out.extend_from_slice(filled);
                }
                Poll::Ready(Err(e)) => return Poll::Ready(Err(e)),
                Poll::Pending => return Poll::Pending,
            }
        }
    }
}

/// Combinators over [`AsyncRead`], mirroring tokio's extension trait.
pub trait AsyncReadExt: AsyncRead {
    /// Read up to `buf.len()` octets (0 at EOF).
    fn read<'a>(&'a mut self, buf: &'a mut [u8]) -> Read<'a, Self>
    where
        Self: Unpin,
    {
        Read { io: self, buf }
    }

    /// Read exactly `buf.len()` octets or fail with `UnexpectedEof`.
    fn read_exact<'a>(&'a mut self, buf: &'a mut [u8]) -> ReadExact<'a, Self>
    where
        Self: Unpin,
    {
        ReadExact {
            io: self,
            buf,
            done: 0,
        }
    }

    /// Read until EOF, appending to `out`.
    fn read_to_end<'a>(&'a mut self, out: &'a mut Vec<u8>) -> ReadToEnd<'a, Self>
    where
        Self: Unpin,
    {
        ReadToEnd {
            io: self,
            out,
            read: 0,
        }
    }
}

impl<T: AsyncRead + ?Sized> AsyncReadExt for T {}

/// Future returned by [`AsyncWriteExt::write_all`].
pub struct WriteAll<'a, T: ?Sized> {
    io: &'a mut T,
    buf: &'a [u8],
}

impl<T: AsyncWrite + Unpin + ?Sized> Future for WriteAll<'_, T> {
    type Output = io::Result<()>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        while !this.buf.is_empty() {
            match Pin::new(&mut *this.io).poll_write(cx, this.buf) {
                Poll::Ready(Ok(0)) => {
                    return Poll::Ready(Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "write returned 0",
                    )))
                }
                Poll::Ready(Ok(n)) => this.buf = &this.buf[n..],
                Poll::Ready(Err(e)) => return Poll::Ready(Err(e)),
                Poll::Pending => return Poll::Pending,
            }
        }
        Poll::Ready(Ok(()))
    }
}

/// Future returned by [`AsyncWriteExt::flush`].
pub struct Flush<'a, T: ?Sized> {
    io: &'a mut T,
}

impl<T: AsyncWrite + Unpin + ?Sized> Future for Flush<'_, T> {
    type Output = io::Result<()>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        Pin::new(&mut *self.get_mut().io).poll_flush(cx)
    }
}

/// Future returned by [`AsyncWriteExt::shutdown`].
pub struct Shutdown<'a, T: ?Sized> {
    io: &'a mut T,
}

impl<T: AsyncWrite + Unpin + ?Sized> Future for Shutdown<'_, T> {
    type Output = io::Result<()>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        Pin::new(&mut *self.get_mut().io).poll_shutdown(cx)
    }
}

/// Combinators over [`AsyncWrite`], mirroring tokio's extension trait.
pub trait AsyncWriteExt: AsyncWrite {
    /// Write the entire buffer.
    fn write_all<'a>(&'a mut self, buf: &'a [u8]) -> WriteAll<'a, Self>
    where
        Self: Unpin,
    {
        WriteAll { io: self, buf }
    }

    /// Flush the transport.
    fn flush(&mut self) -> Flush<'_, Self>
    where
        Self: Unpin,
    {
        Flush { io: self }
    }

    /// Shut down the write half.
    fn shutdown(&mut self) -> Shutdown<'_, Self>
    where
        Self: Unpin,
    {
        Shutdown { io: self }
    }
}

impl<T: AsyncWrite + ?Sized> AsyncWriteExt for T {}

/// One direction of the duplex pipe.
struct PipeState {
    buf: std::collections::VecDeque<u8>,
    /// Set when the writing end has shut down or been dropped.
    write_closed: bool,
    /// Set when the reading end has been dropped (writes then fail).
    read_closed: bool,
    capacity: usize,
}

impl PipeState {
    fn new(capacity: usize) -> Arc<Mutex<PipeState>> {
        Arc::new(Mutex::new(PipeState {
            buf: std::collections::VecDeque::new(),
            write_closed: false,
            read_closed: false,
            capacity,
        }))
    }
}

/// One end of an in-memory, bidirectional, flow-controlled byte stream.
pub struct DuplexStream {
    read: Arc<Mutex<PipeState>>,
    write: Arc<Mutex<PipeState>>,
}

/// Create a connected pair of in-memory streams; each direction buffers at
/// most `max_buf_size` octets before writes return `Pending`.
pub fn duplex(max_buf_size: usize) -> (DuplexStream, DuplexStream) {
    let a_to_b = PipeState::new(max_buf_size.max(1));
    let b_to_a = PipeState::new(max_buf_size.max(1));
    (
        DuplexStream {
            read: Arc::clone(&b_to_a),
            write: Arc::clone(&a_to_b),
        },
        DuplexStream {
            read: a_to_b,
            write: b_to_a,
        },
    )
}

impl AsyncRead for DuplexStream {
    fn poll_read(
        self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        let mut pipe = self.read.lock().unwrap_or_else(|e| e.into_inner());
        if pipe.buf.is_empty() {
            return if pipe.write_closed {
                Poll::Ready(Ok(())) // EOF
            } else {
                Poll::Pending
            };
        }
        let n = buf.remaining().min(pipe.buf.len());
        for _ in 0..n {
            let b = pipe.buf.pop_front().expect("n bounded by len");
            buf.put_slice(&[b]);
        }
        Poll::Ready(Ok(()))
    }
}

impl AsyncWrite for DuplexStream {
    fn poll_write(
        self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        let mut pipe = self.write.lock().unwrap_or_else(|e| e.into_inner());
        if pipe.read_closed || pipe.write_closed {
            return Poll::Ready(Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "peer closed",
            )));
        }
        let space = pipe.capacity.saturating_sub(pipe.buf.len());
        if space == 0 {
            return Poll::Pending;
        }
        let n = space.min(buf.len());
        pipe.buf.extend(&buf[..n]);
        Poll::Ready(Ok(n))
    }

    fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Poll::Ready(Ok(()))
    }

    fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        let mut pipe = self.write.lock().unwrap_or_else(|e| e.into_inner());
        pipe.write_closed = true;
        Poll::Ready(Ok(()))
    }
}

impl Drop for DuplexStream {
    fn drop(&mut self) {
        // Peer reads drain the buffer then see EOF; peer writes fail.
        self.write
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .write_closed = true;
        self.read
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .read_closed = true;
    }
}

impl std::fmt::Debug for DuplexStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DuplexStream").finish_non_exhaustive()
    }
}
