//! Offline vendored stub of [`tokio`](https://tokio.rs), implementing the
//! API subset the `sww` workspace uses on a single-threaded cooperative
//! executor.
//!
//! The real crate cannot be fetched in this build environment, so the
//! workspace pins this path crate instead. Scope:
//!
//! * [`runtime`] — `Runtime`/`Builder` plus a thread-local `block_on`
//!   executor that drives the main future and every `spawn`ed task
//!   round-robin with adaptive backoff (no wakers needed; pending futures
//!   are simply re-polled).
//! * [`spawn`]/[`task::JoinHandle`] — cooperative tasks on the same
//!   thread's executor; handles are futures resolving to `Result<T, JoinError>`.
//! * [`io`] — `AsyncRead`/`AsyncWrite` traits with the `AsyncReadExt`/
//!   `AsyncWriteExt` combinators (`read`, `read_exact`, `write_all`,
//!   `flush`, `shutdown`) and an in-memory [`io::duplex`] pipe.
//! * [`net`] — `TcpListener`/`TcpStream` over nonblocking `std::net`
//!   sockets polled by the executor.
//! * [`time`] — `sleep` against the wall clock.
//!
//! Concurrency model: all tasks spawned during a `block_on` run on that
//! thread, interleaving at `.await` points. That is exactly what the sww
//! test-suite and examples need (client and server ends of a duplex pipe
//! or loopback socket progressing together); CPU-bound work inside a task
//! simply delays its peers, as on any single worker.

pub mod io;
pub mod net;
pub mod runtime;
pub mod task;
pub mod time;

pub use task::spawn;

// `#[tokio::main]` / `#[tokio::test]` attribute macros.
pub use tokio_macros::{main, test};
