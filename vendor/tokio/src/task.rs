//! Cooperative tasks and join handles.

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll};

/// Error returned when a joined task did not produce a value.
///
/// The stub has no cancellation, so this is only constructed if a task is
/// dropped unfinished at runtime shutdown while a handle still waits.
#[derive(Debug)]
pub struct JoinError {
    _priv: (),
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task failed to complete")
    }
}

impl std::error::Error for JoinError {}

struct JoinState<T> {
    result: Option<T>,
}

/// An owned handle awaiting a spawned task's output.
pub struct JoinHandle<T> {
    state: Arc<Mutex<JoinState<T>>>,
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match st.result.take() {
            Some(v) => Poll::Ready(Ok(v)),
            None => Poll::Pending,
        }
    }
}

/// Spawn a future onto the current thread's executor. The task runs
/// cooperatively inside the enclosing [`crate::runtime::block_on`] call.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    let state = Arc::new(Mutex::new(JoinState { result: None }));
    let task_state = Arc::clone(&state);
    crate::runtime::enqueue(Box::pin(async move {
        let out = fut.await;
        task_state.lock().unwrap_or_else(|e| e.into_inner()).result = Some(out);
    }));
    JoinHandle { state }
}
