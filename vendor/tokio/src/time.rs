//! Wall-clock timers.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::{Duration, Instant};

/// Future returned by [`sleep`].
#[derive(Debug)]
pub struct Sleep {
    deadline: Instant,
}

impl Future for Sleep {
    type Output = ();
    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.deadline {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}

/// Sleep for at least `duration` (re-polled by the executor's backoff loop,
/// so resolution is roughly the backoff granularity, not tick-precise).
pub fn sleep(duration: Duration) -> Sleep {
    Sleep {
        deadline: Instant::now() + duration,
    }
}
