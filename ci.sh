#!/usr/bin/env bash
# CI gate for the sww workspace: tier-1 build+tests, doc and format checks.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release (tier-1)"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test --release --test concurrent_engine (engine stress)"
cargo test --release --test concurrent_engine -q

echo "==> cargo test --release --test chaos_resilience (fixed-seed chaos gate)"
cargo test --release --test chaos_resilience -q

echo "==> cargo test --release --test lifecycle (deadline/cancel/overload gate)"
cargo test --release --test lifecycle -q

echo "==> cargo test --release --test batch_equivalence (batched == sequential, bit for bit)"
cargo test --release --test batch_equivalence -q

echo "==> cargo test --test golden_tables (paper-table regression snapshots)"
cargo test --test golden_tables -q

echo "==> cargo test -p sww-http2 --test proptest_hpack (HPACK property suite)"
cargo test -p sww-http2 --test proptest_hpack -q

echo "==> cargo test -p sww-html --test proptest_gencontent (generated-content property suite)"
cargo test -p sww-html --test proptest_gencontent -q

# Ratchet: the workspace test count must never silently shrink. Raise the
# floor when a PR adds tests; a drop below it means tests were lost.
TEST_FLOOR=690
echo "==> workspace test-count floor (>= ${TEST_FLOOR})"
TEST_COUNT=$(cargo test --workspace -- --list 2>/dev/null | grep -c ": test$")
echo "    ${TEST_COUNT} tests"
if [ "${TEST_COUNT}" -lt "${TEST_FLOOR}" ]; then
    echo "FAIL: workspace test count ${TEST_COUNT} fell below the floor ${TEST_FLOOR}" >&2
    exit 1
fi

echo "==> cargo clippy --workspace --all-targets (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps --workspace (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI green."
