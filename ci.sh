#!/usr/bin/env bash
# CI gate for the sww workspace: tier-1 build+tests, doc and format checks.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release (tier-1)"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test --release --test concurrent_engine (engine stress)"
cargo test --release --test concurrent_engine -q

echo "==> cargo test --release --test chaos_resilience (fixed-seed chaos gate)"
cargo test --release --test chaos_resilience -q

echo "==> cargo clippy --workspace --all-targets (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps --workspace (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI green."
