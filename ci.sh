#!/usr/bin/env bash
# CI gate for the sww workspace: tier-1 build+tests, doc and format checks.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release (tier-1)"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test --release --test concurrent_engine (engine stress)"
cargo test --release --test concurrent_engine -q

echo "==> cargo test --release --test chaos_resilience (fixed-seed chaos gate)"
cargo test --release --test chaos_resilience -q

echo "==> cargo test --release --test lifecycle (deadline/cancel/overload gate)"
cargo test --release --test lifecycle -q

echo "==> cargo test --release --test batch_equivalence (batched == sequential, bit for bit)"
cargo test --release --test batch_equivalence -q

echo "==> cargo test -p sww-genai --test proptest_kernel (tiled kernel bit-identity property suite)"
cargo test -p sww-genai --test proptest_kernel -q

echo "==> cargo test --release -p sww-genai --test steady_state_alloc (zero-allocation hot path)"
cargo test --release -p sww-genai --test steady_state_alloc -q

echo "==> cargo test --test golden_tables (paper-table regression snapshots)"
cargo test --test golden_tables -q

# Perf gate: run the E17 tiled-kernel sweeps, emit the machine-readable
# report, and compare it against the checked-in baseline. The gate reads
# the *modelled* throughput columns (deterministic cost model — see
# PERFORMANCE.md), so it fails on a real kernel/cost regression, never on
# host noise; it also enforces the >= 1.5x batch-8 speedup floor and zero
# steady-state pool allocations. Re-bless after an intentional change:
#   SWW_BLESS=1 ./ci.sh        (or: ./target/release/sww-cli bench-pr6 --out BENCH_PR6.json)
echo "==> bench-pr6 perf gate (target/BENCH_PR6.json vs checked-in baseline)"
./target/release/sww-cli bench-pr6 --out target/BENCH_PR6.json 2>/dev/null
if [ "${SWW_BLESS:-0}" = "1" ]; then
    cp target/BENCH_PR6.json BENCH_PR6.json
    echo "    blessed: BENCH_PR6.json updated from this run"
fi
./target/release/sww-cli bench-compare BENCH_PR6.json target/BENCH_PR6.json --tolerance 0.10

echo "==> cargo test -p sww-http2 --test proptest_hpack (HPACK property suite)"
cargo test -p sww-http2 --test proptest_hpack -q

echo "==> cargo test -p sww-http3 --test proptest_h3_state (h3 wire-state property suite)"
cargo test -p sww-http3 --test proptest_h3_state -q

echo "==> cargo test --release --test transport_equivalence (h2 == h3, byte for byte)"
cargo test --release --test transport_equivalence -q

echo "==> cargo test --release --test transport_hol (E18 head-of-line + /metrics reconciliation)"
cargo test --release --test transport_hol -q

# E18 gate: the h2-vs-h3 page-load comparison through the real chaos
# registry, with the latency spec on the command line exactly as a user
# would run it. Exits non-zero if the per-recipe payloads diverge
# between transports.
echo "==> bench-transport --chaos (E18 h2-vs-h3 gate)"
./target/release/sww-cli bench-transport --pages 3 --recipes 4 --gen-latency-ms 20 \
    --chaos "seed=7,engine.generate=latency:1.0:20" >/dev/null

echo "==> cargo test -p sww-core --test proptest_ring (consistent-hash ring property suite)"
cargo test -p sww-core --test proptest_ring -q

echo "==> cargo test -p sww-core --test proptest_gossip (SWIM failure-detector property suite)"
cargo test -p sww-core --test proptest_gossip -q

echo "==> cargo test --release --test edge_cluster (E19/E21 exactly-once + kill/replication battery)"
cargo test --release --test edge_cluster -q

# E19+E21 gate: the edge-cluster sweep, node-kill chaos run, and the
# replication failover + gossip partition scenarios from the command
# line exactly as a user would run them. Exits non-zero if the global
# hit rate is not strictly increasing with node count, any response is
# lost across a kill, payloads diverge after failover, the replicated
# failover pays a regeneration (or the unreplicated control pays none),
# or the gossip partition misses its deterministic heal bound.
echo "==> bench-cluster --chaos --replication 2 (E19+E21 edge gate)"
./target/release/sww-cli bench-cluster --nodes 1,2 --threads 2 --requests 5 \
    --replication 2 \
    --chaos "seed=7,engine.generate=latency:1.0:10" >/dev/null

echo "==> cargo test -p sww-html --test proptest_gencontent (generated-content property suite)"
cargo test -p sww-html --test proptest_gencontent -q

echo "==> cargo test -p sww-workload --test proptest_smallworld (Watts-Strogatz property suite)"
cargo test -p sww-workload --test proptest_smallworld -q

echo "==> cargo test --release --test workload_replay (E20 seeded-replay determinism + /metrics reconciliation)"
cargo test --release --test workload_replay -q

# E20 gate: the small-world workload sweep and live replay from the
# command line exactly as a user would run it, under chaos. Exits
# non-zero if the bounded-cache hit rate is not strictly increasing
# with graph clustering, any modelled p99 breaks the deadline, or two
# seeded replays diverge — response digests included even under chaos:
# each server draws faults from its own seeded scope, so the fault
# schedule replays per instance (the PR 9 waiver is gone).
echo "==> bench-workload --chaos (E20 workload gate)"
./target/release/sww-cli bench-workload --requests 20000 --live-requests 150 \
    --chaos "seed=9,engine.generate=latency:0.5:5" >/dev/null

# Ratchet: the workspace test count must never silently shrink. Raise the
# floor when a PR adds tests; a drop below it means tests were lost.
TEST_FLOOR=885
echo "==> workspace test-count floor (>= ${TEST_FLOOR})"
TEST_COUNT=$(cargo test --workspace -- --list 2>/dev/null | grep -c ": test$")
echo "    ${TEST_COUNT} tests"
if [ "${TEST_COUNT}" -lt "${TEST_FLOOR}" ]; then
    echo "FAIL: workspace test count ${TEST_COUNT} fell below the floor ${TEST_FLOOR}" >&2
    exit 1
fi

echo "==> cargo clippy --workspace --all-targets (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps --workspace (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI green."
