//! The §7 mobile scenario: the same SWW page fetched by laptop,
//! workstation and NPU-flagship mobile clients, comparing modelled
//! generation time and energy — and showing what a future fast model
//! changes.
//!
//! Run with: `cargo run --example mobile_generation --release`

use sww::core::{GenAbility, GenerativeClient, GenerativeServer, SiteContent};
use sww::energy::device::{profile, DeviceKind};
use sww::html::gencontent;

#[tokio::main]
async fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut site = SiteContent::new();
    site.add_page(
        "/feed",
        format!(
            "<html><body>{}{}{}</body></html>",
            gencontent::image_div("a cozy cafe interior with warm light", "a.jpg", 256, 256),
            gencontent::image_div("a park in autumn with fallen leaves", "b.jpg", 256, 256),
            gencontent::image_div("a rainy street reflecting neon signs", "c.jpg", 256, 256),
        ),
    );
    let server = GenerativeServer::builder()
        .site(site)
        .ability(GenAbility::full())
        .build();
    let addr = server.spawn_tcp("127.0.0.1:0").await?;

    println!("three 256x256 images per page (a social-feed screenful)\n");
    for device in [
        DeviceKind::Workstation,
        DeviceKind::Laptop,
        DeviceKind::Mobile,
    ] {
        let sock = tokio::net::TcpStream::connect(addr).await?;
        let mut client =
            GenerativeClient::connect(sock, GenAbility::full(), profile(device)).await?;
        let (_, stats) = client.fetch_page("/feed").await?;
        println!(
            "{:<28} generation {:>7.1} s   energy {:.3} Wh",
            profile(device).name,
            stats.generation_time_s,
            stats.generation_energy.wh()
        );
        client.close().await?;
    }

    println!(
        "\nwith a future fast model (§7), the mobile page drops to ≈{:.1} s",
        sww::energy::cost::image_generation_time(
            sww::genai::ImageModelKind::FluxFast,
            &profile(DeviceKind::Mobile),
            256,
            256,
            15
        )
        .unwrap()
            * 3.0
    );
    println!("(the paper: accelerators and lighter models make mobile SWW viable)");
    Ok(())
}
