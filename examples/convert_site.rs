//! The §4.2 conversion pipeline: take a traditional page, tag its content
//! in the CMS, invert the generatable images into prompts, bulletize the
//! long text, and report per-item fidelity for the webpage editor.
//!
//! Run with: `cargo run --example convert_site --release`

use std::collections::HashMap;
use sww::core::cms::{Cms, ContentTag, Template};
use sww::core::convert::Converter;
use sww::genai::diffusion::{DiffusionModel, ImageModelKind};
use sww::genai::image::codec;

fn main() {
    // A "legacy" page: three images + a long paragraph + a short one.
    let html = r#"<html><body>
        <h1>Visit the lake district</h1>
        <img src="img/stock-hero.jpg" width="512" height="512">
        <p>The lakes region rewards unhurried visitors with quiet walking paths that follow the
        shoreline between the old villages. Wooden boats still cross the water each morning and the
        hills above the eastern shore offer wide views across the whole valley toward the distant
        mountain ranges that close the horizon.</p>
        <p>Opening hours vary by season.</p>
        <img src="img/stock-boats.jpg" width="256" height="256">
        <img src="uploads/photo-press-event.jpg" width="512" height="512">
    </body></html>"#;

    // CMS tagging (§4.2): template defaults + an editor override.
    let mut cms = Cms::new();
    for path in [
        "img/stock-hero.jpg",
        "img/stock-boats.jpg",
        "uploads/photo-press-event.jpg",
    ] {
        let tag = cms.register(Template::Blog, path);
        println!("CMS: {path} → {tag:?}");
    }
    // The editor confirms the press photo must stay unique.
    cms.set_tag("uploads/photo-press-event.jpg", ContentTag::Unique);

    // The original media store (camera/stock files).
    let camera = DiffusionModel::new(ImageModelKind::Dalle3);
    let mut store: HashMap<&str, Vec<u8>> = HashMap::new();
    store.insert(
        "img/stock-hero.jpg",
        codec::encode(
            &camera.generate("a wide lake landscape with hills", 512, 512, 15),
            70,
        ),
    );
    store.insert(
        "img/stock-boats.jpg",
        codec::encode(
            &camera.generate("wooden boats on a calm lake", 256, 256, 15),
            70,
        ),
    );
    store.insert(
        "uploads/photo-press-event.jpg",
        codec::encode(
            &camera.generate("a press event photograph", 512, 512, 15),
            70,
        ),
    );

    let converter = Converter::new(&cms);
    let report = converter.convert_page(html, |src| store.get(src).cloned());

    println!(
        "\nconverted {} items, skipped {}",
        report.items.len(),
        report.skipped
    );
    for item in &report.items {
        println!(
            "  {:<28} {:>7} B → {:>4} B   fidelity {:.3}",
            item.source, item.original_bytes, item.converted_bytes, item.fidelity
        );
    }
    println!(
        "\ntotal: {} B → {} B ({:.1}x compression across converted items)",
        report.original_bytes(),
        report.converted_bytes(),
        report.compression_ratio()
    );
    let press_kept = report.html.contains("uploads/photo-press-event.jpg");
    println!("unique press photo kept as file: {press_kept}");
}
