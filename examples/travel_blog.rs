//! The paper's §2.1 motivating scenario: a travel-blog page with generic
//! stock content (shipped as prompts) and unique hike photographs
//! (fetched traditionally). Fetches the page as a generative client and
//! as a naive client, compares the accounting, and demonstrates opt-in
//! personalization (§2.3).
//!
//! Run with: `cargo run --example travel_blog --release`

use sww::core::personalize::{personalize, UserProfile};
use sww::core::{GenAbility, GenerativeClient, GenerativeServer};
use sww::energy::device::{profile, DeviceKind};
use sww::workload::blog;

#[tokio::main]
async fn main() -> Result<(), Box<dyn std::error::Error>> {
    let site = blog::travel_blog();
    let server = GenerativeServer::builder()
        .site(site)
        .ability(GenAbility::full())
        .build();
    let addr = server.spawn_tcp("127.0.0.1:0").await?;

    // Generative visitor (laptop).
    let sock = tokio::net::TcpStream::connect(addr).await?;
    let mut generative =
        GenerativeClient::connect(sock, GenAbility::full(), profile(DeviceKind::Laptop)).await?;
    let (page, stats) = generative.fetch_page(blog::BLOG_PATH).await?;
    println!("== generative visitor ==");
    println!("  generated stock media: {}", page.generated_count());
    println!(
        "  unique photos fetched:  {}",
        page.image_count() - page.generated_count()
    );
    println!("  wire bytes:  {}", stats.wire_bytes);
    println!("  traditional: {}", stats.traditional_bytes);
    println!("  compression: {:.2}x", stats.compression_ratio());
    println!(
        "  on-device generation: {:.1} s, {:.3} Wh",
        stats.generation_time_s,
        stats.generation_energy.wh()
    );
    generative.close().await?;

    // Naive visitor: the server expands prompts itself (§5.1).
    let sock = tokio::net::TcpStream::connect(addr).await?;
    let mut naive =
        GenerativeClient::connect(sock, GenAbility::none(), profile(DeviceKind::Laptop)).await?;
    let (page, stats) = naive.fetch_page(blog::BLOG_PATH).await?;
    println!("\n== naive visitor (server-generated) ==");
    println!("  media fetched: {}", page.image_count());
    println!("  wire bytes:  {}", stats.wire_bytes);
    println!(
        "  compression: {:.2}x (no transmission win, storage win only)",
        stats.compression_ratio()
    );
    println!(
        "  server-side generation so far: {:.1} s",
        server.server_generation_time_s()
    );
    naive.close().await?;

    // Personalization (§2.3): opt-in, auditable prompt adjustment.
    let hiker = UserProfile::with_interests(["wildflowers", "alpine lakes"]);
    let adjusted = personalize("a scenic mountain landscape with hiking trail", &hiker, 2);
    println!("\n== personalization (opt-in) ==");
    println!("  base prompt + profile → {}", adjusted.prompt);
    Ok(())
}
