//! SWW over HTTP/3 (the paper's §3.1 next step): the same generative
//! server core behind an H3 front end, with GEN_ABILITY carried in H3
//! SETTINGS over a QUIC-like stream transport.
//!
//! Run with: `cargo run --example http3_fetch --release`

use sww::core::mediagen::{GeneratedMedia, MediaGenerator};
use sww::core::{GenAbility, GenerativeServer, SiteContent};
use sww::energy::device::{profile, DeviceKind};
use sww::html::gencontent;
use sww::http2::Request;
use sww::http3::H3ClientConnection;

#[tokio::main]
async fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut site = SiteContent::new();
    site.add_page(
        "/gallery",
        format!(
            "<html><body><h1>Gallery</h1>{}{}</body></html>",
            gencontent::image_div(
                "a lighthouse on a rocky coast at dusk",
                "light.jpg",
                128,
                128
            ),
            gencontent::image_div("rolling vineyard hills in summer", "vines.jpg", 128, 128),
        ),
    );
    let server = GenerativeServer::builder()
        .site(site)
        .ability(GenAbility::full())
        .build();

    let (client_io, server_io) = tokio::io::duplex(1 << 20);
    tokio::spawn(async move {
        let _ = server.serve_h3_stream(server_io).await;
    });

    let mut client = H3ClientConnection::handshake(client_io, GenAbility::full()).await?;
    println!(
        "HTTP/3 negotiated: generate={}",
        client.negotiated_ability().can_generate()
    );
    let resp = client.send_request(&Request::get("/gallery")).await?;
    println!(
        "GET /gallery → {} ({}, {} B)",
        resp.status,
        resp.headers.get("x-sww-mode").unwrap_or("?"),
        resp.body.len()
    );

    // Resolve the page with the shared media generator.
    let html = String::from_utf8(resp.body.to_vec())?;
    let doc = sww::html::parse(&html);
    let mut generator = MediaGenerator::new(profile(DeviceKind::Laptop));
    for item in gencontent::extract(&doc) {
        let (media, cost) = generator.generate(&item);
        if let GeneratedMedia::Image { name, encoded, .. } = media {
            println!(
                "generated {name}: {} B encoded, modelled {:.1} s on the laptop",
                encoded.len(),
                cost.time_s
            );
        }
    }
    Ok(())
}
