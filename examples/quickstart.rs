//! Quickstart: a generative server and client over a real TCP loopback
//! socket. The server stores a page in prompt form; the client negotiates
//! `SETTINGS_GEN_ABILITY`, fetches the page, generates the media
//! on-device, and prints the byte/time/energy accounting.
//!
//! Run with: `cargo run --example quickstart --release`

use sww::core::{GenAbility, GenerativeClient, GenerativeServer, SiteContent};
use sww::energy::device::{profile, DeviceKind};
use sww::html::gencontent;

#[tokio::main]
async fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A site stored in prompt form: one stock image + one text block.
    let mut site = SiteContent::new();
    site.add_page(
        "/welcome",
        format!(
            "<html><head><title>SWW quickstart</title></head><body><h1>Welcome</h1>{}{}</body></html>",
            gencontent::image_div(
                "a cartoon goldfish swimming in a round glass bowl, bright colors",
                "goldfish.jpg",
                256,
                256
            ),
            gencontent::text_div(
                &[
                    "small world web prompts instead of media".into(),
                    "content generated on the user device".into(),
                ],
                120
            ),
        ),
    );

    // 2. Serve it over TCP with full generative ability.
    let server = GenerativeServer::builder()
        .site(site)
        .ability(GenAbility::full())
        .build();
    let addr = server.spawn_tcp("127.0.0.1:0").await?;
    println!("server listening on {addr}");
    println!(
        "stored (prompt form): {} B, traditional equivalent: {} B",
        server.stored_bytes(),
        server.traditional_bytes()
    );

    // 3. A generative client on a laptop-class device.
    let sock = tokio::net::TcpStream::connect(addr).await?;
    let mut client =
        GenerativeClient::connect(sock, GenAbility::full(), profile(DeviceKind::Laptop)).await?;
    println!(
        "negotiated ability: generate={}",
        client.negotiated_ability().can_generate()
    );

    // 4. Fetch and resolve the page.
    let (page, stats) = client.fetch_page("/welcome").await?;
    println!("\nrendered page:");
    println!("  images generated on-device: {}", page.generated_count());
    println!(
        "  text blocks expanded:       {}",
        page.expanded_texts.len()
    );
    println!("\naccounting:");
    println!("  wire bytes:        {}", stats.wire_bytes);
    println!("  traditional bytes: {}", stats.traditional_bytes);
    println!("  compression:       {:.1}x", stats.compression_ratio());
    println!(
        "  generation time:   {:.1} s (modelled, M1 Pro laptop)",
        stats.generation_time_s
    );
    println!(
        "  generation energy: {:.3} Wh",
        stats.generation_energy.wh()
    );
    println!(
        "  transmission energy saved: {:.4} Wh",
        stats.transmission_energy_saved().wh()
    );

    let preview: String = page.expanded_texts[0].chars().take(160).collect();
    println!("\nexpanded text preview: {preview}…");
    client.close().await?;
    Ok(())
}
