//! The Figure 2 experiment end to end: the Wikimedia "Landscape" search
//! page (49 images) served as prompts, regenerated on-device, with the
//! paper's headline numbers printed and the regenerated images dumped as
//! PPM files for visual comparison.
//!
//! Run with: `cargo run --example wikimedia_landscape --release`

use sww::core::{GenAbility, GenerativeClient, GenerativeServer, SiteContent};
use sww::energy::device::{profile, DeviceKind};
use sww::genai::metrics::clip;
use sww::workload::wikimedia;

#[tokio::main]
async fn main() -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("building the 49-image workload …");
    let workload = wikimedia::landscape_search_page();

    let mut site = SiteContent::new();
    site.add_page("/wiki/landscape", workload.sww_html.clone());
    let server = GenerativeServer::builder()
        .site(site)
        .ability(GenAbility::full())
        .build();
    let addr = server.spawn_tcp("127.0.0.1:0").await?;

    let sock = tokio::net::TcpStream::connect(addr).await?;
    let mut client =
        GenerativeClient::connect(sock, GenAbility::full(), profile(DeviceKind::Laptop)).await?;
    let (page, stats) = client.fetch_page("/wiki/landscape").await?;

    let original = workload.original_media_bytes();
    let metadata = workload.metadata_bytes();
    println!("original media (49 thumbnails): {original} B (paper: 1.4 MB)");
    println!("prompt metadata:                {metadata} B (paper: 8.92 kB)");
    println!(
        "compression:                    {:.0}x (paper: 157x; worst case 68x)",
        original as f64 / metadata as f64
    );
    println!(
        "laptop generation (modelled):   {:.0} s total, {:.2} s/image (paper: 310 s, 6.32 s/img)",
        stats.generation_time_s,
        stats.generation_time_s / wikimedia::IMAGE_COUNT as f64
    );

    // Semantic preservation, measured from the regenerated pixels.
    let mut total = 0.0;
    for (res, img) in page.resources.iter().zip(&workload.images) {
        total += clip::clip_score(&res.image, &img.prompt);
    }
    println!(
        "mean CLIP of regenerated images: {:.3} (random baseline {:.2})",
        total / workload.images.len() as f64,
        clip::RANDOM_BASELINE
    );

    // Dump for eyeballing, like the paper's side-by-side figure.
    let dir = std::env::temp_dir().join("sww-fig2");
    let files = page.dump_ppm(&dir)?;
    println!(
        "dumped {} regenerated images to {}",
        files.len(),
        dir.display()
    );
    client.close().await?;
    Ok(())
}
