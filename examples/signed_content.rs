//! The §7 trust mechanisms: a publisher signs generated-content metadata,
//! the client verifies before generating, an intermediary's prompt
//! substitution is caught, and the rendered content is attested by
//! deterministic regeneration.
//!
//! Run with: `cargo run --example signed_content --release`

use sww::core::trust::{attest_image, audit_attestation, sign_metadata, verify_metadata, SiteKey};
use sww::genai::diffusion::{DiffusionModel, ImageModelKind};
use sww::json::Value;

fn main() {
    // 1. The publisher builds and signs the metadata dictionary.
    let key = SiteKey::from_secret("publisher-signing-secret");
    let mut metadata = Value::object([
        (
            "prompt",
            Value::from("a mountain trail at dawn, soft light"),
        ),
        ("name", Value::from("trail.jpg")),
        ("width", Value::from(256i64)),
        ("height", Value::from(256i64)),
    ]);
    sign_metadata(&key, &mut metadata);
    println!(
        "signed metadata: {}",
        sww::json::to_string_pretty(&metadata)
    );

    // 2. The client verifies before spending generation time.
    println!(
        "\nclient verification: {}",
        verify_metadata(&key, &metadata)
    );

    // 3. An intermediary swaps the prompt (the SWW-specific attack: the
    //    payload is *instructions*, so substitution changes what renders).
    let mut tampered = metadata.clone();
    tampered.as_object_mut().unwrap().insert(
        "prompt".into(),
        Value::from("buy questionable supplements now, product shot"),
    );
    println!(
        "verification after prompt swap: {} (rejected)",
        verify_metadata(&key, &tampered)
    );

    // 4. The client renders and attests what it rendered.
    let prompt = metadata["prompt"].as_str().unwrap();
    let model = ImageModelKind::Sd3Medium;
    let image = DiffusionModel::new(model).generate(prompt, 256, 256, 15);
    let attestation = attest_image(&image, prompt, model, 15);
    println!("\nattestation: content={}", &attestation.content_hash[..16]);

    // 5. Any auditor with the same model regenerates and checks.
    println!(
        "audit by regeneration: {}",
        audit_attestation(&attestation, prompt)
    );
    println!(
        "audit with a forged prompt: {} (rejected)",
        audit_attestation(&attestation, "some other prompt")
    );
}
