//! The §3.2 video scenario: negotiating frame-rate and resolution with a
//! client that can upscale, across several content profiles.
//!
//! Run with: `cargo run --example video_negotiation --release`

use sww::core::video::{negotiate, Resolution, StreamRequest};
use sww::core::GenAbility;
use sww::energy::network;

fn main() {
    let video = GenAbility::from_bits(GenAbility::VIDEO);
    let scenarios = [
        ("1h 4K60 film", Resolution::Uhd4K, 60, 3600),
        ("1h FHD60 sport", Resolution::FullHd, 60, 3600),
        ("10min HD30 clip", Resolution::Hd, 30, 600),
    ];
    println!("client and server both advertise VIDEO upscale ability\n");
    for (label, res, fps, dur) in scenarios {
        let req = StreamRequest {
            resolution: res,
            fps,
            duration_s: dur,
            segment_s: 6,
        };
        let s = negotiate(req, video, video);
        println!("== {label} ==");
        println!(
            "  sent: {:?} @ {} fps ({} segments), client upscales: {}, boosts fps: {}",
            s.sent_resolution, s.sent_fps, s.segments, s.client_upscales, s.client_boosts_fps
        );
        println!(
            "  wire {:.2} GB vs traditional {:.2} GB → {:.2}x saving",
            s.wire_bytes as f64 / 1e9,
            s.traditional_bytes as f64 / 1e9,
            s.savings_ratio()
        );
        let saved = s.traditional_bytes.saturating_sub(s.wire_bytes);
        println!(
            "  network energy avoided: {:.1} Wh\n",
            network::transmission_energy(saved).wh()
        );
    }
    println!("paper anchors: 60→30 fps halves data; 4K→HD saves 2.3x (7 GB/h → 3 GB/h)");
}
