//! The §2.2 CDN deployment study: the same catalog and request trace
//! served by a classic CDN, an edge-generating SWW CDN, and full SWW —
//! comparing storage, egress, generation energy and embodied carbon.
//!
//! Run with: `cargo run --example cdn_edge --release`

use sww::core::cdn::{CatalogItem, CdnSimulation, EdgeMode};
use sww::energy::carbon;

fn main() {
    let catalog: Vec<CatalogItem> = (0..2000)
        .map(|i| CatalogItem {
            id: format!("obj{i}"),
            media_bytes: 131_072,
            metadata_bytes: 428,
            side: 1024,
        })
        .collect();

    let modes = [
        ("classic CDN (replicate media)", EdgeMode::StoreMedia),
        (
            "SWW edge (store prompts, generate on request)",
            EdgeMode::StorePrompts {
                cache_generated: true,
            },
        ),
        (
            "full SWW (prompts through to clients)",
            EdgeMode::PassPrompts,
        ),
    ];
    println!("catalog: 2000 large images, 200 edge sites, 20000 requests\n");
    for (label, mode) in modes {
        let mut sim = CdnSimulation::new(catalog.clone(), 200, mode);
        for r in 0..20_000u64 {
            // Popularity-skewed trace.
            let obj = (r * 31 % 193 % 2000) as usize;
            sim.request((r % 200) as u32, &format!("obj{obj}"));
        }
        let storage = sim.edge_storage_bytes();
        println!("== {label} ==");
        println!("  edge storage (all sites): {:.1} MB", storage as f64 / 1e6);
        println!(
            "  embodied carbon of that storage: {:.4} kgCO2e",
            carbon::embodied_kg_co2e(storage as f64)
        );
        println!(
            "  edge→user egress: {:.1} MB",
            sim.edge_to_user_bytes as f64 / 1e6
        );
        println!(
            "  egress energy: {:.2} Wh, edge generation energy: {:.2} Wh",
            sim.transmission_energy().wh(),
            sim.edge_generation_energy.wh()
        );
        println!(
            "  cache hits: {} / {} requests\n",
            sim.cache_hits, sim.requests
        );
    }
    println!(
        "storage saving factor (classic vs prompts): {:.0}x — multiplied across every replica site (§2.2)",
        131_072.0 / 428.0
    );
}
