//! Property tests: serialize → parse is the identity on the value model.

use proptest::prelude::*;
use sww_json::{parse, to_string, to_string_pretty, Value};

/// Strategy producing arbitrary JSON values with bounded size.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::from),
        any::<i64>().prop_map(Value::from),
        // Finite floats only; JSON cannot represent NaN/inf.
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::from),
        "[ -~]{0,24}".prop_map(Value::from),   // printable ASCII
        any::<String>().prop_map(Value::from), // arbitrary unicode
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..8).prop_map(Value::Array),
            prop::collection::btree_map("[a-z]{1,8}", inner, 0..8).prop_map(Value::Object),
        ]
    })
}

proptest! {
    #[test]
    fn compact_roundtrip(v in arb_value()) {
        let s = to_string(&v);
        let back = parse(&s).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn pretty_roundtrip(v in arb_value()) {
        let s = to_string_pretty(&v);
        let back = parse(&s).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn parser_never_panics(s in any::<String>()) {
        // Arbitrary input must fail cleanly, not crash.
        let _ = parse(&s);
    }

    #[test]
    fn reserialization_is_fixed_point(v in arb_value()) {
        // to_string ∘ parse ∘ to_string == to_string (canonical form).
        let s1 = to_string(&v);
        let s2 = to_string(&parse(&s1).unwrap());
        prop_assert_eq!(s1, s2);
    }
}
