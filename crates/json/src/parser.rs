//! Recursive-descent JSON parser.

use crate::error::{Error, ErrorKind, Result};
use crate::value::{Map, Number, Value};

/// Maximum container nesting. Metadata dictionaries are shallow; the limit
/// exists so hostile input received over the wire cannot blow the stack.
const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document. Trailing whitespace is allowed, any other
/// trailing bytes are an error.
pub fn parse(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err(ErrorKind::TrailingData));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, kind: ErrorKind) -> Error {
        Error::new(self.pos, kind)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => {
                self.pos -= 1;
                Err(self.err(ErrorKind::UnexpectedChar(got as char)))
            }
            None => Err(self.err(ErrorKind::UnexpectedEof)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(ErrorKind::UnexpectedChar(self.peek().unwrap_or(0) as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(self.err(ErrorKind::TooDeep));
        }
        match self.peek() {
            None => Err(self.err(ErrorKind::UnexpectedEof)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(ErrorKind::UnexpectedChar(c as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                Some(c) => {
                    self.pos -= 1;
                    return Err(self.err(ErrorKind::UnexpectedChar(c as char)));
                }
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                Some(c) => {
                    self.pos -= 1;
                    return Err(self.err(ErrorKind::UnexpectedChar(c as char)));
                }
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a contiguous run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Input is a &str, so the run is valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos]).expect("input was str"),
                );
            }
            match self.bump() {
                None => return Err(self.err(ErrorKind::UnexpectedEof)),
                Some(b'"') => return Ok(out),
                Some(b'\\') => self.escape(&mut out)?,
                Some(_) => {
                    self.pos -= 1;
                    return Err(self.err(ErrorKind::ControlInString));
                }
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<()> {
        match self.bump() {
            None => Err(self.err(ErrorKind::UnexpectedEof)),
            Some(b'"') => {
                out.push('"');
                Ok(())
            }
            Some(b'\\') => {
                out.push('\\');
                Ok(())
            }
            Some(b'/') => {
                out.push('/');
                Ok(())
            }
            Some(b'b') => {
                out.push('\u{0008}');
                Ok(())
            }
            Some(b'f') => {
                out.push('\u{000C}');
                Ok(())
            }
            Some(b'n') => {
                out.push('\n');
                Ok(())
            }
            Some(b'r') => {
                out.push('\r');
                Ok(())
            }
            Some(b't') => {
                out.push('\t');
                Ok(())
            }
            Some(b'u') => {
                let hi = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: must be followed by \uDC00-\uDFFF.
                    if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                        return Err(self.err(ErrorKind::BadUnicodeEscape));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err(ErrorKind::BadUnicodeEscape));
                    }
                    let scalar =
                        0x10000 + ((u32::from(hi) - 0xD800) << 10) + (u32::from(lo) - 0xDC00);
                    char::from_u32(scalar).ok_or_else(|| self.err(ErrorKind::BadUnicodeEscape))?
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err(ErrorKind::BadUnicodeEscape));
                } else {
                    char::from_u32(u32::from(hi))
                        .ok_or_else(|| self.err(ErrorKind::BadUnicodeEscape))?
                };
                out.push(c);
                Ok(())
            }
            Some(_) => {
                self.pos -= 1;
                Err(self.err(ErrorKind::BadEscape))
            }
        }
    }

    fn hex4(&mut self) -> Result<u16> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err(ErrorKind::UnexpectedEof))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err(ErrorKind::BadUnicodeEscape))?;
            v = (v << 4) | d as u16;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: either a lone 0 or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err(ErrorKind::BadNumber)),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err(ErrorKind::BadNumber));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err(ErrorKind::BadNumber));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("input was str");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err(ErrorKind::BadNumber))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap().as_i64(), Some(42));
        assert_eq!(parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(parse("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("-1.5e-2").unwrap().as_f64(), Some(-0.015));
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(parse(r#""""#).unwrap().as_str(), Some(""));
        assert_eq!(parse(r#""a\nb""#).unwrap().as_str(), Some("a\nb"));
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert_eq!(
            parse(r#""\"\\\/\b\f\r\t""#).unwrap().as_str(),
            Some("\"\\/\u{8}\u{c}\r\t")
        );
        assert_eq!(parse("\"π and 中\"").unwrap().as_str(), Some("π and 中"));
    }

    #[test]
    fn containers() {
        let v = parse(r#"[1, [2, 3], {"k": [true, null]}]"#).unwrap();
        assert_eq!(v[0].as_i64(), Some(1));
        assert_eq!(v[1][1].as_i64(), Some(3));
        assert_eq!(v[2]["k"][0].as_bool(), Some(true));
        assert!(v[2]["k"][1].is_null());
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(Default::default()));
        assert_eq!(parse(" { \"a\" : 1 } ").unwrap()["a"].as_i64(), Some(1));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "nul",
            "tru",
            "[1,",
            "[1,]",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "01",
            "1.",
            ".5",
            "1e",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\udc00\"",
            "[1] trailing",
            "+1",
            "nan",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
        // Raw control character inside string.
        assert!(parse("\"a\u{0}b\"").is_err());
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(matches!(parse(&deep).unwrap_err().kind, ErrorKind::TooDeep));
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v["a"].as_i64(), Some(2));
    }

    #[test]
    fn large_integers() {
        assert_eq!(
            parse("9223372036854775807").unwrap().as_i64(),
            Some(i64::MAX)
        );
        // Overflowing i64 falls back to f64.
        let v = parse("9223372036854775808").unwrap();
        assert!(v.as_i64().is_none());
        assert!(v.as_f64().unwrap() > 9.2e18);
    }

    #[test]
    fn error_offsets_point_at_failure() {
        let e = parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
    }
}
