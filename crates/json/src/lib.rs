#![warn(missing_docs)]

//! Minimal JSON implementation for SWW generated-content metadata.
//!
//! The paper (§4.1) stores per-element generation metadata as a JSON
//! dictionary (prompt, width, height, word counts, model hints, …). This
//! crate provides the value model, a strict parser and a serializer used by
//! every layer that touches metadata: the HTML `generated-content` class,
//! the media generator, and the conversion pipeline.
//!
//! The implementation is deliberately small but complete for the JSON the
//! system produces and consumes: all JSON types, nested containers, the
//! full escape set, and `f64` numbers with integer fast paths.

mod error;
mod parser;
mod ser;
mod value;

pub use error::{Error, Result};
pub use parser::parse;
pub use ser::{to_string, to_string_pretty};
pub use value::{Map, Number, Value};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_metadata_dictionary() {
        // The exact shape the paper's Figure 1 metadata carries.
        let src = r#"{"prompt":"A cartoon goldfish swimming in a bowl","width":256,"height":256}"#;
        let v = parse(src).unwrap();
        assert_eq!(
            v["prompt"].as_str().unwrap(),
            "A cartoon goldfish swimming in a bowl"
        );
        assert_eq!(v["width"].as_u64().unwrap(), 256);
        let out = to_string(&v);
        assert_eq!(parse(&out).unwrap(), v);
    }
}
