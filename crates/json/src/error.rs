//! Parse errors with byte-offset diagnostics.

use std::fmt;

/// Result alias for JSON operations.
pub type Result<T> = std::result::Result<T, Error>;

/// A JSON parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// What went wrong.
    pub kind: ErrorKind,
}

/// Classification of parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// Input ended before a complete value was read.
    UnexpectedEof,
    /// A byte that cannot start or continue the current production.
    UnexpectedChar(char),
    /// Invalid `\` escape sequence in a string.
    BadEscape,
    /// `\uXXXX` did not form a valid scalar value (including bad surrogate pairs).
    BadUnicodeEscape,
    /// A number token that does not conform to the JSON grammar.
    BadNumber,
    /// Literal bytes after the top-level value.
    TrailingData,
    /// Nesting depth exceeded the parser limit.
    TooDeep,
    /// Raw control character inside a string literal.
    ControlInString,
}

impl Error {
    pub(crate) fn new(offset: usize, kind: ErrorKind) -> Self {
        Error { offset, kind }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match &self.kind {
            ErrorKind::UnexpectedEof => "unexpected end of input".to_owned(),
            ErrorKind::UnexpectedChar(c) => format!("unexpected character {c:?}"),
            ErrorKind::BadEscape => "invalid escape sequence".to_owned(),
            ErrorKind::BadUnicodeEscape => "invalid \\u escape".to_owned(),
            ErrorKind::BadNumber => "malformed number".to_owned(),
            ErrorKind::TrailingData => "trailing data after value".to_owned(),
            ErrorKind::TooDeep => "nesting too deep".to_owned(),
            ErrorKind::ControlInString => "control character in string".to_owned(),
        };
        write!(f, "JSON error at byte {}: {}", self.offset, what)
    }
}

impl std::error::Error for Error {}
