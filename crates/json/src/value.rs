//! The JSON value model.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

/// Object representation. A sorted map keeps serialization deterministic,
/// which the byte-accounting experiments rely on (metadata sizes must be
/// reproducible run to run).
pub type Map = BTreeMap<String, Value>;

/// A JSON number: either an exact 64-bit integer or a double.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Signed integer without a fractional part or exponent.
    Int(i64),
    /// Any other finite number.
    Float(f64),
}

impl Number {
    /// The value as `f64`, lossless for floats and integers up to 2^53.
    pub fn as_f64(self) -> f64 {
        match self {
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as `i64` if it is an integer.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::Int(i) => Some(i),
            Number::Float(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(i) => write!(f, "{i}"),
            Number::Float(x) => {
                // Keep a fractional or exponent marker so the value reparses
                // as a float rather than collapsing to an integer.
                let s = format!("{x}");
                if s.bytes().any(|b| matches!(b, b'.' | b'e' | b'E')) {
                    f.write_str(&s)
                } else {
                    write!(f, "{s}.0")
                }
            }
        }
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Borrow as `&str` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::Int(i)) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow the array elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow the object map if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable access to the object map if this is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// True if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Build an object from key/value pairs.
    pub fn object<I, K>(pairs: I) -> Value
    where
        I: IntoIterator<Item = (K, Value)>,
        K: Into<String>,
    {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }
}

impl Index<&str> for Value {
    type Output = Value;

    /// Indexing a missing key or a non-object yields `Null`, mirroring the
    /// permissive access pattern the media generator uses for optional
    /// metadata fields.
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Number(Number::Int(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Number(Number::Int(i64::from(i)))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Number(Number::Int(i as i64))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Number(Number::Float(f))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_missing_key_is_null() {
        let v = Value::object([("a", Value::from(1i64))]);
        assert!(v["missing"].is_null());
        assert!(v["a"]["nested"].is_null());
    }

    #[test]
    fn number_accessors() {
        assert_eq!(Value::from(42i64).as_u64(), Some(42));
        assert_eq!(Value::from(-1i64).as_u64(), None);
        assert_eq!(Value::from(-1i64).as_i64(), Some(-1));
        assert_eq!(Value::from(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::from(1.5).as_i64(), None);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from("x"), Value::String("x".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        let arr = Value::from(vec![1i64, 2, 3]);
        assert_eq!(arr[1].as_i64(), Some(2));
        assert!(arr[9].is_null());
    }

    #[test]
    fn float_display_keeps_marker() {
        assert_eq!(Number::Float(2.0).to_string(), "2.0");
        assert_eq!(Number::Int(2).to_string(), "2");
    }
}
