//! JSON serialization (compact and pretty).

use crate::value::Value;
use std::fmt::Write;

/// Serialize compactly (no whitespace). This is the canonical on-the-wire
/// form used when accounting metadata bytes, so it must be deterministic:
/// object keys serialize in sorted order (see [`crate::Map`]).
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Serialize with two-space indentation for logs and fixtures.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            let _ = write!(out, "{n}");
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::value::Value;

    #[test]
    fn compact_is_canonical() {
        let v = Value::object([("b", Value::from(1i64)), ("a", Value::from(vec!["x", "y"]))]);
        // Keys come out sorted regardless of insertion order.
        assert_eq!(to_string(&v), r#"{"a":["x","y"],"b":1}"#);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Value::from("a\"b\\c\nd\te\u{1}f");
        let s = to_string(&v);
        assert_eq!(parse(&s).unwrap(), v);
        assert!(s.contains("\\u0001"));
    }

    #[test]
    fn pretty_reparses_equal() {
        let v = parse(r#"{"prompt":"hike","dims":[256,256],"unique":false}"#).unwrap();
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(to_string(&parse("[]").unwrap()), "[]");
        assert_eq!(to_string(&parse("{}").unwrap()), "{}");
    }

    #[test]
    fn float_serialization_reparses_as_float() {
        let v = Value::from(2.0f64);
        let s = to_string(&v);
        let back = parse(&s).unwrap();
        assert!(back.as_i64().is_none(), "float must stay float: {s}");
        assert_eq!(back.as_f64(), Some(2.0));
    }
}
