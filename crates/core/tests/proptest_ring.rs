//! Property tests for the edge tier's consistent-hash ring
//! (`sww_core::edge::HashRing`) — the invariants the cluster's
//! correctness rests on, checked for *arbitrary* memberships and key
//! populations rather than the unit tests' hand-picked ones.
//!
//! * **Purity**: key → owner is a pure function of `(membership, key)` —
//!   insertion order and join/leave history are invisible.
//! * **Bounded churn**: adding one node to an N-node ring only remaps
//!   keys *onto the newcomer* (≈ K/(N+1) of them); removing one node
//!   only remaps the keys *it owned*. Every other key keeps its owner.
//! * **Uniformity**: over 10k random recipe keys the per-node share
//!   stays within tolerance of uniform.
//! * **Replay**: a join/leave/join op sequence driven by a fixed seed
//!   reproduces the identical ring, ownership map for ownership map.

use proptest::prelude::*;
use sww_core::edge::{recipe_key, HashRing, DEFAULT_VNODES};
use sww_genai::diffusion::ImageModelKind;

fn node_ids(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("n{i}")).collect()
}

fn keys(count: usize, salt: u64) -> Vec<String> {
    (0..count).map(|k| format!("key-{salt}-{k}")).collect()
}

fn owners(ring: &HashRing, keys: &[String]) -> Vec<Option<String>> {
    keys.iter()
        .map(|k| ring.owner(k.as_bytes()).map(str::to_owned))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn owner_is_a_pure_function_of_membership(
        nodes in 1usize..=8,
        salt in 0u64..=1_000,
        swap in 0usize..=6,
    ) {
        // Same membership, three different construction histories.
        let ids = node_ids(nodes);
        let forward = HashRing::with_nodes(DEFAULT_VNODES, ids.clone());
        let mut reversed: Vec<String> = ids.clone();
        reversed.reverse();
        let rot = swap % reversed.len().max(1);
        reversed.rotate_left(rot);
        let shuffled = HashRing::with_nodes(DEFAULT_VNODES, reversed);
        // Churned: add a transient node, then remove it again.
        let mut churned = HashRing::with_nodes(DEFAULT_VNODES, ids);
        churned.add("transient");
        churned.remove("transient");
        let ks = keys(200, salt);
        prop_assert_eq!(owners(&forward, &ks), owners(&shuffled, &ks));
        prop_assert_eq!(owners(&forward, &ks), owners(&churned, &ks));
    }

    #[test]
    fn adding_a_node_only_remaps_onto_the_newcomer(
        nodes in 1usize..=8,
        salt in 0u64..=1_000,
    ) {
        let ids = node_ids(nodes);
        let before = HashRing::with_nodes(DEFAULT_VNODES, ids.clone());
        let mut after = before.clone();
        after.add("newcomer");
        let ks = keys(500, salt);
        let mut remapped = 0usize;
        for k in &ks {
            let old = before.owner(k.as_bytes()).unwrap();
            let new = after.owner(k.as_bytes()).unwrap();
            if old != new {
                // The only legal move is onto the new node.
                prop_assert_eq!(new, "newcomer", "key {} moved {} -> {}", k, old, new);
                remapped += 1;
            }
        }
        // Bounded churn: expected K/(N+1); allow generous slack for
        // vnode variance but rule out "most keys moved".
        let expected = ks.len() / (nodes + 1);
        prop_assert!(
            remapped <= expected * 3 + 25,
            "{remapped} of {} keys remapped (expected ≈ {expected})",
            ks.len()
        );
    }

    #[test]
    fn removing_a_node_only_remaps_its_own_keys(
        nodes in 2usize..=8,
        victim in 0usize..=7,
        salt in 0u64..=1_000,
    ) {
        let ids = node_ids(nodes);
        let victim = ids[victim % nodes].clone();
        let before = HashRing::with_nodes(DEFAULT_VNODES, ids);
        let mut after = before.clone();
        after.remove(&victim);
        for k in &keys(500, salt) {
            let old = before.owner(k.as_bytes()).unwrap();
            let new = after.owner(k.as_bytes()).unwrap();
            if old == victim {
                prop_assert!(new != victim, "victim must give up {k}");
            } else {
                // Keys the victim did not own must not move at all.
                prop_assert_eq!(old, new, "non-victim key {} moved", k);
            }
        }
    }

    #[test]
    fn lookup_is_uniform_within_tolerance_over_10k_recipes(
        nodes in 2usize..=6,
        salt in 0u64..=1_000,
    ) {
        let ring = HashRing::with_nodes(DEFAULT_VNODES, node_ids(nodes));
        let recipes: Vec<String> = (0..10_000)
            .map(|k| {
                recipe_key(&sww_core::cache::Recipe {
                    prompt: format!("prompt {salt} {k} over the ridge"),
                    model: ImageModelKind::Sd3Medium,
                    width: 64,
                    height: 64,
                    steps: 15,
                })
            })
            .collect();
        let counts = ring.ownership(&recipes);
        prop_assert_eq!(counts.values().sum::<usize>(), recipes.len());
        let mean = recipes.len() as f64 / nodes as f64;
        for (node, count) in counts {
            let share = count as f64 / mean;
            prop_assert!(
                (0.35..=2.6).contains(&share),
                "{node} owns {count} keys ({share:.2}x the uniform share)"
            );
        }
    }

    #[test]
    fn join_leave_join_replays_deterministically(
        nodes in 1usize..=6,
        ops_seed in 0u64..=u64::MAX,
        salt in 0u64..=1_000,
    ) {
        // Drive the same pseudo-random op sequence twice from one seed;
        // the rings (and every ownership decision) must match exactly.
        let replay = |seed: u64| -> (Vec<String>, Vec<Option<String>>) {
            let mut ring = HashRing::with_nodes(DEFAULT_VNODES, node_ids(nodes));
            let mut state = seed | 1;
            let mut next = nodes;
            for _ in 0..12 {
                // xorshift64: deterministic op stream, no RNG dependency.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                if state.is_multiple_of(3) && ring.len() > 1 {
                    let members = ring.nodes().to_vec();
                    let victim = &members[(state / 3) as usize % members.len()];
                    ring.remove(victim);
                } else {
                    ring.add(&format!("n{next}"));
                    next += 1;
                }
            }
            let members = ring.nodes().to_vec();
            let owned = owners(&ring, &keys(100, salt));
            (members, owned)
        };
        prop_assert_eq!(replay(ops_seed), replay(ops_seed));
    }
}
