//! Property tests for [`RetryPolicy`] / [`BackoffSchedule`]: the
//! invariants the module documentation promises must hold for
//! *arbitrary* configurations, not just the hand-picked unit-test ones.
//!
//! * Delays are monotonically non-decreasing.
//! * No computed delay exceeds `max_delay` (server hints excepted — an
//!   explicit `Retry-After` is authoritative).
//! * The sum of delays never exceeds `deadline`, hints included.
//! * At most `max_attempts - 1` retries are handed out.
//! * Identical seeds replay identical jitter, delay for delay.

use proptest::prelude::*;
use std::time::Duration;
use sww_core::RetryPolicy;

fn policy(attempts: u32, base_ms: u64, cap_ms: u64, deadline_ms: u64, seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: attempts,
        base_delay: Duration::from_millis(base_ms),
        max_delay: Duration::from_millis(cap_ms),
        deadline: Duration::from_millis(deadline_ms),
        seed,
    }
}

fn drain(policy: &RetryPolicy) -> Vec<Duration> {
    let mut schedule = policy.schedule();
    std::iter::from_fn(|| schedule.next_delay()).collect()
}

proptest! {
    #[test]
    fn delays_monotone_capped_and_bounded(
        attempts in 0u32..=12,
        base_ms in 0u64..=500,
        cap_ms in 0u64..=2_000,
        deadline_ms in 0u64..=5_000,
        seed in 0u64..=u64::MAX,
    ) {
        let p = policy(attempts, base_ms, cap_ms, deadline_ms, seed);
        let delays = drain(&p);
        // Attempt budget: at most max_attempts - 1 retries (0 attempts
        // clamps to 1, i.e. no retries at all).
        prop_assert!(delays.len() < p.max_attempts.max(1) as usize);
        // Monotone, capped, and within the total-backoff deadline.
        prop_assert!(delays.windows(2).all(|w| w[0] <= w[1]), "{delays:?}");
        prop_assert!(delays.iter().all(|d| *d <= p.max_delay), "{delays:?}");
        let total: Duration = delays.iter().sum();
        prop_assert!(total <= p.deadline, "{total:?} > {:?}", p.deadline);
    }

    #[test]
    fn identical_seeds_replay_identical_schedules(
        attempts in 1u32..=10,
        base_ms in 1u64..=300,
        cap_ms in 1u64..=2_000,
        seed in 0u64..=u64::MAX,
    ) {
        let p = policy(attempts, base_ms, cap_ms, 60_000, seed);
        prop_assert_eq!(drain(&p), drain(&p), "same seed must replay");
    }

    #[test]
    fn hints_are_honored_but_deadline_still_binds(
        attempts in 2u32..=10,
        base_ms in 1u64..=200,
        cap_ms in 1u64..=1_000,
        deadline_ms in 1u64..=4_000,
        hint_ms in 0u64..=5_000,
        seed in 0u64..=u64::MAX,
    ) {
        let p = policy(attempts, base_ms, cap_ms, deadline_ms, seed);
        let hint = Duration::from_millis(hint_ms);
        let mut schedule = p.schedule();
        let mut total = Duration::ZERO;
        // Feed the hint on every attempt: each granted delay must be at
        // least the hint (authoritative, even past the cap), and the
        // running total must never cross the deadline.
        while let Some(delay) = schedule.next_delay_with_hint(Some(hint)) {
            prop_assert!(delay >= hint, "{delay:?} < hint {hint:?}");
            total += delay;
            prop_assert!(total <= p.deadline, "{total:?} > {:?}", p.deadline);
        }
        prop_assert!(schedule.retries() < p.max_attempts.max(1));
    }

    #[test]
    fn schedule_reports_exactly_the_delays_handed_out(
        attempts in 0u32..=10,
        base_ms in 0u64..=300,
        seed in 0u64..=u64::MAX,
    ) {
        let p = policy(attempts, base_ms, 1_000, 60_000, seed);
        let mut schedule = p.schedule();
        let mut handed_out = 0u32;
        while schedule.next_delay().is_some() {
            handed_out += 1;
            prop_assert_eq!(schedule.retries(), handed_out);
        }
        prop_assert_eq!(schedule.retries(), handed_out);
    }
}
