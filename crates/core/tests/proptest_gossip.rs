//! Property tests for the SWIM failure detector
//! (`sww_core::gossip::Gossip`) — the invariants the edge tier's
//! health routing and the E21 resilience gates rest on, checked for
//! *arbitrary* cluster sizes, seeds, and kill/revive/partition
//! histories rather than the unit tests' hand-picked ones.
//!
//! * **Convergence**: after any single kill (or none), enough rounds
//!   bring every live member's view to the identical membership map,
//!   with the victim marked `Dead` everywhere.
//! * **Incarnation monotonicity**: a member's incarnation number never
//!   decreases in any observer's view, through arbitrary seeded
//!   kill/revive/partition op streams.
//! * **Replay determinism**: the same seed and op stream reproduce the
//!   identical per-round digest trajectory — the property that lets
//!   chaos runs replay bit-for-bit under the virtual clock.

use proptest::prelude::*;
use std::collections::BTreeMap;
use sww_core::gossip::{Gossip, GossipConfig, Health};

fn cluster(n: usize, seed: u64) -> Gossip {
    Gossip::new(
        GossipConfig {
            seed,
            ..GossipConfig::default()
        },
        (0..n).map(|i| format!("n{i}")),
    )
}

/// Every member's incarnation as seen by every observer's view.
fn incarnations(g: &Gossip) -> BTreeMap<(String, String), u64> {
    let mut out = BTreeMap::new();
    for observer in g.members() {
        if let Some(view) = g.view(observer) {
            for (member, mv) in view {
                out.insert((observer.clone(), member.clone()), mv.incarnation);
            }
        }
    }
    out
}

/// xorshift64: deterministic op stream with no RNG dependency.
fn step(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn views_converge_after_any_single_kill(
        nodes in 2usize..=7,
        victim in 0usize..=6,
        seed in 0u64..=1_000,
    ) {
        let mut g = cluster(nodes, seed);
        let victim = format!("n{}", victim % nodes);
        g.set_process_alive(&victim, false);
        // Suspicion needs a probe round per observer plus the suspect
        // timer plus dissemination; 6 × suspect_rounds is a generous
        // deterministic bound for ≤ 7 members.
        let bound = 6 * g.config().suspect_rounds + 6;
        let mut rounds = 0;
        while !(g.converged() && g.consensus_health(&victim) == Some(Health::Dead)) {
            g.tick();
            rounds += 1;
            prop_assert!(
                rounds <= bound,
                "no convergence after {rounds} rounds ({nodes} nodes)"
            );
        }
        // Every *live* observer agrees the victim is dead and everyone
        // else is alive.
        for observer in g.members() {
            if observer == &victim {
                continue;
            }
            for member in g.members() {
                let expect = if member == &victim { Health::Dead } else { Health::Alive };
                prop_assert_eq!(
                    g.health(observer, member),
                    Some(expect),
                    "{} sees {} wrong",
                    observer,
                    member
                );
            }
        }
    }

    #[test]
    fn incarnations_never_decrease_under_chaos_ops(
        nodes in 2usize..=6,
        ops_seed in 1u64..=u64::MAX,
        seed in 0u64..=1_000,
    ) {
        let mut g = cluster(nodes, seed);
        let mut state = ops_seed | 1;
        let mut floor = incarnations(&g);
        for _ in 0..40 {
            match step(&mut state) % 5 {
                0 => {
                    let id = format!("n{}", step(&mut state) as usize % nodes);
                    g.set_process_alive(&id, false);
                }
                1 => {
                    let id = format!("n{}", step(&mut state) as usize % nodes);
                    g.set_process_alive(&id, true);
                }
                2 if nodes > 2 => {
                    let split = 1 + step(&mut state) as usize % (nodes - 1);
                    let ids: Vec<String> = (0..nodes).map(|i| format!("n{i}")).collect();
                    g.set_partition(&[ids[..split].to_vec(), ids[split..].to_vec()]);
                }
                3 => g.heal_partition(),
                _ => {}
            }
            g.tick();
            let now = incarnations(&g);
            for (pair, &current) in &now {
                if let Some(&previous) = floor.get(pair) {
                    prop_assert!(
                        current >= previous,
                        "{:?} incarnation went {} -> {}",
                        pair,
                        previous,
                        current
                    );
                }
            }
            floor = now;
        }
    }

    #[test]
    fn seeded_runs_replay_their_digest_trajectory(
        nodes in 2usize..=6,
        ops_seed in 1u64..=u64::MAX,
        seed in 0u64..=1_000,
    ) {
        let run = || {
            let mut g = cluster(nodes, seed);
            let mut state = ops_seed | 1;
            let mut trajectory = Vec::with_capacity(24);
            for round in 0..24 {
                if round == 4 {
                    let id = format!("n{}", step(&mut state) as usize % nodes);
                    g.set_process_alive(&id, false);
                }
                if round == 12 {
                    let id = format!("n{}", step(&mut state) as usize % nodes);
                    g.set_process_alive(&id, true);
                }
                g.tick();
                trajectory.push(g.digest());
            }
            trajectory
        };
        prop_assert_eq!(run(), run(), "virtual-clock runs must replay bit-for-bit");
    }
}
