//! The one error type of the SWW protocol layer.
//!
//! Before this type existed, failures leaked out of `core` in ad-hoc
//! shapes: stringly `H2Error::protocol(format!(...))` responses from the
//! client, bare `Option`s (and an `expect`) around model-capability
//! lookups in `mediagen`, and routing code in `server.rs` that built
//! `Response::status(...)` inline at every dead end. [`SwwError`]
//! consolidates all of them; the mapping from error to HTTP status code
//! lives in exactly one place (`server::error_response`).

use std::fmt;
use sww_http2::H2Error;

/// Everything that can go wrong between accepting a request and
/// producing a response (or between sending a request and rendering a
/// page, on the client side).
#[derive(Debug)]
pub enum SwwError {
    /// No page, asset, or video at the requested path.
    NotFound {
        /// The request path that missed.
        path: String,
    },
    /// The request used a method other than GET.
    MethodNotAllowed {
        /// The offending method.
        method: String,
    },
    /// The serving engine's bounded queue is full; the client should
    /// back off and retry (maps to `503` + `Retry-After`).
    Saturated {
        /// Seconds the client is asked to wait before retrying.
        retry_after_s: u32,
    },
    /// A generation was requested from a model that cannot run on the
    /// local device (e.g. a server-only model in a client generator).
    UnsupportedModel {
        /// What was attempted ("image generation", "text generation").
        what: &'static str,
        /// The model that cannot serve it.
        model: String,
    },
    /// Capability negotiation did not produce a generative session, so
    /// there are no shared models to resolve.
    Negotiation {
        /// Why the negotiation outcome cannot satisfy the caller.
        reason: String,
    },
    /// A handler failed in a way that is the server's own fault (maps to
    /// `500`), e.g. a panic on a pool worker.
    Internal {
        /// What went wrong.
        reason: String,
    },
    /// The peer answered a page fetch with a non-200 status.
    UpstreamStatus {
        /// The path that was requested.
        path: String,
        /// The status the peer returned.
        status: u16,
    },
    /// The underlying HTTP/2 transport failed.
    Transport(H2Error),
}

impl fmt::Display for SwwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwwError::NotFound { path } => write!(f, "no content at {path}"),
            SwwError::MethodNotAllowed { method } => {
                write!(f, "method {method} not allowed (GET only)")
            }
            SwwError::Saturated { retry_after_s } => {
                write!(f, "serving queue saturated, retry after {retry_after_s}s")
            }
            SwwError::UnsupportedModel { what, model } => {
                write!(f, "{what} is not supported by model {model}")
            }
            SwwError::Negotiation { reason } => write!(f, "negotiation failed: {reason}"),
            SwwError::Internal { reason } => write!(f, "internal error: {reason}"),
            SwwError::UpstreamStatus { path, status } => {
                write!(f, "GET {path} returned status {status}")
            }
            SwwError::Transport(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for SwwError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SwwError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<H2Error> for SwwError {
    fn from(e: H2Error) -> SwwError {
        SwwError::Transport(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(SwwError, &str)> = vec![
            (SwwError::NotFound { path: "/x".into() }, "/x"),
            (
                SwwError::MethodNotAllowed {
                    method: "POST".into(),
                },
                "POST",
            ),
            (SwwError::Saturated { retry_after_s: 2 }, "retry after 2s"),
            (
                SwwError::UnsupportedModel {
                    what: "image generation",
                    model: "Dalle3".into(),
                },
                "Dalle3",
            ),
            (
                SwwError::UpstreamStatus {
                    path: "/p".into(),
                    status: 404,
                },
                "404",
            ),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text} should contain {needle}");
        }
    }

    #[test]
    fn transport_errors_convert_and_chain() {
        let err: SwwError = H2Error::protocol("boom").into();
        assert!(err.to_string().contains("transport error"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
