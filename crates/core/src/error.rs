//! The one error type of the SWW protocol layer.
//!
//! Before this type existed, failures leaked out of `core` in ad-hoc
//! shapes: stringly `H2Error::protocol(format!(...))` responses from the
//! client, bare `Option`s (and an `expect`) around model-capability
//! lookups in `mediagen`, and routing code in `server.rs` that built
//! `Response::status(...)` inline at every dead end. [`SwwError`]
//! consolidates all of them; the mapping from error to HTTP status code
//! lives in exactly one place (`server::error_response`).

use std::fmt;
use std::time::Duration;
use sww_http2::H2Error;

/// Whether an HTTP status from a peer means "this node is in trouble —
/// try elsewhere": overload (`503`), gateway/generation failures
/// (`500`/`502`), and deadline misses (`504`) are transient; everything
/// else (routing errors, capability mismatches, `501`) is terminal for
/// the request no matter which node answers.
///
/// This is the single retryability predicate for status codes: the edge
/// tier's successor walk ([`crate::edge`]), the client's
/// [`RetryPolicy`](crate::RetryPolicy), and the workload replayer all
/// classify through it, so "which statuses mean try elsewhere" cannot
/// drift between layers.
pub fn retryable_status(status: u16) -> bool {
    matches!(status, 500 | 502 | 503 | 504)
}

/// Everything that can go wrong between accepting a request and
/// producing a response (or between sending a request and rendering a
/// page, on the client side).
#[derive(Debug)]
pub enum SwwError {
    /// No page, asset, or video at the requested path.
    NotFound {
        /// The request path that missed.
        path: String,
    },
    /// The request used a method other than GET.
    MethodNotAllowed {
        /// The offending method.
        method: String,
    },
    /// The serving engine's bounded queue is full; the client should
    /// back off and retry (maps to `503` + `Retry-After`).
    Saturated {
        /// Seconds the client is asked to wait before retrying.
        retry_after_s: u32,
    },
    /// A generation was requested from a model that cannot run on the
    /// local device (e.g. a server-only model in a client generator).
    UnsupportedModel {
        /// What was attempted ("image generation", "text generation").
        what: &'static str,
        /// The model that cannot serve it.
        model: String,
    },
    /// Capability negotiation did not produce a generative session, so
    /// there are no shared models to resolve.
    Negotiation {
        /// Why the negotiation outcome cannot satisfy the caller.
        reason: String,
    },
    /// A handler failed in a way that is the server's own fault (maps to
    /// `500`), e.g. a panic on a pool worker.
    Internal {
        /// What went wrong.
        reason: String,
    },
    /// A generation failed or stalled mid-flight (injected fault, model
    /// runtime failure). Transient — retryable, and when it persists the
    /// client degrades to traditional content.
    Generation {
        /// What went wrong.
        reason: String,
    },
    /// A received payload failed its integrity check (the page body no
    /// longer matches its content-addressed ETag — e.g. truncation).
    IntegrityFailure {
        /// The path whose payload was corrupt.
        path: String,
    },
    /// The request's deadline budget ran out before the work completed —
    /// at admission, while queued, while waiting on a coalesced flight,
    /// or mid-generation (maps to `504`). A `budget_ms` of 0 means the
    /// request was cancelled outright rather than timed out.
    DeadlineExceeded {
        /// The request's total deadline budget, in milliseconds.
        budget_ms: u64,
    },
    /// The peer answered a page fetch with a non-200 status.
    UpstreamStatus {
        /// The path that was requested.
        path: String,
        /// The status the peer returned.
        status: u16,
        /// The peer's `Retry-After` advice, when it sent any.
        retry_after_s: Option<u32>,
    },
    /// The underlying HTTP/2 transport failed.
    Transport(H2Error),
}

impl SwwError {
    /// Whether retrying the operation can plausibly succeed: saturation,
    /// transport failures, corrupted payloads, generation faults, missed
    /// deadlines (a retry may land on a now-warm cache), and upstream
    /// `500`/`502`/`503`/`504` answers are transient; routing errors
    /// (`404`/`405`), capability mismatches, and upstream `4xx`/`501` are
    /// not.
    pub fn is_retryable(&self) -> bool {
        match self {
            SwwError::Saturated { .. }
            | SwwError::Transport(_)
            | SwwError::IntegrityFailure { .. }
            | SwwError::Generation { .. }
            | SwwError::DeadlineExceeded { .. }
            | SwwError::Internal { .. } => true,
            SwwError::UpstreamStatus { status, .. } => retryable_status(*status),
            SwwError::NotFound { .. }
            | SwwError::MethodNotAllowed { .. }
            | SwwError::UnsupportedModel { .. }
            | SwwError::Negotiation { .. } => false,
        }
    }

    /// The server's `Retry-After` advice attached to this error, if any.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            SwwError::Saturated { retry_after_s } => {
                Some(Duration::from_secs(u64::from(*retry_after_s)))
            }
            SwwError::UpstreamStatus { retry_after_s, .. } => {
                retry_after_s.map(|s| Duration::from_secs(u64::from(s)))
            }
            _ => None,
        }
    }

    /// Whether the failure originated in content generation — the errors
    /// for which degrading to traditional media (per the negotiated
    /// ability) is the documented fallback.
    pub fn is_generation_failure(&self) -> bool {
        matches!(
            self,
            SwwError::Generation { .. } | SwwError::UnsupportedModel { .. }
        )
    }
}

impl fmt::Display for SwwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwwError::NotFound { path } => write!(f, "no content at {path}"),
            SwwError::MethodNotAllowed { method } => {
                write!(f, "method {method} not allowed (GET only)")
            }
            SwwError::Saturated { retry_after_s } => {
                write!(f, "serving queue saturated, retry after {retry_after_s}s")
            }
            SwwError::UnsupportedModel { what, model } => {
                write!(f, "{what} is not supported by model {model}")
            }
            SwwError::Negotiation { reason } => write!(f, "negotiation failed: {reason}"),
            SwwError::Internal { reason } => write!(f, "internal error: {reason}"),
            SwwError::Generation { reason } => write!(f, "generation failed: {reason}"),
            SwwError::IntegrityFailure { path } => {
                write!(f, "payload for {path} failed its integrity check")
            }
            SwwError::DeadlineExceeded { budget_ms: 0 } => write!(f, "request cancelled"),
            SwwError::DeadlineExceeded { budget_ms } => {
                write!(f, "deadline of {budget_ms}ms exceeded")
            }
            SwwError::UpstreamStatus { path, status, .. } => {
                write!(f, "GET {path} returned status {status}")
            }
            SwwError::Transport(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for SwwError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SwwError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<H2Error> for SwwError {
    fn from(e: H2Error) -> SwwError {
        SwwError::Transport(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(SwwError, &str)> = vec![
            (SwwError::NotFound { path: "/x".into() }, "/x"),
            (
                SwwError::MethodNotAllowed {
                    method: "POST".into(),
                },
                "POST",
            ),
            (SwwError::Saturated { retry_after_s: 2 }, "retry after 2s"),
            (
                SwwError::UnsupportedModel {
                    what: "image generation",
                    model: "Dalle3".into(),
                },
                "Dalle3",
            ),
            (
                SwwError::UpstreamStatus {
                    path: "/p".into(),
                    status: 404,
                    retry_after_s: None,
                },
                "404",
            ),
            (
                SwwError::Generation {
                    reason: "injected fault".into(),
                },
                "injected fault",
            ),
            (
                SwwError::IntegrityFailure { path: "/p".into() },
                "integrity",
            ),
            (SwwError::DeadlineExceeded { budget_ms: 250 }, "250ms"),
            (SwwError::DeadlineExceeded { budget_ms: 0 }, "cancelled"),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text} should contain {needle}");
        }
    }

    #[test]
    fn retryability_splits_transient_from_terminal() {
        assert!(SwwError::Saturated { retry_after_s: 1 }.is_retryable());
        assert!(SwwError::Generation { reason: "x".into() }.is_retryable());
        assert!(SwwError::IntegrityFailure { path: "/p".into() }.is_retryable());
        assert!(SwwError::Transport(H2Error::protocol("x")).is_retryable());
        assert!(SwwError::DeadlineExceeded { budget_ms: 100 }.is_retryable());
        for status in [500u16, 502, 503, 504] {
            assert!(retryable_status(status));
            assert!(SwwError::UpstreamStatus {
                path: "/p".into(),
                status,
                retry_after_s: None
            }
            .is_retryable());
        }
        for status in [200u16, 404, 405, 501] {
            assert!(!retryable_status(status));
            assert!(!SwwError::UpstreamStatus {
                path: "/p".into(),
                status,
                retry_after_s: None
            }
            .is_retryable());
        }
        assert!(!SwwError::NotFound { path: "/p".into() }.is_retryable());
        assert!(!SwwError::UnsupportedModel {
            what: "image generation",
            model: "Dalle3".into()
        }
        .is_retryable());
    }

    #[test]
    fn retry_after_surfaces_server_advice() {
        assert_eq!(
            SwwError::Saturated { retry_after_s: 3 }.retry_after(),
            Some(Duration::from_secs(3))
        );
        assert_eq!(
            SwwError::UpstreamStatus {
                path: "/p".into(),
                status: 503,
                retry_after_s: Some(2)
            }
            .retry_after(),
            Some(Duration::from_secs(2))
        );
        assert_eq!(SwwError::NotFound { path: "/p".into() }.retry_after(), None);
    }

    #[test]
    fn generation_failures_are_the_fallback_triggers() {
        assert!(SwwError::Generation { reason: "x".into() }.is_generation_failure());
        assert!(SwwError::UnsupportedModel {
            what: "image generation",
            model: "Dalle3".into()
        }
        .is_generation_failure());
        assert!(!SwwError::Saturated { retry_after_s: 1 }.is_generation_failure());
        assert!(!SwwError::Transport(H2Error::protocol("x")).is_generation_failure());
        // A missed deadline is the *client's* budget running out, not the
        // backend failing — it must not trip fallback or the breaker.
        assert!(!SwwError::DeadlineExceeded { budget_ms: 50 }.is_generation_failure());
    }

    #[test]
    fn transport_errors_convert_and_chain() {
        let err: SwwError = H2Error::protocol("boom").into();
        assert!(err.to_string().contains("transport error"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
