//! The generative server (paper §5.1).
//!
//! Stores pages in prompt form (that is the storage saving), negotiates
//! generative ability during the HTTP/2 SETTINGS exchange, and serves each
//! request according to the negotiated mode: prompt-form HTML to capable
//! clients, server-side-expanded media to naive ones ("the server uses
//! the prompt to generate the content before sending it to the client.
//! This saves storage space, and avoids saving two copies of content").

use crate::hls::{self, VideoAsset};
use crate::mediagen::{GeneratedMedia, MediaGenerator};
use crate::negotiate::{decide, ServeMode};
use crate::policy::ServerPolicy;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use sww_energy::device::{profile as device_profile, DeviceKind};
use sww_hash::{sha256, to_hex};
use sww_html::{gencontent, parse, serialize};
use sww_http2::server::{serve_connection, ServeStats};
use sww_http2::{GenAbility, H2Error, Request, Response};
use tokio::io::{AsyncRead, AsyncWrite};

/// One page of site content, stored in SWW (prompt) form.
#[derive(Debug, Clone)]
pub struct SwwPage {
    /// HTML that may contain generated-content divisions and references
    /// to unique assets.
    pub html: String,
}

/// A site: pages plus unique (non-generatable) assets and published
/// video streams (§3.2).
#[derive(Debug, Clone, Default)]
pub struct SiteContent {
    pages: HashMap<String, SwwPage>,
    assets: HashMap<String, Bytes>,
    videos: HashMap<String, VideoAsset>,
}

impl SiteContent {
    /// An empty site.
    pub fn new() -> SiteContent {
        SiteContent::default()
    }

    /// Add a page at `path`.
    pub fn add_page(&mut self, path: impl Into<String>, html: impl Into<String>) {
        self.pages
            .insert(path.into(), SwwPage { html: html.into() });
    }

    /// Add a unique asset (e.g. the photographs from the specific hike).
    pub fn add_asset(&mut self, path: impl Into<String>, bytes: impl Into<Bytes>) {
        self.assets.insert(path.into(), bytes.into());
    }

    /// Octets the site occupies in prompt form: HTML + unique assets.
    /// This is what the server actually stores.
    pub fn stored_bytes(&self) -> u64 {
        let pages: usize = self.pages.values().map(|p| p.html.len()).sum();
        let assets: usize = self.assets.values().map(|a| a.len()).sum();
        (pages + assets) as u64
    }

    /// Publish a video stream; its playlist appears at
    /// `/video/<name>/playlist.m3u8` with a rendition negotiated from the
    /// client's VIDEO ability (§3.2).
    pub fn add_video(&mut self, asset: VideoAsset) {
        self.videos.insert(asset.name.clone(), asset);
    }

    /// Page lookup.
    pub fn page(&self, path: &str) -> Option<&SwwPage> {
        self.pages.get(path)
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

struct ServerState {
    site: SiteContent,
    policy: ServerPolicy,
    /// Server-side generator for naive clients (workstation-class device).
    generator: MediaGenerator,
    /// Media materialized for naive clients, keyed by URL path.
    generated_assets: HashMap<String, Bytes>,
    /// Accounting: how many times each mode was served.
    served_modes: HashMap<&'static str, u64>,
    /// Modelled server-side generation seconds accumulated.
    server_generation_time_s: f64,
}

/// The generative server.
#[derive(Clone)]
pub struct GenerativeServer {
    ability: GenAbility,
    state: Arc<Mutex<ServerState>>,
}

impl GenerativeServer {
    /// A server advertising `ability` and holding `site` in prompt form.
    pub fn new(site: SiteContent, ability: GenAbility, policy: ServerPolicy) -> GenerativeServer {
        GenerativeServer {
            ability,
            state: Arc::new(Mutex::new(ServerState {
                site,
                policy,
                generator: MediaGenerator::new(device_profile(DeviceKind::Workstation)),
                generated_assets: HashMap::new(),
                served_modes: HashMap::new(),
                server_generation_time_s: 0.0,
            })),
        }
    }

    /// The ability this server advertises.
    pub fn ability(&self) -> GenAbility {
        self.ability
    }

    /// Serve one accepted connection (duplex stream or TCP socket).
    pub async fn serve_stream<T>(&self, io: T) -> Result<ServeStats, H2Error>
    where
        T: AsyncRead + AsyncWrite + Unpin,
    {
        let state = Arc::clone(&self.state);
        let ability = self.ability;
        serve_connection(io, ability, move |req, ctx| {
            let mut st = state.lock();
            handle_request(&mut st, ability, ctx.client_ability, &req)
        })
        .await
    }

    /// Answer one request directly (the transport-independent core used
    /// by both the HTTP/2 and HTTP/3 front ends).
    pub fn handle(&self, req: &Request, client_ability: GenAbility) -> Response {
        let mut st = self.state.lock();
        handle_request(&mut st, self.ability, client_ability, req)
    }

    /// Bind a TCP listener and serve connections until the task is
    /// dropped. Returns the bound address.
    pub async fn spawn_tcp(&self, addr: &str) -> std::io::Result<std::net::SocketAddr> {
        let listener = tokio::net::TcpListener::bind(addr).await?;
        let local = listener.local_addr()?;
        let this = self.clone();
        tokio::spawn(async move {
            while let Ok((sock, _)) = listener.accept().await {
                let server = this.clone();
                tokio::spawn(async move {
                    let _ = server.serve_stream(sock).await;
                });
            }
        });
        Ok(local)
    }

    /// Octets the site occupies in prompt form.
    pub fn stored_bytes(&self) -> u64 {
        self.state.lock().site.stored_bytes()
    }

    /// Octets the site would occupy traditionally: every generated-content
    /// element materialized to media (measured via the codec) plus HTML
    /// and unique assets.
    pub fn traditional_bytes(&self) -> u64 {
        let mut st = self.state.lock();
        let pages: Vec<SwwPage> = st.site.pages.values().cloned().collect();
        let mut total = st.site.stored_bytes();
        for page in pages {
            let doc = parse(&page.html);
            for item in gencontent::extract(&doc) {
                let (media, _) = st.generator.generate(&item);
                total += media.media_bytes() as u64;
                // Prompt-form metadata would not be stored traditionally.
                total = total.saturating_sub(item.metadata_size() as u64);
            }
        }
        total
    }

    /// How many requests were served in each mode (for tests/benches).
    pub fn served_modes(&self) -> HashMap<&'static str, u64> {
        self.state.lock().served_modes.clone()
    }

    /// Accumulated modelled server-side generation time.
    pub fn server_generation_time_s(&self) -> f64 {
        self.state.lock().server_generation_time_s
    }
}

fn mode_label(mode: ServeMode) -> &'static str {
    match mode {
        ServeMode::Generative => "generative",
        ServeMode::UpscaleAssisted => "upscale",
        ServeMode::ServerGenerated => "server-generated",
        ServeMode::Traditional => "traditional",
    }
}

fn count_route(route: &'static str) {
    sww_obs::counter("sww_server_requests_total", &[("route", route)]).inc();
}

fn handle_request(
    st: &mut ServerState,
    server_ability: GenAbility,
    client_ability: GenAbility,
    req: &Request,
) -> Response {
    if req.method != "GET" {
        count_route("bad_method");
        return Response::status(405);
    }
    // Observability endpoint: the whole metrics registry in Prometheus
    // text format. Purely read-only with respect to site state.
    if req.path == "/metrics" {
        count_route("metrics");
        let mut resp = Response::ok(Bytes::from(sww_obs::render()));
        resp.headers
            .insert("content-type", "text/plain; version=0.0.4");
        return resp;
    }
    // Generated/unique assets first.
    if let Some(bytes) = st
        .generated_assets
        .get(&req.path)
        .cloned()
        .or_else(|| st.site.assets.get(&req.path).cloned())
    {
        count_route("asset");
        let mut resp = Response::ok(bytes);
        resp.headers.insert("content-type", "image/swim");
        return resp;
    }
    // Video routes (§3.2): /video/<name>/playlist.m3u8 and segments.
    if let Some(rest) = req.path.strip_prefix("/video/") {
        count_route("video");
        return handle_video(st, server_ability, client_ability, rest);
    }
    let Some(page) = st.site.page(&req.path).cloned() else {
        count_route("not_found");
        return Response::status(404);
    };
    count_route("page");
    let mode = decide(server_ability, client_ability, &st.policy);
    *st.served_modes.entry(mode_label(mode)).or_default() += 1;
    sww_obs::counter(
        "sww_negotiate_outcomes_total",
        &[("mode", mode_label(mode))],
    )
    .inc();
    let html = match mode {
        ServeMode::Generative | ServeMode::UpscaleAssisted => page.html,
        ServeMode::ServerGenerated | ServeMode::Traditional => materialize(st, &page.html),
    };
    // Conditional requests: the page body is content-addressed, so a
    // client that revalidates with If-None-Match skips the transfer —
    // prompt-form pages are as cacheable as any static resource.
    let etag = format!("\"{}\"", &to_hex(&sha256(html.as_bytes()))[..16]);
    if req.headers.get("if-none-match") == Some(etag.as_str()) {
        let mut resp = Response::status(304);
        resp.headers.insert("etag", etag);
        resp.headers.insert("x-sww-mode", mode_label(mode));
        return resp;
    }
    let mut resp = Response::ok(Bytes::from(html));
    resp.headers.insert("content-type", "text/html");
    resp.headers.insert("etag", etag);
    resp.headers.insert("x-sww-mode", mode_label(mode));
    resp
}

/// Serve a video playlist or segment. The rendition is negotiated per
/// request from the latest advertised abilities, so a client that
/// withdraws VIDEO mid-connection falls back to full rate.
fn handle_video(
    st: &mut ServerState,
    server_ability: GenAbility,
    client_ability: GenAbility,
    rest: &str,
) -> Response {
    let Some((name, file)) = rest.split_once('/') else {
        return Response::status(404);
    };
    let Some(asset) = st.site.videos.get(name).cloned() else {
        return Response::status(404);
    };
    let playlist = hls::build_playlist(&asset, client_ability, server_ability);
    if file == "playlist.m3u8" {
        let mut resp = Response::ok(Bytes::from(playlist.to_m3u8(&asset)));
        resp.headers
            .insert("content-type", "application/vnd.apple.mpegurl");
        resp.headers
            .insert("x-sww-sent-fps", playlist.stream.sent_fps.to_string());
        return resp;
    }
    // Segment: segNNNN.ts
    let Some(index) = file
        .strip_prefix("seg")
        .and_then(|f| f.strip_suffix(".ts"))
        .and_then(|n| n.parse::<u64>().ok())
    else {
        return Response::status(404);
    };
    if index >= playlist.stream.segments {
        return Response::status(404);
    }
    let mut resp = Response::ok(Bytes::from(hls::segment_payload(&playlist, index)));
    resp.headers.insert("content-type", "video/mp2t");
    resp
}

/// Expand every generated-content element server-side, store the media as
/// a servable asset, and rewrite the page to point at it.
fn materialize(st: &mut ServerState, html: &str) -> String {
    let mut doc = parse(html);
    let items = gencontent::extract(&doc);
    for item in items {
        let span = sww_obs::Span::begin("sww_server_generate", "materialize");
        let (media, cost) = st.generator.generate(&item);
        span.finish_with_virtual(cost.time_s);
        st.server_generation_time_s += cost.time_s;
        match media {
            GeneratedMedia::Image {
                name,
                encoded,
                image,
            } => {
                let path = format!("/generated/{name}");
                st.generated_assets
                    .insert(path.clone(), Bytes::from(encoded));
                gencontent::replace_with_image(
                    &mut doc,
                    item.node,
                    &path,
                    image.width(),
                    image.height(),
                );
            }
            GeneratedMedia::Text { text } => {
                gencontent::replace_with_text(&mut doc, item.node, &text);
            }
        }
    }
    serialize(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_site() -> SiteContent {
        let mut site = SiteContent::new();
        let html = format!(
            "<html><body><h1>Hike</h1>{}{}<img src=\"/photos/me.jpg\"></body></html>",
            gencontent::image_div("a mountain trail at dawn", "trail.jpg", 128, 128),
            gencontent::text_div(&["trail steep rocky".into()], 80),
        );
        site.add_page("/hike", html);
        site.add_asset("/photos/me.jpg", Bytes::from_static(b"unique-photo-bytes"));
        site
    }

    #[test]
    fn stored_bytes_counts_prompt_form() {
        let site = demo_site();
        let stored = site.stored_bytes();
        assert!(stored > 100);
        assert_eq!(site.page_count(), 1);
    }

    #[test]
    fn traditional_exceeds_prompt_form() {
        let server =
            GenerativeServer::new(demo_site(), GenAbility::full(), ServerPolicy::default());
        let stored = server.stored_bytes();
        let traditional = server.traditional_bytes();
        assert!(
            traditional > stored,
            "traditional {traditional} must exceed prompt-form {stored}"
        );
    }

    #[tokio::test]
    async fn serves_prompt_form_to_capable_client() {
        let server =
            GenerativeServer::new(demo_site(), GenAbility::full(), ServerPolicy::default());
        let (a, b) = tokio::io::duplex(1 << 20);
        let srv = server.clone();
        tokio::spawn(async move {
            let _ = srv.serve_stream(b).await;
        });
        let mut client = sww_http2::ClientConnection::handshake(a, GenAbility::full())
            .await
            .unwrap();
        let resp = client.send_request(&Request::get("/hike")).await.unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.headers.get("x-sww-mode"), Some("generative"));
        let body = String::from_utf8(resp.body.to_vec()).unwrap();
        assert!(body.contains("generated-content"), "prompt form expected");
        assert_eq!(server.served_modes()["generative"], 1);
    }

    #[tokio::test]
    async fn materializes_for_naive_client() {
        let server =
            GenerativeServer::new(demo_site(), GenAbility::full(), ServerPolicy::default());
        let (a, b) = tokio::io::duplex(1 << 20);
        let srv = server.clone();
        tokio::spawn(async move {
            let _ = srv.serve_stream(b).await;
        });
        let mut client = sww_http2::ClientConnection::handshake(a, GenAbility::none())
            .await
            .unwrap();
        let resp = client.send_request(&Request::get("/hike")).await.unwrap();
        assert_eq!(resp.headers.get("x-sww-mode"), Some("server-generated"));
        let body = String::from_utf8(resp.body.to_vec()).unwrap();
        assert!(!body.contains("generated-content"));
        assert!(body.contains("/generated/trail.jpg"));
        // The generated asset is servable.
        let img = client
            .send_request(&Request::get("/generated/trail.jpg"))
            .await
            .unwrap();
        assert_eq!(img.status, 200);
        assert!(sww_genai::codec::decode(&img.body).is_ok());
        // Server spent modelled generation time.
        assert!(server.server_generation_time_s() > 0.0);
    }

    #[tokio::test]
    async fn unknown_path_is_404_and_post_is_405() {
        let server =
            GenerativeServer::new(demo_site(), GenAbility::full(), ServerPolicy::default());
        let (a, b) = tokio::io::duplex(1 << 20);
        let srv = server.clone();
        tokio::spawn(async move {
            let _ = srv.serve_stream(b).await;
        });
        let mut client = sww_http2::ClientConnection::handshake(a, GenAbility::full())
            .await
            .unwrap();
        let resp = client
            .send_request(&Request::get("/missing"))
            .await
            .unwrap();
        assert_eq!(resp.status, 404);
        let mut post = Request::get("/hike");
        post.method = "POST".into();
        let resp = client.send_request(&post).await.unwrap();
        assert_eq!(resp.status, 405);
    }

    #[tokio::test]
    async fn unique_assets_served_as_is() {
        let server =
            GenerativeServer::new(demo_site(), GenAbility::full(), ServerPolicy::default());
        let (a, b) = tokio::io::duplex(1 << 20);
        let srv = server.clone();
        tokio::spawn(async move {
            let _ = srv.serve_stream(b).await;
        });
        let mut client = sww_http2::ClientConnection::handshake(a, GenAbility::full())
            .await
            .unwrap();
        let resp = client
            .send_request(&Request::get("/photos/me.jpg"))
            .await
            .unwrap();
        assert_eq!(&resp.body[..], b"unique-photo-bytes");
    }
}
