//! The generative server (paper §5.1), rebuilt as a concurrent serving
//! engine.
//!
//! Stores pages in prompt form (that is the storage saving), negotiates
//! generative ability during the HTTP/2 SETTINGS exchange, and serves each
//! request according to the negotiated mode: prompt-form HTML to capable
//! clients, server-side-expanded media to naive ones ("the server uses
//! the prompt to generate the content before sending it to the client.
//! This saves storage space, and avoids saving two copies of content").
//!
//! # Concurrency model
//!
//! A server built with [`GenerativeServer::builder`] is safe to drive
//! from many threads and connections at once:
//!
//! * Site content and policy are frozen at build time and read without
//!   locking.
//! * Server-side generation flows through a [`GenerationEngine`]: a
//!   lock-striped cache plus single-flight coalescing, so concurrent
//!   requests for the same prompt recipe generate **exactly once**.
//! * With `workers(n)` (n > 0), requests execute on a fixed
//!   [`WorkerPool`] with a bounded queue;
//!   when the queue is full the server answers `503` with `Retry-After`
//!   instead of queueing without bound. With `workers(0)` (the default)
//!   requests run inline on the calling thread, preserving the original
//!   single-threaded behaviour exactly.
//! * Each OS thread that generates keeps its own preloaded
//!   [`MediaGenerator`] (the §4.1 preload optimisation, per worker), so
//!   generations for distinct recipes proceed in parallel.
//! * With `batch_max(n)` (n > 1), cache-missing generations additionally
//!   flow through a [`BatchScheduler`]: compatible concurrent recipes
//!   share one multi-latent denoising pass, bit-identical per image to
//!   the unbatched path (see [`crate::batch`] for the closing policy).
//!
//! Request handling is fallible internally ([`SwwError`]); the mapping
//! from error to HTTP status code lives in exactly one place, the
//! private `error_response` function.

use crate::batch::{BatchConfig, BatchScheduler, BatchStats};
use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::cache::Recipe;
use crate::engine::GenerationEngine;
use crate::error::SwwError;
use crate::faults::{self, FaultAction, FaultScope, FaultSite};
use crate::hls::{self, VideoAsset};
use crate::lifecycle::{record_cancelled, record_shed, RequestCtx};
use crate::mediagen::{GeneratedMedia, MediaGenerator};
use crate::negotiate::{session, ServeMode, SessionAbilities};
use crate::policy::ServerPolicy;
use crate::transport::TransportKind;
use crate::workpool::WorkerPool;
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use sww_energy::cost as gen_cost;
use sww_energy::device::{profile as device_profile, DeviceKind};
use sww_genai::image::codec;
use sww_hash::{sha256, to_hex};
use sww_html::gencontent::ContentType;
use sww_html::{gencontent, parse, serialize};
use sww_http2::server::{serve_connection_until, ServeStats};
use sww_http2::{GenAbility, H2Error, Request, Response};
use sww_http3::server::{serve_h3_connection_until, H3ServeContext, H3ServeStats};
use sww_http3::H3Error;
use tokio::io::{AsyncRead, AsyncWrite};

/// One page of site content, stored in SWW (prompt) form.
#[derive(Debug, Clone)]
pub struct SwwPage {
    /// HTML that may contain generated-content divisions and references
    /// to unique assets.
    pub html: String,
}

/// A site: pages plus unique (non-generatable) assets and published
/// video streams (§3.2).
#[derive(Debug, Clone, Default)]
pub struct SiteContent {
    pages: HashMap<String, SwwPage>,
    assets: HashMap<String, Bytes>,
    videos: HashMap<String, VideoAsset>,
    /// Cached total of prompt-form octets (pages + unique assets),
    /// maintained incrementally by the mutators so [`stored_bytes`]
    /// never re-iterates the maps.
    ///
    /// [`stored_bytes`]: SiteContent::stored_bytes
    stored: u64,
}

impl SiteContent {
    /// An empty site.
    pub fn new() -> SiteContent {
        SiteContent::default()
    }

    /// Add a page at `path`, replacing (and un-counting) any previous
    /// page at the same path.
    pub fn add_page(&mut self, path: impl Into<String>, html: impl Into<String>) {
        let page = SwwPage { html: html.into() };
        self.stored += page.html.len() as u64;
        if let Some(old) = self.pages.insert(path.into(), page) {
            self.stored -= old.html.len() as u64;
        }
    }

    /// Add a unique asset (e.g. the photographs from the specific hike),
    /// replacing any previous asset at the same path.
    pub fn add_asset(&mut self, path: impl Into<String>, bytes: impl Into<Bytes>) {
        let bytes = bytes.into();
        self.stored += bytes.len() as u64;
        if let Some(old) = self.assets.insert(path.into(), bytes) {
            self.stored -= old.len() as u64;
        }
    }

    /// Octets the site occupies in prompt form: HTML + unique assets.
    /// This is what the server actually stores. O(1): the total is kept
    /// current by `add_page` / `add_asset` / `add_video`.
    pub fn stored_bytes(&self) -> u64 {
        self.stored
    }

    /// Publish a video stream; its playlist appears at
    /// `/video/<name>/playlist.m3u8` with a rendition negotiated from the
    /// client's VIDEO ability (§3.2). Video renditions are modelled, not
    /// stored, so they do not contribute to [`stored_bytes`]
    /// (replacing a stream therefore leaves the total unchanged).
    ///
    /// [`stored_bytes`]: SiteContent::stored_bytes
    pub fn add_video(&mut self, asset: VideoAsset) {
        self.videos.insert(asset.name.clone(), asset);
    }

    /// Page lookup.
    pub fn page(&self, path: &str) -> Option<&SwwPage> {
        self.pages.get(path)
    }

    /// Iterate over page paths (unordered). The edge tier walks these
    /// to derive each page's recipe routing key.
    pub fn page_paths(&self) -> impl Iterator<Item = &str> {
        self.pages.keys().map(String::as_str)
    }

    /// Number of pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }
}

/// Mutable serving statistics, behind one small lock (never held across
/// generation).
#[derive(Debug, Default)]
struct Accounting {
    /// How many times each mode was served.
    served_modes: HashMap<&'static str, u64>,
    /// Modelled server-side generation seconds accumulated.
    generation_time_s: f64,
}

/// Everything a server's connections share. Site and policy are frozen
/// at build time; everything mutable sits behind its own fine-grained
/// lock so request handling never serialises on a global mutex.
#[derive(Debug)]
struct ServerShared {
    ability: GenAbility,
    site: SiteContent,
    policy: ServerPolicy,
    /// Sharded, single-flight generation: the concurrency tentpole.
    engine: GenerationEngine,
    /// Media materialized for naive clients, keyed by URL path.
    generated_assets: RwLock<HashMap<String, Bytes>>,
    accounting: Mutex<Accounting>,
    /// Memoized traditional-size estimate; the site is immutable once
    /// the server is built, so this is computed at most once.
    traditional_memo: Mutex<Option<u64>>,
    /// Present when the server was built with `workers(n > 0)`.
    pool: Option<WorkerPool>,
    /// Present when the server was built with `batch_max(n > 1)`:
    /// compatible cache-missing generations share denoising passes.
    batcher: Option<BatchScheduler>,
    /// Data-parallel kernel lanes configured at build time (1 = scalar).
    kernel_tiles: usize,
    /// Deadline for requests that carry no `x-sww-deadline-ms` header.
    default_deadline: Option<Duration>,
    /// Per-model circuit breaker, when enabled at build time.
    breaker: Option<CircuitBreaker>,
    /// Per-server fault-injection scope: dispatch enters it so chaos
    /// draws on this server's behalf come from its own seeded stream
    /// (relabelled to the node id when it joins an edge cluster).
    fault_scope: Arc<FaultScope>,
    /// Set by [`GenerativeServer::drain`]: stop admitting requests.
    draining: AtomicBool,
    /// Requests currently inside `dispatch` (admission through response).
    /// `drain` waits for this to reach zero.
    inflight: AtomicUsize,
}

/// RAII in-flight counter: held for the full life of one `dispatch`
/// call so [`GenerativeServer::drain`] can wait for admitted requests
/// to finish rather than abandoning them.
struct InflightGuard<'a> {
    shared: &'a ServerShared,
}

impl<'a> InflightGuard<'a> {
    fn enter(shared: &'a ServerShared) -> InflightGuard<'a> {
        shared.inflight.fetch_add(1, Ordering::SeqCst);
        InflightGuard { shared }
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.shared.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

thread_local! {
    /// Per-thread preloaded generator (paper §4.1: the pipeline is "a
    /// large object" reused across invocations). One per OS thread means
    /// pool workers generate in parallel without sharing a lock.
    static SERVER_GENERATOR: RefCell<Option<MediaGenerator>> = const { RefCell::new(None) };
}

fn with_generator<R>(f: impl FnOnce(&mut MediaGenerator) -> R) -> R {
    SERVER_GENERATOR.with(|cell| {
        let mut slot = cell.borrow_mut();
        let generator = slot
            .get_or_insert_with(|| MediaGenerator::new(device_profile(DeviceKind::Workstation)));
        f(generator)
    })
}

/// Complete server configuration — one plain struct, shared verbatim by
/// the library ([`GenerativeServer::from_config`]), the fluent builder
/// (a thin wrapper over this), and `sww serve` flag parsing (which
/// produces a `ServerConfig` directly, so CLI and library can never
/// drift).
///
/// ```
/// use sww_core::{GenerativeServer, ServerConfig};
/// let server = GenerativeServer::from_config(ServerConfig {
///     workers: 4,
///     cache_shards: 16,
///     ..ServerConfig::default()
/// });
/// assert!(server.ability().supported());
/// ```
#[derive(Debug)]
pub struct ServerConfig {
    /// The site to serve (default: empty).
    pub site: SiteContent,
    /// The generative ability to advertise (default: full).
    pub ability: GenAbility,
    /// The serving policy (default: [`ServerPolicy::default`]).
    pub policy: ServerPolicy,
    /// Number of pool workers. `0` (the default) handles requests inline
    /// on the calling thread with no pool at all.
    pub workers: usize,
    /// Bound on jobs waiting for a worker before the server starts
    /// answering `503` (default: 64). Ignored when `workers` is 0.
    pub queue_capacity: usize,
    /// Number of lock stripes in the server-side generation cache
    /// (default: 8, clamped to at least 1).
    pub cache_shards: usize,
    /// Total pixel budget of the server-side generation cache (default:
    /// 64 MP), divided evenly across shards.
    pub cache_pixels: u64,
    /// Most compatible generations one denoising pass may carry.
    /// `1` (the default) disables batching entirely; `n > 1` routes
    /// cache-missing generations through a [`BatchScheduler`].
    pub batch_max: usize,
    /// Hard bound on how long an open batch waits for company before it
    /// executes (default: 2 ms). Only meaningful with `batch_max > 1`.
    pub batch_wait: Duration,
    /// Data-parallel kernel lanes for batched denoising passes (default:
    /// 1 — the scalar step-major kernel). With `n > 1` and `batch_max >
    /// 1`, each closed batch splits into up to `n` tiles that run
    /// concurrently on a dedicated kernel [`WorkerPool`] (`n - 1` helper
    /// threads; the batch leader is the n-th lane). Output stays
    /// bit-identical to the scalar kernel for every lane count — see
    /// PERFORMANCE.md "Kernel & memory model".
    ///
    /// The kernel pool is separate from the request pool on purpose:
    /// batch *members* block on the group outcome while occupying
    /// request workers, so tiles queued behind them would never run.
    pub kernel_tiles: usize,
    /// Deadline applied to every request that does not carry its own
    /// `x-sww-deadline-ms` header (default: none — requests may block
    /// indefinitely, the pre-lifecycle behaviour).
    pub default_deadline: Option<Duration>,
    /// Per-model circuit breaker tuning (default: `None`, disabled —
    /// generation failures surface individually and nothing is shed
    /// pre-emptively).
    pub breaker: Option<BreakerConfig>,
    /// Seed for the pool's EWMA job-service-time estimate, in seconds
    /// (default: `None` → [`crate::workpool::SERVICE_TIME_PRIOR_S`]).
    /// Drives both `Retry-After` advice and deadline-aware admission
    /// before real samples arrive. Ignored when `workers` is 0.
    pub service_time_prior_s: Option<f64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            site: SiteContent::new(),
            ability: GenAbility::full(),
            policy: ServerPolicy::default(),
            workers: 0,
            queue_capacity: 64,
            cache_shards: 8,
            cache_pixels: 64_000_000,
            batch_max: 1,
            batch_wait: Duration::from_millis(2),
            kernel_tiles: 1,
            default_deadline: None,
            breaker: None,
            service_time_prior_s: None,
        }
    }
}

/// Fluent facade over [`ServerConfig`] — every method sets exactly one
/// field; [`GenerativeServerBuilder::build`] is
/// [`GenerativeServer::from_config`]. See the field docs on
/// [`ServerConfig`] for semantics and defaults.
///
/// ```
/// use sww_core::{GenAbility, GenerativeServer, ServerPolicy, SiteContent};
/// let server = GenerativeServer::builder()
///     .site(SiteContent::new())
///     .ability(GenAbility::full())
///     .policy(ServerPolicy::default())
///     .workers(4)
///     .cache_shards(16)
///     .build();
/// assert!(server.ability().supported());
/// ```
#[derive(Debug, Default)]
pub struct GenerativeServerBuilder {
    config: ServerConfig,
}

impl GenerativeServerBuilder {
    /// The site to serve ([`ServerConfig::site`]).
    pub fn site(mut self, site: SiteContent) -> GenerativeServerBuilder {
        self.config.site = site;
        self
    }

    /// The ability to advertise ([`ServerConfig::ability`]).
    pub fn ability(mut self, ability: GenAbility) -> GenerativeServerBuilder {
        self.config.ability = ability;
        self
    }

    /// The serving policy ([`ServerConfig::policy`]).
    pub fn policy(mut self, policy: ServerPolicy) -> GenerativeServerBuilder {
        self.config.policy = policy;
        self
    }

    /// Pool worker count ([`ServerConfig::workers`]).
    pub fn workers(mut self, workers: usize) -> GenerativeServerBuilder {
        self.config.workers = workers;
        self
    }

    /// Pool queue bound ([`ServerConfig::queue_capacity`]).
    pub fn queue_capacity(mut self, capacity: usize) -> GenerativeServerBuilder {
        self.config.queue_capacity = capacity;
        self
    }

    /// Generation-cache lock stripes ([`ServerConfig::cache_shards`]).
    pub fn cache_shards(mut self, shards: usize) -> GenerativeServerBuilder {
        self.config.cache_shards = shards;
        self
    }

    /// Generation-cache pixel budget ([`ServerConfig::cache_pixels`]).
    pub fn cache_pixels(mut self, pixels: u64) -> GenerativeServerBuilder {
        self.config.cache_pixels = pixels;
        self
    }

    /// Batch size bound ([`ServerConfig::batch_max`]).
    pub fn batch_max(mut self, batch_max: usize) -> GenerativeServerBuilder {
        self.config.batch_max = batch_max;
        self
    }

    /// Open-batch wait bound ([`ServerConfig::batch_wait`]).
    pub fn batch_wait(mut self, batch_wait: Duration) -> GenerativeServerBuilder {
        self.config.batch_wait = batch_wait;
        self
    }

    /// Data-parallel kernel lanes ([`ServerConfig::kernel_tiles`]).
    pub fn kernel_tiles(mut self, kernel_tiles: usize) -> GenerativeServerBuilder {
        self.config.kernel_tiles = kernel_tiles.max(1);
        self
    }

    /// Default per-request deadline ([`ServerConfig::default_deadline`]).
    pub fn default_deadline(mut self, deadline: Duration) -> GenerativeServerBuilder {
        self.config.default_deadline = Some(deadline);
        self
    }

    /// Enable the circuit breaker ([`ServerConfig::breaker`]).
    pub fn breaker(mut self, config: BreakerConfig) -> GenerativeServerBuilder {
        self.config.breaker = Some(config);
        self
    }

    /// EWMA service-time seed ([`ServerConfig::service_time_prior_s`]).
    pub fn service_time_prior(mut self, prior_s: f64) -> GenerativeServerBuilder {
        self.config.service_time_prior_s = Some(prior_s);
        self
    }

    /// Build the server: [`GenerativeServer::from_config`].
    pub fn build(self) -> GenerativeServer {
        GenerativeServer::from_config(self.config)
    }
}

/// The generative server.
#[derive(Debug, Clone)]
pub struct GenerativeServer {
    shared: Arc<ServerShared>,
}

impl GenerativeServer {
    /// Start configuring a server.
    pub fn builder() -> GenerativeServerBuilder {
        GenerativeServerBuilder::default()
    }

    /// Build a server from a complete [`ServerConfig`] — the single
    /// construction path (the builder and `sww serve` both land here).
    pub fn from_config(config: ServerConfig) -> GenerativeServer {
        let kernel_tiles = config.kernel_tiles.max(1);
        GenerativeServer {
            shared: Arc::new(ServerShared {
                ability: config.ability,
                site: config.site,
                policy: config.policy,
                engine: GenerationEngine::new(config.cache_shards, config.cache_pixels),
                generated_assets: RwLock::new(HashMap::new()),
                accounting: Mutex::new(Accounting::default()),
                traditional_memo: Mutex::new(None),
                pool: (config.workers > 0).then(|| match config.service_time_prior_s {
                    Some(prior) => {
                        WorkerPool::with_service_prior(config.workers, config.queue_capacity, prior)
                    }
                    None => WorkerPool::new(config.workers, config.queue_capacity),
                }),
                batcher: (config.batch_max > 1).then(|| {
                    let batch = BatchConfig {
                        max_batch: config.batch_max,
                        max_wait: config.batch_wait,
                    };
                    if kernel_tiles > 1 {
                        let runner = Arc::new(WorkerPool::new(kernel_tiles - 1, kernel_tiles * 4));
                        BatchScheduler::new_tiled(batch, kernel_tiles, runner)
                    } else {
                        BatchScheduler::new(batch)
                    }
                }),
                kernel_tiles,
                default_deadline: config.default_deadline,
                breaker: config.breaker.map(CircuitBreaker::new),
                fault_scope: Arc::new(FaultScope::new("server")),
                draining: AtomicBool::new(false),
                inflight: AtomicUsize::new(0),
            }),
        }
    }

    /// The ability this server advertises.
    pub fn ability(&self) -> GenAbility {
        self.shared.ability
    }

    /// The serving policy this node was built with. The edge tier reads
    /// it to negotiate a mode at the entry node before deciding whether
    /// a request needs a routing hop at all.
    pub fn policy(&self) -> &ServerPolicy {
        &self.shared.policy
    }

    /// Drive one request through the transport-agnostic dispatch path
    /// under the [`TransportKind::Edge`] label — the entry point the
    /// cluster tier ([`crate::edge::EdgeRouter`]) uses for both
    /// local serves and peer cache-fill fetches.
    pub(crate) fn dispatch_edge(&self, client_ability: GenAbility, req: &Request) -> Response {
        dispatch(&self.shared, client_ability, req, TransportKind::Edge)
    }

    /// Relabel this server's fault-injection scope ([`FaultScope`]).
    /// The edge router calls this with the node id on join so each node
    /// in a multi-node chaos run draws an independent, replayable fault
    /// stream instead of sharing one process-global sequence.
    pub fn set_fault_domain(&self, label: &str) {
        self.shared.fault_scope.relabel(label);
    }

    /// Accept a (transport-independent) session for a client advertising
    /// `client_ability`. The [`Session`] carries the negotiated ability,
    /// so per-request calls no longer re-state the client's capability.
    pub fn accept(&self, client_ability: GenAbility) -> Session {
        count_session(TransportKind::Inproc);
        Session {
            shared: Arc::clone(&self.shared),
            client_ability,
        }
    }

    /// Serve one accepted HTTP/2 connection (duplex stream or TCP
    /// socket). Once the server is [draining](GenerativeServer::drain),
    /// the connection finishes the exchange in progress, sends
    /// GOAWAY(NO_ERROR) and closes.
    pub async fn serve_stream<T>(&self, io: T) -> Result<ServeStats, H2Error>
    where
        T: AsyncRead + AsyncWrite + Unpin,
    {
        count_session(TransportKind::H2);
        let shared = Arc::clone(&self.shared);
        let drain_watch = Arc::clone(&self.shared);
        let ability = self.shared.ability;
        serve_connection_until(
            io,
            ability,
            move |req, ctx| dispatch(&shared, ctx.client_ability, &req, TransportKind::H2),
            move || drain_watch.draining.load(Ordering::SeqCst),
        )
        .await
    }

    /// Serve one accepted HTTP/3 connection through the same dispatch
    /// path as [`serve_stream`](GenerativeServer::serve_stream) — the h3
    /// framing adapter delivers the client's latest advertised ability
    /// per request and the transport-agnostic core does the rest.
    /// Requests on distinct streams execute concurrently, so one slow
    /// generation never head-of-line-blocks the other recipes on a page.
    /// A [draining](GenerativeServer::drain) server sends GOAWAY and
    /// finishes the streams in flight.
    pub async fn serve_h3_stream<T>(&self, io: T) -> Result<H3ServeStats, H3Error>
    where
        T: AsyncRead + AsyncWrite + Unpin,
    {
        count_session(TransportKind::H3);
        let shared = Arc::clone(&self.shared);
        let drain_watch = Arc::clone(&self.shared);
        let ability = self.shared.ability;
        serve_h3_connection_until(
            io,
            ability,
            move |req: Request, ctx: H3ServeContext| {
                dispatch(&shared, ctx.client_ability, &req, TransportKind::H3)
            },
            move || drain_watch.draining.load(Ordering::SeqCst),
        )
        .await
    }

    /// Bind a TCP listener and serve HTTP/2 connections until the task is
    /// dropped or the server drains (a draining listener stops accepting;
    /// connections already accepted close via GOAWAY after their next
    /// response). Returns the bound address.
    pub async fn spawn_tcp(&self, addr: &str) -> std::io::Result<std::net::SocketAddr> {
        let listener = tokio::net::TcpListener::bind(addr).await?;
        let local = listener.local_addr()?;
        let this = self.clone();
        tokio::spawn(async move {
            while let Ok((sock, _)) = listener.accept().await {
                if this.is_draining() {
                    break;
                }
                let server = this.clone();
                tokio::spawn(async move {
                    let _ = server.serve_stream(sock).await;
                });
            }
        });
        Ok(local)
    }

    /// Bind a TCP listener and serve HTTP/3 (QUIC-lite over the socket)
    /// connections — the h3 twin of
    /// [`spawn_tcp`](GenerativeServer::spawn_tcp). Returns the bound
    /// address.
    pub async fn spawn_tcp_h3(&self, addr: &str) -> std::io::Result<std::net::SocketAddr> {
        let listener = tokio::net::TcpListener::bind(addr).await?;
        let local = listener.local_addr()?;
        let this = self.clone();
        tokio::spawn(async move {
            while let Ok((sock, _)) = listener.accept().await {
                if this.is_draining() {
                    break;
                }
                let server = this.clone();
                tokio::spawn(async move {
                    let _ = server.serve_h3_stream(sock).await;
                });
            }
        });
        Ok(local)
    }

    /// Octets the site occupies in prompt form (O(1), cached by
    /// [`SiteContent`]).
    pub fn stored_bytes(&self) -> u64 {
        self.shared.site.stored_bytes()
    }

    /// Octets the site would occupy traditionally: every generated-content
    /// element materialized to media (measured via the codec) plus HTML
    /// and unique assets. Memoized — the site is immutable once built, so
    /// the full generation sweep runs at most once.
    pub fn traditional_bytes(&self) -> u64 {
        let mut memo = self.shared.traditional_memo.lock();
        if let Some(total) = *memo {
            return total;
        }
        let mut total = self.shared.site.stored_bytes();
        for page in self.shared.site.pages.values() {
            let doc = parse(&page.html);
            for item in gencontent::extract(&doc) {
                let (media, _) = with_generator(|g| g.generate(&item));
                total += media.media_bytes() as u64;
                // Prompt-form metadata would not be stored traditionally.
                total = total.saturating_sub(item.metadata_size() as u64);
            }
        }
        *memo = Some(total);
        total
    }

    /// How many requests were served in each mode (for tests/benches).
    pub fn served_modes(&self) -> HashMap<&'static str, u64> {
        self.shared.accounting.lock().served_modes.clone()
    }

    /// Accumulated modelled server-side generation time.
    pub fn server_generation_time_s(&self) -> f64 {
        self.shared.accounting.lock().generation_time_s
    }

    /// The concurrent generation engine (cache shards + single flight).
    pub fn engine(&self) -> &GenerationEngine {
        &self.shared.engine
    }

    /// Worker threads backing this server, if a pool was configured.
    pub fn worker_count(&self) -> Option<usize> {
        self.shared.pool.as_ref().map(|p| p.worker_count())
    }

    /// The batch scheduler, when the server was built with
    /// `batch_max(n > 1)`. Benches and tests use this for
    /// [`BatchScheduler::announce`] hints and policy introspection.
    pub fn batcher(&self) -> Option<&BatchScheduler> {
        self.shared.batcher.as_ref()
    }

    /// Lifetime batching tallies (`None` when batching is disabled).
    pub fn batch_stats(&self) -> Option<BatchStats> {
        self.shared.batcher.as_ref().map(|b| b.stats())
    }

    /// Kernel lanes batched denoising passes fan out across (1 = the
    /// scalar kernel; see [`GenerativeServerBuilder::kernel_tiles`]).
    pub fn kernel_tiles(&self) -> usize {
        self.shared.kernel_tiles
    }

    /// The per-model circuit breaker, when one was enabled at build time.
    pub fn breaker(&self) -> Option<&CircuitBreaker> {
        self.shared.breaker.as_ref()
    }

    /// Whether [`drain`](GenerativeServer::drain) has been called.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Gracefully drain: stop admitting new requests (they shed `503`,
    /// `sww_shed_total{reason="draining"}`; `/metrics` stays readable),
    /// then block until every already-admitted request has its response.
    /// Connections served through [`serve_stream`] receive a GOAWAY after
    /// their next response. Idempotent; concurrent callers all block
    /// until the server is idle.
    ///
    /// Admission is a promise: a request inside `dispatch` when the flag
    /// flips is never abandoned — `drain` waits for it, however slow.
    ///
    /// [`serve_stream`]: GenerativeServer::serve_stream
    pub fn drain(&self) -> DrainReport {
        let started = Instant::now();
        self.shared.draining.store(true, Ordering::SeqCst);
        let inflight_at_start = self.shared.inflight.load(Ordering::SeqCst);
        sww_obs::gauge("sww_drain_state", &[]).set(1.0);
        sww_obs::gauge("sww_drain_inflight_at_start", &[]).set(inflight_at_start as f64);
        // In-flight requests finish on their own threads; short-poll
        // rather than wiring a condvar through every dispatch exit.
        while self.shared.inflight.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let waited = started.elapsed();
        sww_obs::gauge("sww_drain_state", &[]).set(2.0);
        sww_obs::gauge("sww_drain_duration_seconds", &[]).set(waited.as_secs_f64());
        DrainReport {
            inflight_at_start,
            waited,
        }
    }
}

/// What [`GenerativeServer::drain`] observed.
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// Requests that were mid-dispatch when draining began (all of them
    /// got their responses before `drain` returned).
    pub inflight_at_start: usize,
    /// How long the drain blocked waiting for in-flight work.
    pub waited: Duration,
}

/// One accepted client's serving context: the server plus the client's
/// advertised ability, fixed at accept time. Sessions are cheap to
/// create, `Send + Sync`, and safe to use from many threads.
#[derive(Debug)]
pub struct Session {
    shared: Arc<ServerShared>,
    client_ability: GenAbility,
}

impl Session {
    /// The ability the client advertised at accept time.
    pub fn client_ability(&self) -> GenAbility {
        self.client_ability
    }

    /// This session's negotiation record, from the single
    /// [`crate::negotiate::session`] entry point.
    pub fn abilities(&self) -> SessionAbilities {
        session(self.shared.ability, self.client_ability)
    }

    /// The negotiated (shared) ability for this session.
    pub fn negotiated_ability(&self) -> GenAbility {
        self.abilities().negotiated
    }

    /// How page requests on this session will be served.
    pub fn serve_mode(&self) -> ServeMode {
        self.abilities().mode(&self.shared.policy)
    }

    /// Answer one request on this session. With a worker pool configured
    /// the request executes on a worker (bounded queue, `503` +
    /// `Retry-After` under saturation); otherwise it runs inline.
    pub fn handle(&self, req: &Request) -> Response {
        dispatch(
            &self.shared,
            self.client_ability,
            req,
            TransportKind::Inproc,
        )
    }
}

fn mode_label(mode: ServeMode) -> &'static str {
    match mode {
        ServeMode::Generative => "generative",
        ServeMode::UpscaleAssisted => "upscale",
        ServeMode::ServerGenerated => "server-generated",
        ServeMode::Traditional => "traditional",
    }
}

fn count_route(route: &'static str, transport: TransportKind) {
    sww_obs::counter(
        "sww_server_requests_total",
        &[("route", route), ("transport", transport.label())],
    )
    .inc();
}

fn count_session(transport: TransportKind) {
    sww_obs::counter(
        "sww_server_sessions_total",
        &[("transport", transport.label())],
    )
    .inc();
}

/// The lifecycle context for one request: an explicit
/// `x-sww-deadline-ms` header wins, then the server's default deadline,
/// then unbounded (the pre-lifecycle behaviour).
fn request_ctx(shared: &ServerShared, req: &Request) -> RequestCtx {
    let header = req
        .headers
        .get("x-sww-deadline-ms")
        .and_then(|v| v.parse::<u64>().ok());
    match header
        .map(Duration::from_millis)
        .or(shared.default_deadline)
    {
        Some(budget) => RequestCtx::with_deadline(budget),
        None => RequestCtx::unbounded(),
    }
}

/// Route a request to the pool (if configured) or handle it inline, and
/// materialize any error into its response.
///
/// Overload protection happens here, before any work is queued:
/// a draining server sheds everything but `/metrics`, and a request
/// whose EWMA-predicted queue wait already exceeds its remaining
/// deadline budget sheds immediately (`503` + `Retry-After`) instead of
/// queueing toward a guaranteed `504`. Symmetrically, a response that
/// was computed but missed its deadline is converted to `504` at the
/// end — the client stopped waiting, so a late success is no success.
///
/// The `server.respond` failpoint ([`crate::faults`]) acts on the
/// finished response: it can replace it with a `500`, delay it, or
/// truncate its body (which a client detects through the
/// content-addressed ETag and treats as an integrity failure).
fn dispatch(
    shared: &Arc<ServerShared>,
    client_ability: GenAbility,
    req: &Request,
    transport: TransportKind,
) -> Response {
    let _inflight = InflightGuard::enter(shared);
    let _fault_scope = faults::enter(&shared.fault_scope);
    if shared.draining.load(Ordering::SeqCst) && req.path != "/metrics" {
        record_shed("draining");
        return error_response(&SwwError::Saturated { retry_after_s: 1 });
    }
    let ctx = request_ctx(shared, req);
    if let (Some(pool), Some(remaining)) = (&shared.pool, ctx.remaining()) {
        let predicted = pool.predicted_wait();
        if predicted > remaining {
            record_shed("deadline");
            let retry_after_s = u32::try_from(predicted.as_secs())
                .unwrap_or(u32::MAX)
                .max(1);
            return error_response(&SwwError::Saturated { retry_after_s });
        }
    }
    let result = match &shared.pool {
        None => handle_request(shared, client_ability, req, &ctx, transport),
        Some(pool) => {
            let task_shared = Arc::clone(shared);
            let task_req = req.clone();
            let task_ctx = ctx.clone();
            pool.run(move || {
                if task_ctx.finished() {
                    // Expired while queued: a worker finally picked the
                    // job up, but nobody wants the answer anymore.
                    record_cancelled("pool.queue");
                    return Err(task_ctx.deadline_error());
                }
                handle_request(
                    &task_shared,
                    client_ability,
                    &task_req,
                    &task_ctx,
                    transport,
                )
            })
            .and_then(|inner| inner)
        }
    };
    let result = result.and_then(|resp| {
        ctx.check()?;
        Ok(resp)
    });
    let mut resp = result.unwrap_or_else(|err| error_response(&err));
    match faults::at(FaultSite::ServerRespond) {
        Some(FaultAction::Error) => {
            return error_response(&SwwError::Internal {
                reason: "injected fault at server.respond".into(),
            });
        }
        Some(FaultAction::Latency(d)) => std::thread::sleep(d),
        Some(FaultAction::TruncateKeepPct(pct)) => {
            let keep = resp.body.len() * usize::from(pct) / 100;
            resp.body = resp.body.slice(..keep);
        }
        None => {}
    }
    resp
}

/// Map a [`SwwError`] to its HTTP response — the **single** place in the
/// stack where error conditions become status codes.
fn error_response(err: &SwwError) -> Response {
    let status = match err {
        SwwError::NotFound { .. } => 404,
        SwwError::MethodNotAllowed { .. } => 405,
        SwwError::Internal { .. } | SwwError::Generation { .. } => 500,
        SwwError::UnsupportedModel { .. } => 501,
        SwwError::UpstreamStatus { .. }
        | SwwError::Transport(_)
        | SwwError::IntegrityFailure { .. } => 502,
        SwwError::Saturated { .. } | SwwError::Negotiation { .. } => 503,
        SwwError::DeadlineExceeded { .. } => 504,
    };
    let status_label = status.to_string();
    sww_obs::counter("sww_server_errors_total", &[("status", &status_label)]).inc();
    if status == 504 {
        // Counted here — the single error→status choke point — so every
        // deadline miss is tallied exactly once however deep it surfaced.
        sww_obs::counter("sww_deadline_exceeded_total", &[]).inc();
    }
    let mut resp = Response::status(status);
    if let SwwError::Saturated { retry_after_s } = err {
        resp.headers
            .insert("retry-after", retry_after_s.to_string());
    }
    resp.headers.insert("x-sww-error", err.to_string());
    resp
}

fn handle_request(
    shared: &ServerShared,
    client_ability: GenAbility,
    req: &Request,
    ctx: &RequestCtx,
    transport: TransportKind,
) -> Result<Response, SwwError> {
    // The one negotiation entry point, re-evaluated per request with the
    // client's *latest* advertisement — h2 reads it off the connection's
    // live SETTINGS, h3 off the most recent control-stream update, so
    // mid-connection withdraw/restore lands here identically.
    let abilities = session(shared.ability, client_ability);
    if req.method != "GET" {
        count_route("bad_method", transport);
        return Err(SwwError::MethodNotAllowed {
            method: req.method.clone(),
        });
    }
    // Observability endpoint: the whole metrics registry in Prometheus
    // text format. Purely read-only with respect to site state.
    if req.path == "/metrics" {
        count_route("metrics", transport);
        let mut resp = Response::ok(Bytes::from(sww_obs::render()));
        resp.headers
            .insert("content-type", "text/plain; version=0.0.4");
        return Ok(resp);
    }
    // Generated/unique assets first.
    let asset = shared
        .generated_assets
        .read()
        .get(&req.path)
        .cloned()
        .or_else(|| shared.site.assets.get(&req.path).cloned());
    if let Some(bytes) = asset {
        count_route("asset", transport);
        let mut resp = Response::ok(bytes);
        resp.headers.insert("content-type", "image/swim");
        return Ok(resp);
    }
    // Video routes (§3.2): /video/<name>/playlist.m3u8 and segments.
    if let Some(rest) = req.path.strip_prefix("/video/") {
        count_route("video", transport);
        return handle_video(shared, abilities, rest);
    }
    let Some(page) = shared.site.page(&req.path) else {
        count_route("not_found", transport);
        return Err(SwwError::NotFound {
            path: req.path.clone(),
        });
    };
    count_route("page", transport);
    let mode = abilities.mode(&shared.policy);
    *shared
        .accounting
        .lock()
        .served_modes
        .entry(mode_label(mode))
        .or_default() += 1;
    sww_obs::counter(
        "sww_negotiate_outcomes_total",
        &[("mode", mode_label(mode))],
    )
    .inc();
    let html = match mode {
        ServeMode::Generative | ServeMode::UpscaleAssisted => page.html.clone(),
        ServeMode::ServerGenerated | ServeMode::Traditional => {
            materialize(shared, &page.html, ctx)?
        }
    };
    // Conditional requests: the page body is content-addressed, so a
    // client that revalidates with If-None-Match skips the transfer —
    // prompt-form pages are as cacheable as any static resource.
    let etag = format!("\"{}\"", &to_hex(&sha256(html.as_bytes()))[..16]);
    if req.headers.get("if-none-match") == Some(etag.as_str()) {
        let mut resp = Response::status(304);
        resp.headers.insert("etag", etag);
        resp.headers.insert("x-sww-mode", mode_label(mode));
        return Ok(resp);
    }
    let mut resp = Response::ok(Bytes::from(html));
    resp.headers.insert("content-type", "text/html");
    resp.headers.insert("etag", etag);
    resp.headers.insert("x-sww-mode", mode_label(mode));
    Ok(resp)
}

/// Serve a video playlist or segment. The rendition is negotiated per
/// request from the latest advertised abilities, so a client that
/// withdraws VIDEO mid-connection falls back to full rate.
fn handle_video(
    shared: &ServerShared,
    abilities: SessionAbilities,
    rest: &str,
) -> Result<Response, SwwError> {
    let not_found = || SwwError::NotFound {
        path: format!("/video/{rest}"),
    };
    let Some((name, file)) = rest.split_once('/') else {
        return Err(not_found());
    };
    let Some(asset) = shared.site.videos.get(name) else {
        return Err(not_found());
    };
    let playlist = hls::build_playlist(asset, abilities.client, abilities.server);
    if file == "playlist.m3u8" {
        let mut resp = Response::ok(Bytes::from(playlist.to_m3u8(asset)));
        resp.headers
            .insert("content-type", "application/vnd.apple.mpegurl");
        resp.headers
            .insert("x-sww-sent-fps", playlist.stream.sent_fps.to_string());
        return Ok(resp);
    }
    // Segment: segNNNN.ts
    let Some(index) = file
        .strip_prefix("seg")
        .and_then(|f| f.strip_suffix(".ts"))
        .and_then(|n| n.parse::<u64>().ok())
    else {
        return Err(not_found());
    };
    if index >= playlist.stream.segments {
        return Err(not_found());
    }
    let mut resp = Response::ok(Bytes::from(hls::segment_payload(&playlist, index)));
    resp.headers.insert("content-type", "video/mp2t");
    Ok(resp)
}

/// Expand every generated-content element server-side, store the media as
/// a servable asset, and rewrite the page to point at it.
///
/// Image items flow through the generation engine: the recipe is looked
/// up in the sharded cache, and concurrent requests for the same recipe
/// coalesce onto one generation instead of each paying the cost. A
/// generation failure (real or injected through the `engine.generate`
/// failpoint) surfaces as [`SwwError`] — the request maps to an error
/// response and the client retries.
///
/// The request's [`RequestCtx`] rides along: the engine turns it into a
/// flight-abandonment [`StepCancel`](crate::StepCancel) probe, the batcher composes that
/// probe with its batch-mates', and the diffusion step loop checks it
/// every denoise step. When the circuit breaker is enabled, each image
/// item is admitted against its model's breaker first and the outcome is
/// reported back (only [`SwwError::is_generation_failure`] errors count
/// against the backend — a deadline miss says nothing about its health).
fn materialize(shared: &ServerShared, html: &str, ctx: &RequestCtx) -> Result<String, SwwError> {
    let mut doc = parse(html);
    for item in gencontent::extract(&doc) {
        match item.content_type {
            ContentType::Img => {
                let (model, steps) = with_generator(|g| (g.image_model(), g.inference_steps()));
                let recipe = Recipe {
                    prompt: item.prompt().to_owned(),
                    model,
                    width: item.width(),
                    height: item.height(),
                    steps,
                };
                if let Some(breaker) = &shared.breaker {
                    if let Err(err) = breaker.try_admit(recipe.model) {
                        record_shed("breaker");
                        return Err(err);
                    }
                }
                let fetched = shared.engine.try_fetch_image_ctx(&recipe, ctx, |cancel| {
                    let span = sww_obs::Span::begin("sww_server_generate", "materialize");
                    match &shared.batcher {
                        // Batched path: the flight leader joins a shared
                        // denoising pass. Bit-identical to the unbatched
                        // path; only the modelled cost is amortized.
                        Some(batcher) => {
                            let device = device_profile(DeviceKind::Workstation);
                            gen_cost::image_generation_time(
                                recipe.model,
                                &device,
                                recipe.width,
                                recipe.height,
                                recipe.steps,
                            )
                            .ok_or_else(|| {
                                SwwError::UnsupportedModel {
                                    what: "image generation",
                                    model: format!("{:?}", recipe.model),
                                }
                            })?;
                            let outcome = batcher.submit_ctx(&recipe, ctx, cancel)?;
                            // Per-image share of the (possibly tiled)
                            // pass; at kernel_tiles == 1 this is exactly
                            // the pre-tiling batched per-image time.
                            let time_s = gen_cost::tiled_batch_pass_time(
                                recipe.model,
                                &device,
                                recipe.width,
                                recipe.height,
                                recipe.steps,
                                outcome.batch_size,
                                shared.kernel_tiles,
                            )
                            .map(|pass| pass / outcome.batch_size.max(1) as f64)
                            .unwrap_or(0.0);
                            span.finish_with_virtual(time_s);
                            shared.accounting.lock().generation_time_s += time_s;
                            Ok(outcome.image)
                        }
                        None => {
                            // Unbatched: the probe gates entry (cheap
                            // abort before the synthesizer warms up);
                            // mid-generation expiry is caught by the
                            // final dispatch check.
                            if cancel.is_cancelled() {
                                record_cancelled("denoise");
                                return Err(ctx.deadline_error());
                            }
                            let (media, cost) = with_generator(|g| g.try_generate(&item))?;
                            span.finish_with_virtual(cost.time_s);
                            shared.accounting.lock().generation_time_s += cost.time_s;
                            match media {
                                GeneratedMedia::Image { image, .. } => Ok(image),
                                GeneratedMedia::Text { .. } => {
                                    unreachable!("an Img item generates an image")
                                }
                            }
                        }
                    }
                });
                if let Some(breaker) = &shared.breaker {
                    match &fetched {
                        Err(err) if err.is_generation_failure() => {
                            breaker.record_failure(recipe.model);
                        }
                        _ => breaker.record_success(recipe.model),
                    }
                }
                let (image, _outcome) = fetched?;
                let encoded = codec::encode(&image, crate::mediagen::DEFAULT_CODEC_QUALITY);
                let path = format!("/generated/{}", item.name());
                shared
                    .generated_assets
                    .write()
                    .insert(path.clone(), Bytes::from(encoded));
                gencontent::replace_with_image(
                    &mut doc,
                    item.node,
                    &path,
                    image.width(),
                    image.height(),
                );
            }
            ContentType::Txt => {
                let span = sww_obs::Span::begin("sww_server_generate", "materialize");
                let (media, cost) = with_generator(|g| g.try_generate(&item))?;
                span.finish_with_virtual(cost.time_s);
                shared.accounting.lock().generation_time_s += cost.time_s;
                let GeneratedMedia::Text { text } = media else {
                    unreachable!("a Txt item generates text")
                };
                gencontent::replace_with_text(&mut doc, item.node, &text);
            }
        }
    }
    Ok(serialize(&doc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_site() -> SiteContent {
        let mut site = SiteContent::new();
        let html = format!(
            "<html><body><h1>Hike</h1>{}{}<img src=\"/photos/me.jpg\"></body></html>",
            gencontent::image_div("a mountain trail at dawn", "trail.jpg", 128, 128),
            gencontent::text_div(&["trail steep rocky".into()], 80),
        );
        site.add_page("/hike", html);
        site.add_asset("/photos/me.jpg", Bytes::from_static(b"unique-photo-bytes"));
        site
    }

    fn demo_server() -> GenerativeServer {
        GenerativeServer::builder().site(demo_site()).build()
    }

    #[test]
    fn stored_bytes_counts_prompt_form() {
        let site = demo_site();
        let stored = site.stored_bytes();
        assert!(stored > 100);
        assert_eq!(site.page_count(), 1);
    }

    #[test]
    fn stored_bytes_cache_tracks_mutation_and_replacement() {
        let mut site = SiteContent::new();
        site.add_page("/a", "x".repeat(100));
        site.add_asset("/b", Bytes::from(vec![0u8; 50]));
        assert_eq!(site.stored_bytes(), 150);
        // Replacing a page swaps its contribution, not adds to it.
        site.add_page("/a", "y".repeat(30));
        assert_eq!(site.stored_bytes(), 80);
        site.add_asset("/b", Bytes::from(vec![1u8; 10]));
        assert_eq!(site.stored_bytes(), 40);
    }

    #[test]
    fn traditional_exceeds_prompt_form_and_is_memoized() {
        let server = demo_server();
        let stored = server.stored_bytes();
        let traditional = server.traditional_bytes();
        assert!(
            traditional > stored,
            "traditional {traditional} must exceed prompt-form {stored}"
        );
        // Second call must come from the memo and agree exactly.
        assert_eq!(server.traditional_bytes(), traditional);
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let server = GenerativeServer::builder()
            .site(demo_site())
            .ability(GenAbility::full())
            .policy(ServerPolicy::default())
            .workers(2)
            .queue_capacity(8)
            .cache_shards(4)
            .cache_pixels(1_000_000)
            .build();
        assert_eq!(server.worker_count(), Some(2));
        assert_eq!(server.engine().cache().shard_count(), 4);
        // Default build: no pool.
        assert_eq!(demo_server().worker_count(), None);
    }

    #[test]
    fn session_carries_negotiated_ability() {
        let server = demo_server();
        let session = server.accept(GenAbility::full());
        assert!(session.negotiated_ability().can_generate());
        assert_eq!(session.serve_mode(), ServeMode::Generative);
        let resp = session.handle(&Request::get("/hike"));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.headers.get("x-sww-mode"), Some("generative"));

        let naive = server.accept(GenAbility::none());
        assert!(!naive.negotiated_ability().can_generate());
        assert_eq!(naive.serve_mode(), ServeMode::ServerGenerated);
        let resp = naive.handle(&Request::get("/hike"));
        assert_eq!(resp.headers.get("x-sww-mode"), Some("server-generated"));
    }

    #[test]
    fn pooled_session_answers_identically_to_inline() {
        let inline = demo_server();
        let pooled = GenerativeServer::builder()
            .site(demo_site())
            .workers(2)
            .build();
        for (server, label) in [(&inline, "inline"), (&pooled, "pooled")] {
            let resp = server
                .accept(GenAbility::none())
                .handle(&Request::get("/hike"));
            assert_eq!(resp.status, 200, "{label}");
            assert!(
                String::from_utf8_lossy(&resp.body).contains("/generated/trail.jpg"),
                "{label}"
            );
        }
        // Same site, same recipes: identical materialized bodies.
        let a = inline
            .accept(GenAbility::none())
            .handle(&Request::get("/hike"));
        let b = pooled
            .accept(GenAbility::none())
            .handle(&Request::get("/hike"));
        assert_eq!(a.body, b.body);
    }

    #[test]
    fn batched_server_materializes_identically_to_inline() {
        let inline = demo_server();
        let batched = GenerativeServer::builder()
            .site(demo_site())
            .workers(2)
            .batch_max(4)
            .batch_wait(Duration::from_millis(5))
            .build();
        assert!(batched.batcher().is_some());
        let a = inline
            .accept(GenAbility::none())
            .handle(&Request::get("/hike"));
        let b = batched
            .accept(GenAbility::none())
            .handle(&Request::get("/hike"));
        assert_eq!(a.status, 200);
        assert_eq!(a.body, b.body, "batched page must be byte-identical");
        let stats = batched.batch_stats().expect("batching enabled");
        assert_eq!(stats.jobs, 1, "one image item went through the batcher");
        assert!(demo_server().batch_stats().is_none(), "disabled by default");
    }

    #[test]
    fn repeated_naive_requests_generate_images_once() {
        let server = demo_server();
        let session = server.accept(GenAbility::none());
        for _ in 0..3 {
            let resp = session.handle(&Request::get("/hike"));
            assert_eq!(resp.status, 200);
        }
        // One image item on the page: generated once, then cache hits.
        assert_eq!(server.engine().generations(), 1);
        assert_eq!(server.engine().cache_hits(), 2);
    }

    #[test]
    fn error_mapping_is_single_sourced() {
        // Every `SwwError` variant and its documented status code (the
        // DESIGN.md "Failure model" table). A new variant must be added
        // here or this list stops being exhaustive.
        let cases = [
            (SwwError::NotFound { path: "/x".into() }, 404),
            (
                SwwError::MethodNotAllowed {
                    method: "POST".into(),
                },
                405,
            ),
            (
                SwwError::Internal {
                    reason: "boom".into(),
                },
                500,
            ),
            (
                SwwError::Generation {
                    reason: "injected fault".into(),
                },
                500,
            ),
            (
                SwwError::UnsupportedModel {
                    what: "image generation",
                    model: "Dalle3".into(),
                },
                501,
            ),
            (
                SwwError::UpstreamStatus {
                    path: "/p".into(),
                    status: 404,
                    retry_after_s: None,
                },
                502,
            ),
            (SwwError::IntegrityFailure { path: "/p".into() }, 502),
            (SwwError::Transport(H2Error::protocol("boom")), 502),
            (SwwError::Saturated { retry_after_s: 3 }, 503),
            (
                SwwError::Negotiation {
                    reason: "no shared models".into(),
                },
                503,
            ),
            (SwwError::DeadlineExceeded { budget_ms: 250 }, 504),
        ];
        for (err, status) in cases {
            let resp = error_response(&err);
            assert_eq!(resp.status, status, "{err}");
            assert!(resp.headers.get("x-sww-error").is_some());
        }
        let resp = error_response(&SwwError::Saturated { retry_after_s: 3 });
        assert_eq!(resp.headers.get("retry-after"), Some("3"));
    }

    #[test]
    fn deadline_header_expiry_maps_to_504() {
        let server = demo_server();
        let session = server.accept(GenAbility::none());
        // A 0 ms budget is expired on arrival: the request must come
        // back 504 without generating anything.
        let mut req = Request::get("/hike");
        req.headers.insert("x-sww-deadline-ms", "0");
        let resp = session.handle(&req);
        assert_eq!(resp.status, 504);
        // A 0 ms budget reports as a cancellation (budget_ms 0 is the
        // explicit-cancel sentinel); either way the header is present.
        assert!(resp.headers.get("x-sww-error").is_some());
        assert_eq!(server.engine().generations(), 0, "no wasted work");
        // The same request without the header succeeds.
        let resp = session.handle(&Request::get("/hike"));
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn builder_default_deadline_applies_without_header() {
        let server = GenerativeServer::builder()
            .site(demo_site())
            .default_deadline(Duration::ZERO)
            .build();
        let resp = server
            .accept(GenAbility::none())
            .handle(&Request::get("/hike"));
        assert_eq!(resp.status, 504);
    }

    #[test]
    fn tight_deadline_sheds_at_admission_when_pool_is_busy() {
        // Cold-start EWMA prior is 1 s/job; with the single worker held
        // busy, predicted wait for a newcomer is ≥ 1 s — far beyond a
        // 50 ms budget, so admission sheds 503 before queueing.
        let server = GenerativeServer::builder()
            .site(demo_site())
            .workers(1)
            .build();
        let pool = server.shared.pool.as_ref().unwrap();
        let gate = Arc::new(std::sync::Barrier::new(2));
        let enter = Arc::clone(&gate);
        let release = Arc::clone(&gate);
        let occupied = pool.try_execute(Box::new(move || {
            enter.wait(); // worker is now provably busy
            release.wait();
        }));
        assert!(occupied.is_ok());
        gate.wait();
        let mut req = Request::get("/hike");
        req.headers.insert("x-sww-deadline-ms", "50");
        let resp = server.accept(GenAbility::none()).handle(&req);
        gate.wait();
        assert_eq!(resp.status, 503, "shed, not queued toward a 504");
        assert!(resp.headers.get("retry-after").is_some());
    }

    #[test]
    fn open_breaker_sheds_requests_before_the_engine() {
        use crate::breaker::BreakerState;
        use sww_genai::ImageModelKind;
        // Failpoint-driven trip/recover lives in tests/lifecycle.rs
        // (global failpoints would leak into parallel unit tests); here
        // the breaker is tripped directly to prove the server wiring.
        let server = GenerativeServer::builder()
            .site(demo_site())
            .breaker(BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_secs(60),
            })
            .build();
        let breaker = server.breaker().expect("enabled at build time");
        // demo_site generates with the default generator model; read it
        // off the same thread-local path materialize uses.
        let model = with_generator(|g| g.image_model());
        breaker.record_failure(model);
        breaker.record_failure(model);
        assert_eq!(breaker.state(model), BreakerState::Open);
        let resp = server
            .accept(GenAbility::none())
            .handle(&Request::get("/hike"));
        assert_eq!(resp.status, 503);
        assert!(resp.headers.get("retry-after").is_some());
        assert_eq!(
            server.engine().generations(),
            0,
            "open breaker must shed before the engine generates"
        );
        // Other models are unaffected.
        let other = if model == ImageModelKind::Sd21Base {
            ImageModelKind::Sd3Medium
        } else {
            ImageModelKind::Sd21Base
        };
        assert_eq!(breaker.state(other), BreakerState::Closed);
        // A server without a breaker never sheds this way.
        let plain = demo_server();
        assert!(plain.breaker().is_none());
        assert_eq!(
            plain
                .accept(GenAbility::none())
                .handle(&Request::get("/hike"))
                .status,
            200
        );
    }

    #[test]
    fn drain_sheds_new_requests_but_metrics_stay_readable() {
        let server = demo_server();
        let report = server.drain();
        assert_eq!(report.inflight_at_start, 0);
        assert!(server.is_draining());
        let session = server.accept(GenAbility::full());
        assert_eq!(session.handle(&Request::get("/hike")).status, 503);
        assert_eq!(session.handle(&Request::get("/metrics")).status, 200);
        // Idempotent.
        let report = server.drain();
        assert_eq!(report.inflight_at_start, 0);
    }

    #[test]
    fn drain_waits_for_inflight_requests() {
        let server = GenerativeServer::builder()
            .site(demo_site())
            .workers(2)
            .build();
        let session = server.accept(GenAbility::none());
        let started = Arc::new(std::sync::Barrier::new(2));
        let s = Arc::clone(&started);
        let handle = std::thread::spawn(move || {
            s.wait();
            // Admitted before drain flips: must get a real response.
            session.handle(&Request::get("/hike"))
        });
        started.wait();
        // Give the request a moment to pass admission before draining.
        while server.shared.inflight.load(Ordering::SeqCst) == 0 {
            std::hint::spin_loop();
        }
        let report = server.drain();
        let resp = handle.join().unwrap();
        assert_eq!(resp.status, 200, "in-flight response must not be lost");
        assert!(report.inflight_at_start >= 1);
    }

    #[test]
    fn from_config_and_builder_agree() {
        let a = GenerativeServer::from_config(ServerConfig {
            site: demo_site(),
            workers: 2,
            cache_shards: 4,
            ..ServerConfig::default()
        });
        let b = GenerativeServer::builder()
            .site(demo_site())
            .workers(2)
            .cache_shards(4)
            .build();
        assert_eq!(a.worker_count(), b.worker_count());
        assert_eq!(
            a.engine().cache().shard_count(),
            b.engine().cache().shard_count()
        );
        let ra = a.accept(GenAbility::none()).handle(&Request::get("/hike"));
        let rb = b.accept(GenAbility::none()).handle(&Request::get("/hike"));
        assert_eq!(ra.status, 200);
        assert_eq!(ra.body, rb.body, "one construction path, one behaviour");
    }

    #[tokio::test]
    async fn serves_prompt_form_over_h3() {
        let server = demo_server();
        let (a, b) = tokio::io::duplex(1 << 20);
        let srv = server.clone();
        tokio::spawn(async move {
            let _ = srv.serve_h3_stream(b).await;
        });
        let mut client = sww_http3::H3ClientConnection::handshake(a, GenAbility::full())
            .await
            .unwrap();
        assert!(client.negotiated_ability().can_generate());
        let resp = client.send_request(&Request::get("/hike")).await.unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.headers.get("x-sww-mode"), Some("generative"));
        let body = String::from_utf8(resp.body.to_vec()).unwrap();
        assert!(body.contains("generated-content"), "prompt form expected");
        assert_eq!(server.served_modes()["generative"], 1);
    }

    #[tokio::test]
    async fn h3_materializes_for_naive_client_via_same_core() {
        let server = demo_server();
        let (a, b) = tokio::io::duplex(1 << 20);
        let srv = server.clone();
        tokio::spawn(async move {
            let _ = srv.serve_h3_stream(b).await;
        });
        let mut client = sww_http3::H3ClientConnection::handshake(a, GenAbility::none())
            .await
            .unwrap();
        let resp = client.send_request(&Request::get("/hike")).await.unwrap();
        assert_eq!(resp.headers.get("x-sww-mode"), Some("server-generated"));
        let body = String::from_utf8(resp.body.to_vec()).unwrap();
        assert!(body.contains("/generated/trail.jpg"));
        // Errors flow through the same single choke point.
        let missing = client
            .send_request(&Request::get("/missing"))
            .await
            .unwrap();
        assert_eq!(missing.status, 404);
        assert!(missing.headers.get("x-sww-error").is_some());
    }

    #[tokio::test]
    async fn serves_prompt_form_to_capable_client() {
        let server = demo_server();
        let (a, b) = tokio::io::duplex(1 << 20);
        let srv = server.clone();
        tokio::spawn(async move {
            let _ = srv.serve_stream(b).await;
        });
        let mut client = sww_http2::ClientConnection::handshake(a, GenAbility::full())
            .await
            .unwrap();
        let resp = client.send_request(&Request::get("/hike")).await.unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.headers.get("x-sww-mode"), Some("generative"));
        let body = String::from_utf8(resp.body.to_vec()).unwrap();
        assert!(body.contains("generated-content"), "prompt form expected");
        assert_eq!(server.served_modes()["generative"], 1);
    }

    #[tokio::test]
    async fn materializes_for_naive_client() {
        let server = demo_server();
        let (a, b) = tokio::io::duplex(1 << 20);
        let srv = server.clone();
        tokio::spawn(async move {
            let _ = srv.serve_stream(b).await;
        });
        let mut client = sww_http2::ClientConnection::handshake(a, GenAbility::none())
            .await
            .unwrap();
        let resp = client.send_request(&Request::get("/hike")).await.unwrap();
        assert_eq!(resp.headers.get("x-sww-mode"), Some("server-generated"));
        let body = String::from_utf8(resp.body.to_vec()).unwrap();
        assert!(!body.contains("generated-content"));
        assert!(body.contains("/generated/trail.jpg"));
        // The generated asset is servable.
        let img = client
            .send_request(&Request::get("/generated/trail.jpg"))
            .await
            .unwrap();
        assert_eq!(img.status, 200);
        assert!(sww_genai::codec::decode(&img.body).is_ok());
        // Server spent modelled generation time.
        assert!(server.server_generation_time_s() > 0.0);
    }

    #[tokio::test]
    async fn unknown_path_is_404_and_post_is_405() {
        let server = demo_server();
        let (a, b) = tokio::io::duplex(1 << 20);
        let srv = server.clone();
        tokio::spawn(async move {
            let _ = srv.serve_stream(b).await;
        });
        let mut client = sww_http2::ClientConnection::handshake(a, GenAbility::full())
            .await
            .unwrap();
        let resp = client
            .send_request(&Request::get("/missing"))
            .await
            .unwrap();
        assert_eq!(resp.status, 404);
        let mut post = Request::get("/hike");
        post.method = "POST".into();
        let resp = client.send_request(&post).await.unwrap();
        assert_eq!(resp.status, 405);
    }

    #[tokio::test]
    async fn unique_assets_served_as_is() {
        let server = demo_server();
        let (a, b) = tokio::io::duplex(1 << 20);
        let srv = server.clone();
        tokio::spawn(async move {
            let _ = srv.serve_stream(b).await;
        });
        let mut client = sww_http2::ClientConnection::handshake(a, GenAbility::full())
            .await
            .unwrap();
        let resp = client
            .send_request(&Request::get("/photos/me.jpg"))
            .await
            .unwrap();
        assert_eq!(&resp.body[..], b"unique-photo-bytes");
    }
}
