//! Personalized content generation (paper §2.3).
//!
//! Generating on the user's device creates the opportunity to condition
//! content on the user's background, preferences and hobbies. The paper
//! flags this as both attractive and potentially harmful (echo chambers,
//! amplified online harms), so personalization here is **opt-in**, bounded
//! by an explicit interest list, and auditable: the effective prompt is
//! returned alongside the media so a user agent can display why content
//! looks the way it does.

use sww_genai::fnv1a;

/// A user profile the client holds locally (never sent to the server —
//  personalization happens after delivery, on-device).
#[derive(Debug, Clone, Default)]
pub struct UserProfile {
    /// Free-form interests ("hiking", "photography", …).
    pub interests: Vec<String>,
    /// Preferred visual style keywords ("watercolor", "minimalist", …).
    pub style: Vec<String>,
    /// Master switch; off means prompts pass through untouched.
    pub enabled: bool,
}

impl UserProfile {
    /// A profile with the given interests, enabled.
    pub fn with_interests<I: IntoIterator<Item = S>, S: Into<String>>(interests: I) -> UserProfile {
        UserProfile {
            interests: interests.into_iter().map(Into::into).collect(),
            style: Vec::new(),
            enabled: true,
        }
    }

    /// Deterministic seed component so two users see stably different
    /// variants of the same page.
    pub fn seed(&self) -> u64 {
        fnv1a(format!("{}|{}", self.interests.join(","), self.style.join(",")).as_bytes())
    }
}

/// The result of personalizing one prompt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersonalizedPrompt {
    /// The prompt actually used for generation.
    pub prompt: String,
    /// Whether personalization changed anything (false when disabled or
    /// nothing relevant matched).
    pub modified: bool,
}

/// Personalize a prompt: append at most `max_terms` profile terms that do
/// not already appear. The base prompt always remains a prefix, keeping
/// the server-declared semantics primary and the adjustment auditable.
pub fn personalize(prompt: &str, profile: &UserProfile, max_terms: usize) -> PersonalizedPrompt {
    if !profile.enabled || max_terms == 0 {
        return PersonalizedPrompt {
            prompt: prompt.to_owned(),
            modified: false,
        };
    }
    let lower = prompt.to_lowercase();
    let additions: Vec<&str> = profile
        .interests
        .iter()
        .chain(profile.style.iter())
        .map(String::as_str)
        .filter(|term| !term.is_empty() && !lower.contains(&term.to_lowercase()))
        .take(max_terms)
        .collect();
    if additions.is_empty() {
        return PersonalizedPrompt {
            prompt: prompt.to_owned(),
            modified: false,
        };
    }
    PersonalizedPrompt {
        prompt: format!(
            "{prompt}, in a style appealing to someone who enjoys {}",
            additions.join(" and ")
        ),
        modified: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sww_genai::diffusion::{DiffusionModel, ImageModelKind};

    #[test]
    fn disabled_profile_is_identity() {
        let p = UserProfile {
            interests: vec!["hiking".into()],
            style: vec![],
            enabled: false,
        };
        let out = personalize("a mountain trail", &p, 3);
        assert_eq!(out.prompt, "a mountain trail");
        assert!(!out.modified);
    }

    #[test]
    fn interests_appended_and_auditable() {
        let p = UserProfile::with_interests(["hiking", "photography"]);
        let out = personalize("a mountain trail", &p, 3);
        assert!(out.modified);
        assert!(out.prompt.starts_with("a mountain trail"));
        assert!(out.prompt.contains("hiking"));
        assert!(out.prompt.contains("photography"));
    }

    #[test]
    fn already_present_terms_not_duplicated() {
        let p = UserProfile::with_interests(["hiking"]);
        let out = personalize("a hiking trail up the mountain", &p, 3);
        assert!(!out.modified);
    }

    #[test]
    fn max_terms_respected() {
        let p = UserProfile::with_interests(["a1", "b2", "c3", "d4"]);
        let out = personalize("base", &p, 2);
        assert!(out.prompt.contains("a1") && out.prompt.contains("b2"));
        assert!(!out.prompt.contains("c3"));
    }

    #[test]
    fn different_users_get_different_media() {
        let alice = UserProfile::with_interests(["sailing"]);
        let bob = UserProfile::with_interests(["astronomy"]);
        let m = DiffusionModel::new(ImageModelKind::Sd3Medium);
        let base = "a calm evening scene";
        let img_a = m.generate(&personalize(base, &alice, 2).prompt, 64, 64, 10);
        let img_b = m.generate(&personalize(base, &bob, 2).prompt, 64, 64, 10);
        assert_ne!(img_a, img_b);
        assert_ne!(alice.seed(), bob.seed());
    }

    #[test]
    fn same_user_is_stable() {
        let p = UserProfile::with_interests(["gardening"]);
        assert_eq!(personalize("x", &p, 2), personalize("x", &p, 2));
        assert_eq!(p.seed(), p.seed());
    }
}
