//! SWIM-style seeded gossip failure detection under a virtual clock.
//!
//! The edge tier (PR 8) marked nodes dead with a static flag the chaos
//! harness flipped by hand; nothing in the cluster *detected* anything.
//! This module is the detector: a deterministic implementation of the
//! SWIM protocol family — periodic ping / ping-req probe rounds, an
//! alive → suspect → dead state machine per member view, and
//! incarnation numbers so a falsely accused (or restarted) member can
//! refute stale suspicion.
//!
//! # Virtual clock
//!
//! Real SWIM runs on timers; timers make chaos runs unreproducible.
//! Here the protocol advances only when [`Gossip::tick`] is called:
//! one tick is one protocol round, and every probe-target choice is a
//! pure function of `(seed, round, member index)`. Two instances built
//! from the same configuration and driven through the same sequence of
//! `tick` / [`set_process_alive`] / [`set_partition`] calls produce
//! bit-identical membership views — that is what lets the E21 chaos
//! scenarios replay and what `proptest_gossip` proves. Wall-clock
//! deployments (``sww serve --cluster N``) simply call `tick` from a
//! timer at `interval_ms`; the protocol itself never reads a clock.
//!
//! # State machine
//!
//! ```text
//!            probe fails (direct + k indirect)
//!   Alive ────────────────────────────────────▶ Suspect
//!     ▲                                           │
//!     │ ack (same or newer incarnation),          │ suspect_rounds
//!     │ or refutation at incarnation+1            ▼ ticks elapse
//!     └─────────────────────────────────────── Dead
//!              rejoin: Alive@(incarnation+1) overrides Dead@i
//! ```
//!
//! Views merge by `(incarnation, rank)`: a higher incarnation always
//! wins, and at equal incarnation `Dead > Suspect > Alive`. A live
//! member that sees itself suspected at its own incarnation increments
//! its incarnation and re-announces — SWIM's refutation — which is also
//! how a revived node re-enters a view that had declared it dead.
//!
//! # Fault injection
//!
//! Two knobs make the detector testable under churn:
//!
//! * [`set_partition`] splits the membership into groups and drops
//!   every cross-group message deterministically — the E21
//!   partition-heal scenario;
//! * the [`FaultSite::GossipSend`](crate::faults::FaultSite) failpoint
//!   (`gossip.send=error:<p>` in a `--chaos` spec) drops individual
//!   messages from the seeded chaos stream.
//!
//! Observability: the `sww_gossip_*` family (OBSERVABILITY.md) counts
//! rounds, probe outcomes, drops, state transitions and refutations.
//!
//! [`set_process_alive`]: Gossip::set_process_alive
//! [`set_partition`]: Gossip::set_partition

use crate::faults::{self, FaultAction, FaultSite};
use std::collections::BTreeMap;

/// One member's health, as recorded in some observer's view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Health {
    /// Probes succeed (or no failure has been disseminated yet).
    Alive,
    /// A probe round failed; the member has `suspect_rounds` ticks to
    /// refute before it is declared dead.
    Suspect,
    /// The suspicion timed out (or a peer disseminated the death).
    Dead,
}

impl Health {
    /// Stable label for metrics and tables.
    pub fn label(self) -> &'static str {
        match self {
            Health::Alive => "alive",
            Health::Suspect => "suspect",
            Health::Dead => "dead",
        }
    }

    /// Merge precedence at equal incarnation: `Dead > Suspect > Alive`.
    fn rank(self) -> u8 {
        match self {
            Health::Alive => 0,
            Health::Suspect => 1,
            Health::Dead => 2,
        }
    }
}

/// Protocol knobs. Everything is in virtual units: `interval_ms` only
/// maps rounds onto wall time for deployments and display.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipConfig {
    /// Virtual milliseconds per protocol round (and the wall-clock tick
    /// period in `serve --cluster` deployments).
    pub interval_ms: u64,
    /// Rounds a member stays suspect before the observer declares it
    /// dead.
    pub suspect_rounds: u64,
    /// Indirect probes (ping-req proxies) tried after a failed direct
    /// ping.
    pub ping_req_fanout: usize,
    /// Seed for the probe-target schedule.
    pub seed: u64,
}

impl Default for GossipConfig {
    fn default() -> GossipConfig {
        GossipConfig {
            interval_ms: 200,
            suspect_rounds: 3,
            ping_req_fanout: 2,
            seed: 0x5757_6700,
        }
    }
}

/// One entry in an observer's membership view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberView {
    /// The incarnation this knowledge is about.
    pub incarnation: u64,
    /// The health at that incarnation.
    pub health: Health,
    /// The round this entry last changed (drives the suspect timeout).
    pub since: u64,
}

impl MemberView {
    /// Whether `candidate` is strictly newer knowledge than `self`
    /// under the SWIM merge order.
    fn superseded_by(&self, candidate: MemberView) -> bool {
        candidate.incarnation > self.incarnation
            || (candidate.incarnation == self.incarnation
                && candidate.health.rank() > self.health.rank())
    }
}

/// The deterministic SWIM cluster: per-member views, incarnations, and
/// the virtual-clock protocol driver.
#[derive(Debug, Clone)]
pub struct Gossip {
    cfg: GossipConfig,
    round: u64,
    /// Members in join order (the probe schedule indexes this).
    members: Vec<String>,
    /// Ground truth the probes observe: can the process answer at all?
    process_alive: BTreeMap<String, bool>,
    /// Each member's own current incarnation.
    incarnation: BTreeMap<String, u64>,
    /// observer id → (member id → what the observer believes).
    views: BTreeMap<String, BTreeMap<String, MemberView>>,
    /// When set, messages between different groups are dropped.
    partition: Option<BTreeMap<String, usize>>,
}

impl Gossip {
    /// A cluster where every member starts alive at incarnation 0 and
    /// every view agrees.
    pub fn new<I, S>(cfg: GossipConfig, members: I) -> Gossip
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut gossip = Gossip {
            cfg,
            round: 0,
            members: Vec::new(),
            process_alive: BTreeMap::new(),
            incarnation: BTreeMap::new(),
            views: BTreeMap::new(),
            partition: None,
        };
        for member in members {
            gossip.add_member(&member.into());
        }
        gossip
    }

    /// The protocol configuration.
    pub fn config(&self) -> GossipConfig {
        self.cfg
    }

    /// Completed protocol rounds.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The virtual clock: `round × interval_ms`.
    pub fn virtual_ms(&self) -> u64 {
        self.round * self.cfg.interval_ms
    }

    /// Member ids in join order.
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// Join: the newcomer is announced to every view at incarnation 0
    /// (SWIM's join broadcast, collapsed to its deterministic effect).
    pub fn add_member(&mut self, id: &str) -> bool {
        if self.members.iter().any(|m| m == id) {
            return false;
        }
        self.members.push(id.to_owned());
        self.process_alive.insert(id.to_owned(), true);
        self.incarnation.insert(id.to_owned(), 0);
        let announced = MemberView {
            incarnation: 0,
            health: Health::Alive,
            since: self.round,
        };
        for view in self.views.values_mut() {
            view.insert(id.to_owned(), announced);
        }
        let mut own: BTreeMap<String, MemberView> = self
            .members
            .iter()
            .map(|m| (m.clone(), announced))
            .collect();
        for (m, view) in &mut own {
            view.incarnation = self.incarnation[m];
        }
        self.views.insert(id.to_owned(), own);
        true
    }

    /// Graceful leave: the member is removed from every view (the edge
    /// tier pairs this with unpublishing from the hash ring).
    pub fn remove_member(&mut self, id: &str) -> bool {
        let Some(pos) = self.members.iter().position(|m| m == id) else {
            return false;
        };
        self.members.remove(pos);
        self.process_alive.remove(id);
        self.incarnation.remove(id);
        self.views.remove(id);
        for view in self.views.values_mut() {
            view.remove(id);
        }
        true
    }

    /// Ground-truth process liveness (the chaos kill/revive lever).
    /// Revival bumps the member's incarnation — a restarted process
    /// re-announces itself newer than any stale `Dead` entry, which is
    /// what lets it rejoin views that already declared it dead.
    pub fn set_process_alive(&mut self, id: &str, alive: bool) -> bool {
        let Some(slot) = self.process_alive.get_mut(id) else {
            return false;
        };
        let was = *slot;
        *slot = alive;
        if alive && !was {
            let inc = self
                .incarnation
                .get_mut(id)
                .expect("member has incarnation");
            *inc += 1;
            let announced = MemberView {
                incarnation: *inc,
                health: Health::Alive,
                since: self.round,
            };
            self.views
                .get_mut(id)
                .expect("member has a view")
                .insert(id.to_owned(), announced);
            sww_obs::counter("sww_gossip_refutations_total", &[("node", id)]).inc();
        }
        true
    }

    /// Whether the process behind `id` currently answers probes.
    pub fn process_alive(&self, id: &str) -> bool {
        self.process_alive.get(id).copied().unwrap_or(false)
    }

    /// Partition the membership into groups; every message between
    /// different groups is dropped until [`heal_partition`] is called.
    /// Members absent from every group land in an implicit extra group.
    ///
    /// [`heal_partition`]: Gossip::heal_partition
    pub fn set_partition(&mut self, groups: &[Vec<String>]) {
        let mut map = BTreeMap::new();
        for (g, group) in groups.iter().enumerate() {
            for id in group {
                map.insert(id.clone(), g);
            }
        }
        for id in &self.members {
            map.entry(id.clone()).or_insert(groups.len());
        }
        self.partition = Some(map);
    }

    /// Remove the partition: all links deliver again.
    pub fn heal_partition(&mut self) {
        self.partition = None;
    }

    /// An observer's belief about a member. The observer's entry for
    /// itself is kept in the view too (that is where refutation fires).
    pub fn health(&self, observer: &str, member: &str) -> Option<Health> {
        Some(self.views.get(observer)?.get(member)?.health)
    }

    /// Routing predicate: should `observer` send traffic to `member`?
    /// Only `Alive` members are usable; an unknown pair is not.
    pub fn usable(&self, observer: &str, member: &str) -> bool {
        observer == member || self.health(observer, member) == Some(Health::Alive)
    }

    /// The full view of one observer (tests and tables).
    pub fn view(&self, observer: &str) -> Option<&BTreeMap<String, MemberView>> {
        self.views.get(observer)
    }

    /// The cluster-wide consensus on one member: the newest knowledge
    /// held by any process-alive observer, under the SWIM merge order.
    pub fn consensus_health(&self, member: &str) -> Option<Health> {
        let mut best: Option<MemberView> = None;
        for observer in &self.members {
            if !self.process_alive(observer) {
                continue;
            }
            let Some(view) = self.views.get(observer).and_then(|v| v.get(member)) else {
                continue;
            };
            best = Some(match best {
                Some(b) if !b.superseded_by(*view) => b,
                _ => *view,
            });
        }
        best.map(|v| v.health)
    }

    /// Whether every process-alive observer holds the identical
    /// `(incarnation, health)` map — the E21 partition-heal gate.
    pub fn converged(&self) -> bool {
        let mut reference: Option<Vec<(&String, u64, Health)>> = None;
        for observer in &self.members {
            if !self.process_alive(observer) {
                continue;
            }
            let Some(view) = self.views.get(observer) else {
                return false;
            };
            let shape: Vec<(&String, u64, Health)> = view
                .iter()
                .map(|(m, v)| (m, v.incarnation, v.health))
                .collect();
            match &reference {
                None => reference = Some(shape),
                Some(r) if *r != shape => return false,
                Some(_) => {}
            }
        }
        true
    }

    /// A deterministic digest of the entire membership state — the
    /// replay witness `proptest_gossip` compares across runs.
    pub fn digest(&self) -> u64 {
        let mut acc = splitmix64(self.round ^ 0x006f_7373_6970_u64);
        for (observer, view) in &self.views {
            acc = fold(acc, observer.as_bytes());
            for (member, mv) in view {
                acc = fold(acc, member.as_bytes());
                acc = splitmix64(acc ^ mv.incarnation);
                acc = splitmix64(acc ^ u64::from(mv.health.rank()));
            }
        }
        for (id, alive) in &self.process_alive {
            acc = fold(acc, id.as_bytes());
            acc = splitmix64(acc ^ u64::from(*alive));
        }
        acc
    }

    /// One protocol round under the virtual clock: every process-alive
    /// member direct-pings one deterministic target, falls back to
    /// `ping_req_fanout` indirect probes, merges views with the target
    /// on ack (push-pull anti-entropy) or marks it suspect on timeout;
    /// then suspicion timers advance and refutations fire.
    pub fn tick(&mut self) {
        self.round += 1;
        sww_obs::counter("sww_gossip_rounds_total", &[]).inc();
        let order = self.members.clone();
        for (i, observer) in order.iter().enumerate() {
            if !self.process_alive(observer) {
                continue;
            }
            let others: Vec<&String> = order.iter().filter(|m| *m != observer).collect();
            if others.is_empty() {
                continue;
            }
            let pick = |salt: u64| -> String {
                let mixed = probe_mix(self.cfg.seed, self.round, i as u64, salt);
                others[(mixed % others.len() as u64) as usize].clone()
            };
            let target = pick(0);
            let mut acked = self.probe(observer, &target);
            sww_obs::counter(
                "sww_gossip_pings_total",
                &[("result", if acked { "ack" } else { "timeout" })],
            )
            .inc();
            if !acked {
                let mut salt = 1u64;
                let mut probes = 0usize;
                // Bounded deterministic proxy search: skip draws that
                // land on the target itself.
                while probes < self.cfg.ping_req_fanout
                    && (salt as usize) <= self.cfg.ping_req_fanout * 4
                {
                    let proxy = pick(salt);
                    salt += 1;
                    if proxy == target || proxy == *observer {
                        continue;
                    }
                    probes += 1;
                    let relayed = self.process_alive(&proxy)
                        && self.deliverable(observer, &proxy)
                        && self.deliverable(&proxy, observer)
                        && self.probe(&proxy, &target);
                    sww_obs::counter(
                        "sww_gossip_ping_reqs_total",
                        &[("result", if relayed { "ack" } else { "timeout" })],
                    )
                    .inc();
                    if relayed {
                        acked = true;
                        break;
                    }
                }
            }
            if acked {
                self.confirm_alive(observer, &target);
                self.exchange(observer, &target);
            } else {
                self.suspect(observer, &target);
            }
        }
        // Suspicion timers: suspect entries older than `suspect_rounds`
        // become dead in that observer's view.
        for observer in &order {
            if !self.process_alive(observer) {
                continue;
            }
            let view = self.views.get_mut(observer).expect("observer has a view");
            for (member, mv) in view.iter_mut() {
                if mv.health == Health::Suspect
                    && self.round.saturating_sub(mv.since) >= self.cfg.suspect_rounds
                {
                    mv.health = Health::Dead;
                    mv.since = self.round;
                    sww_obs::counter("sww_gossip_deaths_total", &[("node", member)]).inc();
                }
            }
        }
        // Refutation: a live member that sees itself accused at (or
        // beyond) its own incarnation goes one incarnation newer.
        for observer in &order {
            if !self.process_alive(observer) {
                continue;
            }
            let own = self.views[observer][observer];
            if own.health != Health::Alive {
                let inc = self
                    .incarnation
                    .get_mut(observer)
                    .expect("member has incarnation");
                *inc = own.incarnation + 1;
                let refuted = MemberView {
                    incarnation: *inc,
                    health: Health::Alive,
                    since: self.round,
                };
                self.views
                    .get_mut(observer)
                    .expect("observer has a view")
                    .insert(observer.clone(), refuted);
                sww_obs::counter("sww_gossip_refutations_total", &[("node", observer)]).inc();
            }
        }
    }

    /// A full round-trip probe: request out, ack back, target alive.
    fn probe(&self, from: &str, target: &str) -> bool {
        self.deliverable(from, target)
            && self.process_alive(target)
            && self.deliverable(target, from)
    }

    /// Whether one message from `from` to `to` is delivered: partitions
    /// drop cross-group traffic, and the `gossip.send` failpoint drops
    /// individual messages from the seeded chaos stream.
    fn deliverable(&self, from: &str, to: &str) -> bool {
        if let Some(groups) = &self.partition {
            if groups.get(from) != groups.get(to) {
                sww_obs::counter("sww_gossip_drops_total", &[("cause", "partition")]).inc();
                return false;
            }
        }
        if matches!(faults::at(FaultSite::GossipSend), Some(FaultAction::Error)) {
            sww_obs::counter("sww_gossip_drops_total", &[("cause", "chaos")]).inc();
            return false;
        }
        true
    }

    /// A probe acked: the observer learns the target is alive at the
    /// target's *current* incarnation (the ack carries it).
    fn confirm_alive(&mut self, observer: &str, target: &str) {
        let candidate = MemberView {
            incarnation: self.incarnation[target],
            health: Health::Alive,
            since: self.round,
        };
        self.admit(observer, target, candidate);
    }

    /// Push-pull anti-entropy: both parties end the exchange holding
    /// the newer of every entry.
    fn exchange(&mut self, a: &str, b: &str) {
        let entries_a: Vec<(String, MemberView)> =
            self.views[a].iter().map(|(m, v)| (m.clone(), *v)).collect();
        let entries_b: Vec<(String, MemberView)> =
            self.views[b].iter().map(|(m, v)| (m.clone(), *v)).collect();
        for (member, mv) in entries_b {
            self.admit(a, &member, mv);
        }
        for (member, mv) in entries_a {
            self.admit(b, &member, mv);
        }
    }

    /// Merge `candidate` knowledge about `member` into `observer`'s
    /// view, counting Alive→Suspect transitions.
    fn admit(&mut self, observer: &str, member: &str, candidate: MemberView) {
        let Some(view) = self.views.get_mut(observer) else {
            return;
        };
        let Some(current) = view.get_mut(member) else {
            return;
        };
        if current.superseded_by(candidate) {
            if current.health == Health::Alive && candidate.health == Health::Suspect {
                sww_obs::counter("sww_gossip_suspicions_total", &[("node", member)]).inc();
            }
            *current = MemberView {
                since: self.round,
                ..candidate
            };
        }
    }

    /// A probe round failed outright: mark the target suspect at the
    /// incarnation the observer knows (a fresher Alive refutes it).
    fn suspect(&mut self, observer: &str, target: &str) {
        let Some(current) = self.views.get(observer).and_then(|v| v.get(target)) else {
            return;
        };
        if current.health != Health::Alive {
            return;
        }
        let accused = MemberView {
            incarnation: current.incarnation,
            health: Health::Suspect,
            since: self.round,
        };
        self.admit(observer, target, accused);
    }
}

/// SplitMix64 — same mixer the fault registry uses: pure, stateless.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic probe-schedule draw from `(seed, round, member, salt)`.
fn probe_mix(seed: u64, round: u64, member: u64, salt: u64) -> u64 {
    splitmix64(splitmix64(seed ^ round.wrapping_mul(0xa076_1d64_78bd_642f)) ^ (member << 16) ^ salt)
}

/// Fold bytes into a digest accumulator.
fn fold(mut acc: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        acc = splitmix64(acc ^ u64::from(b));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> Gossip {
        Gossip::new(GossipConfig::default(), (0..n).map(|i| format!("n{i}")))
    }

    fn tick_n(g: &mut Gossip, n: usize) {
        for _ in 0..n {
            g.tick();
        }
    }

    #[test]
    fn fresh_cluster_is_converged_and_all_alive() {
        let g = cluster(3);
        assert!(g.converged());
        for a in g.members().to_vec() {
            for b in g.members().to_vec() {
                assert_eq!(g.health(&a, &b), Some(Health::Alive));
                assert!(g.usable(&a, &b));
            }
        }
        assert_eq!(g.consensus_health("n1"), Some(Health::Alive));
    }

    #[test]
    fn healthy_cluster_stays_converged_under_ticks() {
        let mut g = cluster(4);
        tick_n(&mut g, 20);
        assert!(g.converged());
        assert_eq!(g.round(), 20);
        assert_eq!(g.virtual_ms(), 20 * g.config().interval_ms);
    }

    #[test]
    fn killed_member_progresses_suspect_then_dead() {
        let mut g = cluster(3);
        g.set_process_alive("n0", false);
        let mut saw_suspect = false;
        for _ in 0..32 {
            g.tick();
            if g.health("n1", "n0") == Some(Health::Suspect) {
                saw_suspect = true;
            }
            if g.health("n1", "n0") == Some(Health::Dead)
                && g.health("n2", "n0") == Some(Health::Dead)
            {
                break;
            }
        }
        assert!(saw_suspect, "death must pass through suspicion first");
        assert_eq!(g.health("n1", "n0"), Some(Health::Dead));
        assert_eq!(g.consensus_health("n0"), Some(Health::Dead));
        assert!(!g.usable("n1", "n0"));
    }

    #[test]
    fn revived_member_rejoins_with_a_newer_incarnation() {
        let mut g = cluster(3);
        g.set_process_alive("n0", false);
        tick_n(&mut g, 16);
        assert_eq!(g.consensus_health("n0"), Some(Health::Dead));
        g.set_process_alive("n0", true);
        tick_n(&mut g, 16);
        assert_eq!(g.health("n1", "n0"), Some(Health::Alive), "rejoin");
        assert_eq!(g.health("n2", "n0"), Some(Health::Alive), "rejoin");
        let view = g.view("n1").unwrap();
        assert!(
            view["n0"].incarnation >= 1,
            "rejoin must carry a bumped incarnation"
        );
        assert!(g.converged());
    }

    #[test]
    fn partition_diverges_and_heals_to_convergence() {
        let mut g = cluster(3);
        g.set_partition(&[vec!["n0".into()], vec!["n1".into(), "n2".into()]]);
        tick_n(&mut g, 12);
        assert_eq!(g.health("n1", "n0"), Some(Health::Dead), "majority side");
        assert!(!g.converged(), "partitioned views must disagree");
        g.heal_partition();
        let mut healed_at = None;
        for extra in 1..=24 {
            g.tick();
            if g.converged() {
                healed_at = Some(extra);
                break;
            }
        }
        let healed_at = healed_at.expect("partition must heal within 24 rounds");
        assert!(healed_at <= 24);
        for m in ["n0", "n1", "n2"] {
            assert_eq!(g.consensus_health(m), Some(Health::Alive), "{m}");
        }
    }

    #[test]
    fn same_seed_replays_bit_for_bit() {
        let run = || {
            let mut g = cluster(4);
            let mut digests = Vec::new();
            g.set_process_alive("n2", false);
            tick_n(&mut g, 8);
            digests.push(g.digest());
            g.set_process_alive("n2", true);
            g.set_partition(&[vec!["n0".into(), "n1".into()]]);
            tick_n(&mut g, 8);
            digests.push(g.digest());
            g.heal_partition();
            tick_n(&mut g, 8);
            digests.push(g.digest());
            digests
        };
        assert_eq!(run(), run(), "virtual-clock runs must replay");
    }

    #[test]
    fn different_seeds_pick_different_probe_schedules() {
        // The per-round digest *trajectory* exposes the probe schedule:
        // which observers learn of n3's death first is seed-dependent,
        // even though every seed converges to the same final view.
        let trajectory = |seed: u64| {
            let mut g = Gossip::new(
                GossipConfig {
                    seed,
                    ..GossipConfig::default()
                },
                (0..5).map(|i| format!("n{i}")),
            );
            g.set_process_alive("n3", false);
            (0..6)
                .map(|_| {
                    g.tick();
                    g.digest()
                })
                .collect::<Vec<u64>>()
        };
        let (a, b) = (trajectory(1), trajectory(2));
        assert_ne!(a, b, "seeds 1 and 2 must schedule probes differently");
        assert_eq!(trajectory(1), a, "each seed still replays itself");
    }

    #[test]
    fn join_and_leave_update_every_view() {
        let mut g = cluster(2);
        assert!(g.add_member("n2"));
        assert!(!g.add_member("n2"), "double join is a no-op");
        assert_eq!(g.health("n0", "n2"), Some(Health::Alive));
        tick_n(&mut g, 4);
        assert!(g.converged());
        assert!(g.remove_member("n0"));
        assert!(!g.remove_member("n0"), "double leave is a no-op");
        assert!(g.health("n1", "n0").is_none());
        assert_eq!(g.members(), ["n1", "n2"]);
    }

    #[test]
    fn incarnations_never_decrease() {
        let mut g = cluster(3);
        let mut last: BTreeMap<String, u64> = BTreeMap::new();
        for step in 0..40 {
            if step % 10 == 3 {
                g.set_process_alive("n1", false);
            }
            if step % 10 == 7 {
                g.set_process_alive("n1", true);
            }
            g.tick();
            for m in g.members().to_vec() {
                for o in g.members().to_vec() {
                    let inc = g.view(&o).unwrap()[&m].incarnation;
                    let floor = last.entry(format!("{o}/{m}")).or_insert(0);
                    assert!(inc >= *floor, "incarnation went backward for {o}/{m}");
                    *floor = inc;
                }
            }
        }
    }
}
