//! The concurrent generation engine: a lock-striped generation cache
//! fronted by single-flight request coalescing.
//!
//! The paper's prototype generates once per request; the ROADMAP
//! north-star is a server under heavy concurrent traffic, where the
//! dominant cost — generation — must be paid **exactly once per unique
//! recipe** no matter how many requests race for it. Two mechanisms
//! deliver that:
//!
//! * [`ShardedGenerationCache`]: N independent [`GenerationCache`] shards,
//!   each behind its own mutex, selected by recipe hash. Readers of
//!   different recipes never contend on a global lock.
//! * Single flight (in [`GenerationEngine::fetch_image`]): the first
//!   request to miss for a recipe becomes the *leader* and runs the
//!   generation with no engine lock held; every concurrent request for
//!   the same recipe blocks on the leader's flight slot and shares its
//!   result. Requests for other recipes proceed in parallel.
//!
//! Observability: `sww_engine_requests_total{outcome}` splits requests
//! into `hit` / `generated` / `joined`; `sww_cache_coalesced_total`
//! counts every request amortized onto a generation it did not run
//! itself (cache hit or in-flight join — i.e. total requests minus
//! actual generations); `sww_cache_shard_events_total{shard,result}`
//! exposes the per-shard hit/miss split.

use crate::cache::{GenerationCache, Recipe};
use crate::error::SwwError;
use crate::faults::{self, FaultAction, FaultSite};
use crate::lifecycle::{record_cancelled, RequestCtx};
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Duration;
use sww_genai::{ImageBuffer, StepCancel};

/// How often a waiter re-polls its [`RequestCtx`] while blocked on a
/// flight. Bounds cancellation latency for waiters without a deadline.
const WAITER_TICK: Duration = Duration::from_millis(25);

/// A generation cache split into independently locked shards.
///
/// The pixel budget is divided evenly across shards, so total memory is
/// bounded exactly as with a single [`GenerationCache`] of the same
/// capacity; eviction is LRU *per shard*.
#[derive(Debug)]
pub struct ShardedGenerationCache {
    shards: Box<[Mutex<GenerationCache>]>,
}

impl ShardedGenerationCache {
    /// A cache of `shards` stripes sharing `capacity_pixels` total.
    /// `shards` is clamped to at least 1.
    pub fn new(shards: usize, capacity_pixels: u64) -> ShardedGenerationCache {
        let shards = shards.max(1);
        let per_shard = (capacity_pixels / shards as u64).max(1);
        ShardedGenerationCache {
            shards: (0..shards)
                .map(|_| Mutex::new(GenerationCache::new(per_shard)))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_index(&self, recipe: &Recipe) -> usize {
        let mut hasher = DefaultHasher::new();
        recipe.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    /// Look up a recipe in its shard, updating that shard's recency.
    pub fn get(&self, recipe: &Recipe) -> Option<ImageBuffer> {
        let idx = self.shard_index(recipe);
        let found = self.shards[idx].lock().get(recipe);
        let shard_label = idx.to_string();
        let result = if found.is_some() { "hit" } else { "miss" };
        sww_obs::counter(
            "sww_cache_shard_events_total",
            &[("shard", &shard_label), ("result", result)],
        )
        .inc();
        found
    }

    /// Insert a generated image into its shard (per-shard LRU eviction).
    pub fn put(&self, recipe: Recipe, image: ImageBuffer) {
        let idx = self.shard_index(&recipe);
        self.shards[idx].lock().put(recipe, image);
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Entry count per shard (for tests and load-balance inspection).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().len()).collect()
    }

    /// Aggregate (hits, misses) across all shards.
    pub fn hit_miss(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(h, m), s| {
            let s = s.lock();
            (h + s.hits, m + s.misses)
        })
    }
}

/// What happened to one [`GenerationEngine::fetch_image`] request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOutcome {
    /// Served from a cache shard; no waiting, no generation.
    Hit,
    /// This request was the leader and ran the generation.
    Generated,
    /// Joined an in-flight generation and shared the leader's result.
    Coalesced,
}

/// State of one in-flight generation.
#[derive(Debug)]
enum FlightState {
    /// The leader is still generating.
    Pending,
    /// The leader finished; the result is ready to share.
    Done(ImageBuffer),
    /// The leader panicked; waiters must retry from scratch.
    Poisoned,
}

#[derive(Debug)]
struct Flight {
    state: StdMutex<FlightState>,
    ready: Condvar,
    /// Waiter refcount: requests (other than the leader) currently
    /// blocked on this flight. A flight may only be abandoned when this
    /// is zero *and* the leader's own request is finished — so a
    /// cancelled leader with surviving waiters completes the generation
    /// for them instead of poisoning it.
    waiters: AtomicUsize,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            state: StdMutex::new(FlightState::Pending),
            ready: Condvar::new(),
            waiters: AtomicUsize::new(0),
        }
    }

    fn resolve(&self, state: FlightState) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = state;
        self.ready.notify_all();
    }

    /// True once no request — leader included — still wants this result.
    fn abandoned(&self, leader_ctx: &RequestCtx) -> bool {
        self.waiters.load(Ordering::SeqCst) == 0 && leader_ctx.finished()
    }
}

/// Unregisters a flight and poisons it if the leader unwinds before
/// publishing a result, so waiters never deadlock on a dead leader.
struct LeaderGuard<'a> {
    engine: &'a GenerationEngine,
    recipe: &'a Recipe,
    flight: &'a Arc<Flight>,
    armed: bool,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.flight.resolve(FlightState::Poisoned);
            self.engine
                .inflight
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(self.recipe);
        }
    }
}

/// The sharded, single-flight generation engine.
#[derive(Debug)]
pub struct GenerationEngine {
    cache: ShardedGenerationCache,
    inflight: StdMutex<HashMap<Recipe, Arc<Flight>>>,
    generated: AtomicU64,
    coalesced: AtomicU64,
    hits: AtomicU64,
}

impl GenerationEngine {
    /// An engine over `shards` cache stripes sharing `capacity_pixels`.
    pub fn new(shards: usize, capacity_pixels: u64) -> GenerationEngine {
        GenerationEngine {
            cache: ShardedGenerationCache::new(shards, capacity_pixels),
            inflight: StdMutex::new(HashMap::new()),
            generated: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// The underlying sharded cache.
    pub fn cache(&self) -> &ShardedGenerationCache {
        &self.cache
    }

    /// Generations actually executed (each unique recipe exactly once
    /// while its entry stays cached).
    pub fn generations(&self) -> u64 {
        self.generated.load(Ordering::Relaxed)
    }

    /// Requests amortized onto a generation they did not run themselves
    /// (shard-cache hits plus in-flight joins).
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Requests served straight from a cache shard.
    pub fn cache_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn record(&self, outcome: FetchOutcome) {
        let label = match outcome {
            FetchOutcome::Hit => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                "hit"
            }
            FetchOutcome::Generated => {
                self.generated.fetch_add(1, Ordering::Relaxed);
                "generated"
            }
            FetchOutcome::Coalesced => "joined",
        };
        if outcome != FetchOutcome::Generated {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            sww_obs::counter("sww_cache_coalesced_total", &[]).inc();
        }
        sww_obs::counter("sww_engine_requests_total", &[("outcome", label)]).inc();
    }

    /// Fetch the image for `recipe`, running `generate` only if no cached
    /// copy exists and no other request is already generating it.
    ///
    /// `generate` runs with **no engine lock held**, so generations for
    /// distinct recipes proceed fully in parallel. Concurrent requests
    /// for the same recipe block until the leader publishes, then share
    /// the result. Images larger than a shard's budget are not retained,
    /// in which case a later request will legitimately regenerate.
    ///
    /// This infallible entry point is **not** subject to fault injection;
    /// chaos-aware callers use [`try_fetch_image`].
    ///
    /// [`try_fetch_image`]: GenerationEngine::try_fetch_image
    pub fn fetch_image<F>(&self, recipe: &Recipe, generate: F) -> (ImageBuffer, FetchOutcome)
    where
        F: FnOnce() -> ImageBuffer,
    {
        self.fetch_inner(recipe, &RequestCtx::unbounded(), |_| Ok(generate()), false)
            .expect("infallible generate closure")
    }

    /// Fallible [`fetch_image`]: the generate closure may fail, and the
    /// `engine.generate` failpoint ([`crate::faults`]) is evaluated on
    /// the leader path. A failing leader **poisons** its flight: waiters
    /// observe the poisoned state and retry from scratch (one of them
    /// becomes the next leader), so a mid-generation fault strands no
    /// request and costs exactly one extra generation on recovery.
    ///
    /// [`fetch_image`]: GenerationEngine::fetch_image
    pub fn try_fetch_image<F>(
        &self,
        recipe: &Recipe,
        generate: F,
    ) -> Result<(ImageBuffer, FetchOutcome), SwwError>
    where
        F: FnOnce() -> Result<ImageBuffer, SwwError>,
    {
        self.fetch_inner(recipe, &RequestCtx::unbounded(), |_| generate(), true)
    }

    /// Lifecycle-aware [`try_fetch_image`]: the request's [`RequestCtx`]
    /// governs how long this call may block, and the generate closure
    /// receives a [`StepCancel`] probe to poll every denoise step.
    ///
    /// Deadline semantics per role:
    ///
    /// * **Waiter** — blocks at most until its own deadline; on expiry it
    ///   detaches from the flight (decrementing the waiter refcount) and
    ///   returns [`SwwError::DeadlineExceeded`]. The flight is untouched.
    /// * **Leader, flight still wanted** — a leader whose own ctx expires
    ///   while waiters remain *hands off*: it completes the generation on
    ///   its (already doomed) thread, publishes the result for the
    ///   survivors, and only then returns `DeadlineExceeded` for itself.
    ///   The flight is never poisoned by a deadline.
    /// * **Leader, flight abandoned** — once the waiter refcount is zero
    ///   *and* the leader's ctx is finished, the probe fires and the
    ///   denoise loop aborts within one step. The closure returns
    ///   `DeadlineExceeded`, the flight poisons and unregisters, and the
    ///   recipe is generated fresh by whoever asks next.
    ///
    /// [`try_fetch_image`]: GenerationEngine::try_fetch_image
    pub fn try_fetch_image_ctx<F>(
        &self,
        recipe: &Recipe,
        ctx: &RequestCtx,
        generate: F,
    ) -> Result<(ImageBuffer, FetchOutcome), SwwError>
    where
        F: FnOnce(&StepCancel) -> Result<ImageBuffer, SwwError>,
    {
        self.fetch_inner(recipe, ctx, generate, true)
    }

    fn fetch_inner<F>(
        &self,
        recipe: &Recipe,
        ctx: &RequestCtx,
        generate: F,
        inject: bool,
    ) -> Result<(ImageBuffer, FetchOutcome), SwwError>
    where
        F: FnOnce(&StepCancel) -> Result<ImageBuffer, SwwError>,
    {
        ctx.check()?;
        // Fast path: no map lock at all for warm recipes.
        if let Some(image) = self.cache.get(recipe) {
            self.record(FetchOutcome::Hit);
            return Ok((image, FetchOutcome::Hit));
        }
        let mut generate = Some(generate);
        loop {
            enum Role {
                Leader(Arc<Flight>),
                Waiter(Arc<Flight>),
            }
            let role = {
                let mut map = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(flight) = map.get(recipe) {
                    // Attach under the map lock, so the leader's
                    // abandonment probe can never miss a joining waiter.
                    flight.waiters.fetch_add(1, Ordering::SeqCst);
                    Role::Waiter(Arc::clone(flight))
                } else {
                    // Re-check under the map lock: a leader publishes to
                    // the cache *before* unregistering, so a miss here
                    // while no flight is registered is authoritative.
                    if let Some(image) = self.cache.get(recipe) {
                        self.record(FetchOutcome::Hit);
                        return Ok((image, FetchOutcome::Hit));
                    }
                    let flight = Arc::new(Flight::new());
                    map.insert(recipe.clone(), Arc::clone(&flight));
                    Role::Leader(flight)
                }
            };
            match role {
                Role::Leader(flight) => {
                    let mut guard = LeaderGuard {
                        engine: self,
                        recipe,
                        flight: &flight,
                        armed: true,
                    };
                    if inject {
                        match faults::at(FaultSite::EngineGenerate) {
                            Some(FaultAction::Error) | Some(FaultAction::TruncateKeepPct(_)) => {
                                // Dropping the armed guard poisons the
                                // flight and unregisters it: waiters retry.
                                drop(guard);
                                return Err(SwwError::Generation {
                                    reason: "injected fault at engine.generate".into(),
                                });
                            }
                            Some(FaultAction::Latency(d)) => std::thread::sleep(d),
                            None => {}
                        }
                    }
                    let cancel = {
                        let flight = Arc::clone(&flight);
                        let ctx = ctx.clone();
                        StepCancel::from_fn(move || flight.abandoned(&ctx))
                    };
                    let image = match (generate.take().expect("leader role claimed once"))(&cancel)
                    {
                        Ok(image) => image,
                        Err(err) => {
                            drop(guard);
                            return Err(err);
                        }
                    };
                    // Publish order matters: cache first, then resolve the
                    // flight, then unregister — so no request can miss both.
                    self.cache.put(recipe.clone(), image.clone());
                    flight.resolve(FlightState::Done(image.clone()));
                    self.inflight
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .remove(recipe);
                    guard.armed = false;
                    self.record(FetchOutcome::Generated);
                    if ctx.finished() {
                        // Hand-off: the generation completed (and was
                        // published for the surviving waiters) on a thread
                        // whose own request no longer wants it.
                        record_cancelled("engine.handoff");
                        return Err(ctx.deadline_error());
                    }
                    return Ok((image, FetchOutcome::Generated));
                }
                Role::Waiter(flight) => {
                    let mut state = flight.state.lock().unwrap_or_else(|e| e.into_inner());
                    loop {
                        match &*state {
                            FlightState::Pending => {
                                if ctx.finished() {
                                    drop(state);
                                    flight.waiters.fetch_sub(1, Ordering::SeqCst);
                                    record_cancelled("engine.wait");
                                    return Err(ctx.deadline_error());
                                }
                                let tick =
                                    ctx.remaining().map_or(WAITER_TICK, |r| r.min(WAITER_TICK));
                                state = flight
                                    .ready
                                    .wait_timeout(state, tick)
                                    .unwrap_or_else(|e| e.into_inner())
                                    .0;
                            }
                            FlightState::Done(image) => {
                                let image = image.clone();
                                drop(state);
                                flight.waiters.fetch_sub(1, Ordering::SeqCst);
                                self.record(FetchOutcome::Coalesced);
                                return Ok((image, FetchOutcome::Coalesced));
                            }
                            FlightState::Poisoned => break,
                        }
                    }
                    drop(state);
                    flight.waiters.fetch_sub(1, Ordering::SeqCst);
                    // Leader died; retry (this request may now lead).
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use sww_genai::diffusion::ImageModelKind;

    fn recipe(prompt: &str) -> Recipe {
        Recipe {
            prompt: prompt.into(),
            model: ImageModelKind::Sd3Medium,
            width: 16,
            height: 16,
            steps: 15,
        }
    }

    #[test]
    fn generates_once_then_hits() {
        let engine = GenerationEngine::new(4, 1_000_000);
        let calls = AtomicUsize::new(0);
        let gen = || {
            calls.fetch_add(1, Ordering::SeqCst);
            ImageBuffer::new(16, 16)
        };
        let (_, o1) = engine.fetch_image(&recipe("a"), gen);
        assert_eq!(o1, FetchOutcome::Generated);
        let (_, o2) = engine.fetch_image(&recipe("a"), || unreachable!("cached"));
        assert_eq!(o2, FetchOutcome::Hit);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(engine.generations(), 1);
        assert_eq!(engine.coalesced(), 1);
    }

    #[test]
    fn distinct_recipes_land_in_shards() {
        let engine = GenerationEngine::new(8, 1_000_000_000);
        for i in 0..32 {
            engine.fetch_image(&recipe(&format!("p{i}")), || ImageBuffer::new(16, 16));
        }
        assert_eq!(engine.cache().len(), 32);
        assert_eq!(engine.generations(), 32);
        // With 32 keys over 8 shards the hash should touch several shards.
        let populated = engine
            .cache()
            .shard_lens()
            .iter()
            .filter(|&&n| n > 0)
            .count();
        assert!(populated >= 3, "keys concentrated in {populated} shards");
    }

    #[test]
    fn concurrent_same_recipe_coalesces() {
        let engine = Arc::new(GenerationEngine::new(4, 1_000_000));
        let calls = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let calls = Arc::clone(&calls);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let (img, _) = engine.fetch_image(&recipe("shared"), || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        // Give the other threads time to pile onto the flight.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        ImageBuffer::new(16, 16)
                    });
                    img
                })
            })
            .collect();
        let images: Vec<ImageBuffer> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        assert_eq!(calls.load(Ordering::SeqCst), 1, "single flight");
        assert!(images.windows(2).all(|w| w[0] == w[1]), "shared result");
        assert_eq!(engine.generations(), 1);
        assert_eq!(engine.coalesced() + engine.generations(), 4);
    }

    #[test]
    fn poisoned_flight_recovers() {
        let engine = Arc::new(GenerationEngine::new(2, 1_000_000));
        let e = Arc::clone(&engine);
        let panicker = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                e.fetch_image(&recipe("doomed"), || panic!("leader dies"));
            }));
        });
        panicker.join().unwrap();
        // The key must not be stuck: a later request generates normally.
        let (_, outcome) = engine.fetch_image(&recipe("doomed"), || ImageBuffer::new(16, 16));
        assert_eq!(outcome, FetchOutcome::Generated);
    }

    #[test]
    fn ctx_expired_at_entry_is_rejected() {
        let engine = GenerationEngine::new(2, 1_000_000);
        let ctx = RequestCtx::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(5));
        let out = engine.try_fetch_image_ctx(&recipe("late"), &ctx, |_| {
            unreachable!("expired ctx must not reach the generator")
        });
        assert!(matches!(out, Err(SwwError::DeadlineExceeded { .. })));
        assert_eq!(engine.generations(), 0);
    }

    #[test]
    fn waiter_detaches_at_its_own_deadline() {
        let engine = Arc::new(GenerationEngine::new(2, 1_000_000));
        let leader = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                engine.try_fetch_image_ctx(&recipe("slow"), &RequestCtx::unbounded(), |_| {
                    std::thread::sleep(Duration::from_millis(150));
                    Ok(ImageBuffer::new(16, 16))
                })
            })
        };
        // Let the leader register its flight, then join with a deadline
        // far shorter than the leader's sleep.
        std::thread::sleep(Duration::from_millis(30));
        let ctx = RequestCtx::with_deadline(Duration::from_millis(20));
        let waited = engine.try_fetch_image_ctx(&recipe("slow"), &ctx, |_| {
            unreachable!("a waiter never generates")
        });
        assert!(matches!(waited, Err(SwwError::DeadlineExceeded { .. })));
        // The leader is unaffected by the waiter's deadline.
        let (_, outcome) = leader.join().unwrap().unwrap();
        assert_eq!(outcome, FetchOutcome::Generated);
    }

    #[test]
    fn abandoned_flight_fires_the_cancel_probe() {
        let engine = GenerationEngine::new(2, 1_000_000);
        let ctx = RequestCtx::with_deadline(Duration::from_millis(20));
        let out = engine.try_fetch_image_ctx(&recipe("orphan"), &ctx, |cancel| {
            // Emulate the denoise loop: poll the probe until it fires.
            for _ in 0..100 {
                if cancel.is_cancelled() {
                    return Err(ctx.deadline_error());
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            panic!("probe never fired for an abandoned flight");
        });
        assert!(matches!(out, Err(SwwError::DeadlineExceeded { .. })));
        // The poisoned flight is not stuck: the next request regenerates.
        let (_, outcome) = engine.fetch_image(&recipe("orphan"), || ImageBuffer::new(16, 16));
        assert_eq!(outcome, FetchOutcome::Generated);
    }

    #[test]
    fn cancelled_leader_with_waiter_hands_off() {
        let engine = Arc::new(GenerationEngine::new(2, 1_000_000));
        let leader_ctx = RequestCtx::with_deadline(Duration::from_millis(30));
        let calls = Arc::new(AtomicUsize::new(0));
        let leader = {
            let engine = Arc::clone(&engine);
            let ctx = leader_ctx.clone();
            let calls = Arc::clone(&calls);
            std::thread::spawn(move || {
                engine.try_fetch_image_ctx(&recipe("adopted"), &ctx, |cancel| {
                    calls.fetch_add(1, Ordering::SeqCst);
                    // Outlive the leader's own deadline, polling the probe
                    // like the denoise loop does. With a live waiter the
                    // probe must never fire.
                    for _ in 0..20 {
                        assert!(!cancel.is_cancelled(), "flight still has a waiter");
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Ok(ImageBuffer::new(16, 16))
                })
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        // A patient waiter joins before the leader's deadline passes.
        let waited =
            engine.try_fetch_image_ctx(&recipe("adopted"), &RequestCtx::unbounded(), |_| {
                unreachable!("the flight already has a leader")
            });
        // The leader's own request missed its deadline...
        let led = leader.join().unwrap();
        assert!(matches!(led, Err(SwwError::DeadlineExceeded { .. })));
        // ...but the waiter adopted the flight: one generation, shared.
        let (_, outcome) = waited.unwrap();
        assert_eq!(outcome, FetchOutcome::Coalesced);
        assert_eq!(calls.load(Ordering::SeqCst), 1, "exactly one generation");
        assert_eq!(engine.generations(), 1);
    }

    #[test]
    fn oversized_images_are_not_retained() {
        // 2 shards x 50 pixels each; a 16x16 image (256 px) never fits.
        let engine = GenerationEngine::new(2, 100);
        let (_, o1) = engine.fetch_image(&recipe("big"), || ImageBuffer::new(16, 16));
        assert_eq!(o1, FetchOutcome::Generated);
        let (_, o2) = engine.fetch_image(&recipe("big"), || ImageBuffer::new(16, 16));
        assert_eq!(o2, FetchOutcome::Generated, "uncacheable -> regenerate");
    }
}
