//! HLS-like video streaming over SWW HTTP/2 (paper §3.2: "Video streaming
//! protocols, such as HTTP Live Streaming (HLS) and MPEG-DASH, run on top
//! of HTTP. The proposed modifications to HTTP for web pages can be
//! applied also to negotiate generation abilities also for video
//! streaming").
//!
//! The server publishes a playlist plus per-segment resources. After the
//! SETTINGS exchange, a client advertising the VIDEO bit receives a
//! reduced-rate rendition (lower fps and/or resolution) and restores the
//! display rate locally (frame-rate boosting and resolution upscale); a
//! naive client receives the full-rate rendition. Segment payloads are
//! synthetic but correctly sized from the §3.2 bitrates, so the data
//! savings are measured on the wire.

use crate::video::{self, NegotiatedStream, Resolution, StreamRequest};
use sww_http2::GenAbility;

/// A published video: identity plus full-rate parameters.
#[derive(Debug, Clone)]
pub struct VideoAsset {
    /// Playlist name (e.g. "trailer").
    pub name: String,
    /// Mastered resolution.
    pub resolution: Resolution,
    /// Mastered frame rate.
    pub fps: u32,
    /// Duration in seconds.
    pub duration_s: u64,
    /// Segment duration in seconds.
    pub segment_s: u32,
}

/// A generated playlist: the negotiated rendition and its segment list.
#[derive(Debug, Clone)]
pub struct Playlist {
    /// The negotiation outcome the playlist was built for.
    pub stream: NegotiatedStream,
    /// Segment URL paths in play order.
    pub segments: Vec<String>,
    /// Bytes of each segment (uniform except the last).
    pub segment_bytes: u64,
}

impl Playlist {
    /// Render as an M3U8-like text manifest.
    pub fn to_m3u8(&self, asset: &VideoAsset) -> String {
        let mut out = String::from("#EXTM3U\n#EXT-X-VERSION:3\n");
        out.push_str(&format!("#EXT-X-TARGETDURATION:{}\n", asset.segment_s));
        out.push_str(&format!(
            "#EXT-X-SWW-RENDITION:{:?}@{}fps upscale={} fpsboost={}\n",
            self.stream.sent_resolution,
            self.stream.sent_fps,
            self.stream.client_upscales,
            self.stream.client_boosts_fps
        ));
        for seg in &self.segments {
            out.push_str(&format!(
                "#EXTINF:{:.1},\n{}\n",
                asset.segment_s as f64, seg
            ));
        }
        out.push_str("#EXT-X-ENDLIST\n");
        out
    }
}

/// Build the playlist for a client after SETTINGS negotiation.
pub fn build_playlist(asset: &VideoAsset, client: GenAbility, server: GenAbility) -> Playlist {
    let req = StreamRequest {
        resolution: asset.resolution,
        fps: asset.fps,
        duration_s: asset.duration_s,
        segment_s: asset.segment_s,
    };
    let stream = video::negotiate(req, client, server);
    let segments = (0..stream.segments)
        .map(|i| format!("/video/{}/seg{:04}.ts", asset.name, i))
        .collect();
    let segment_bytes = stream.wire_bytes / stream.segments.max(1);
    Playlist {
        stream,
        segments,
        segment_bytes,
    }
}

/// Synthesize one segment's payload: deterministic filler of the correct
/// negotiated size (media codecs are out of scope; the wire accounting is
/// what the experiment measures).
pub fn segment_payload(playlist: &Playlist, index: u64) -> Vec<u8> {
    let size = playlist.segment_bytes as usize;
    let mut data = vec![0u8; size];
    // Tag the payload so tests can verify ordering survives transfer.
    let tag = index.to_be_bytes();
    let n = tag.len().min(size);
    data[..n].copy_from_slice(&tag[..n]);
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asset() -> VideoAsset {
        VideoAsset {
            name: "trailer".into(),
            resolution: Resolution::Uhd4K,
            fps: 60,
            duration_s: 120,
            segment_s: 6,
        }
    }

    fn video_ability() -> GenAbility {
        GenAbility::from_bits(GenAbility::VIDEO)
    }

    #[test]
    fn capable_client_gets_reduced_rendition() {
        let p = build_playlist(&asset(), video_ability(), video_ability());
        assert_eq!(p.segments.len(), 20);
        assert!(p.stream.client_upscales && p.stream.client_boosts_fps);
        // 4.67x fewer bytes per segment than the naive rendition.
        let naive = build_playlist(&asset(), GenAbility::none(), video_ability());
        let ratio = naive.segment_bytes as f64 / p.segment_bytes as f64;
        assert!((ratio - 4.67).abs() < 0.1, "ratio {ratio:.2}");
    }

    #[test]
    fn manifest_lists_all_segments() {
        let a = asset();
        let p = build_playlist(&a, video_ability(), video_ability());
        let m3u8 = p.to_m3u8(&a);
        assert!(m3u8.starts_with("#EXTM3U"));
        assert!(m3u8.contains("seg0000.ts"));
        assert!(m3u8.contains("seg0019.ts"));
        assert!(m3u8.contains("#EXT-X-SWW-RENDITION:Hd@30fps upscale=true fpsboost=true"));
        assert!(m3u8.ends_with("#EXT-X-ENDLIST\n"));
    }

    #[test]
    fn segments_have_negotiated_size_and_order_tags() {
        let p = build_playlist(&asset(), video_ability(), video_ability());
        let s0 = segment_payload(&p, 0);
        let s7 = segment_payload(&p, 7);
        assert_eq!(s0.len() as u64, p.segment_bytes);
        assert_eq!(&s7[..8], &7u64.to_be_bytes());
        // Total across segments ≈ negotiated wire bytes.
        let total: u64 = (0..p.stream.segments).map(|_| p.segment_bytes).sum();
        let drift = p.stream.wire_bytes.abs_diff(total);
        assert!(drift < p.stream.segments, "rounding drift only");
    }

    #[test]
    fn naive_pair_gets_full_rate() {
        let p = build_playlist(&asset(), GenAbility::none(), GenAbility::none());
        assert!(!p.stream.client_upscales);
        assert_eq!(p.stream.wire_bytes, p.stream.traditional_bytes);
    }
}
