//! Webpage conversion (paper §4.2): "A simple script that goes over a
//! webpage can identify content, call a media converter to turn the
//! object into a prompt, and replace the existing object with a generated
//! content object."
//!
//! The converter walks a traditional page, and for every image tagged
//! generatable runs prompt inversion (image → prompt) and swaps the
//! `<img>` for a generated-content division; long text blocks become
//! bullet-point divisions. It reports measured byte savings and a
//! conversion-fidelity score per item so a webpage editor can audit the
//! results.

use crate::cms::{Cms, ContentTag};
use sww_genai::image::codec;
use sww_genai::metrics::clip;
use sww_genai::text::bullets;
use sww_genai::{invert, DiffusionModel, ImageBuffer};
use sww_html::dom::{Document, NodeKind};
use sww_html::tokenizer::Attribute;
use sww_html::{gencontent, parse, query, serialize};
use sww_json::Value;

/// Minimum characters before a text block is worth converting to bullets.
pub const MIN_TEXT_CHARS: usize = 200;

/// Report for one converted item.
#[derive(Debug, Clone)]
pub struct ConvertedItem {
    /// Original path or a text-block marker.
    pub source: String,
    /// Bytes before conversion (media file or raw text).
    pub original_bytes: usize,
    /// Bytes after (metadata dictionary).
    pub converted_bytes: usize,
    /// Fidelity score for editor audit: CLIP-sim between the inverted
    /// prompt and its regeneration (images), or SBERT between text and
    /// bullets. In `[0, 1]`-ish metric space.
    pub fidelity: f64,
}

/// Result of converting a page.
#[derive(Debug)]
pub struct ConversionReport {
    /// The SWW-form HTML.
    pub html: String,
    /// Per-item details.
    pub items: Vec<ConvertedItem>,
    /// Items left untouched (unique or unparseable).
    pub skipped: usize,
}

impl ConversionReport {
    /// Total original bytes across converted items.
    pub fn original_bytes(&self) -> usize {
        self.items.iter().map(|i| i.original_bytes).sum()
    }

    /// Total converted bytes.
    pub fn converted_bytes(&self) -> usize {
        self.items.iter().map(|i| i.converted_bytes).sum()
    }

    /// Compression ratio across converted items.
    pub fn compression_ratio(&self) -> f64 {
        let converted = self.converted_bytes();
        if converted == 0 {
            return 1.0;
        }
        self.original_bytes() as f64 / converted as f64
    }
}

/// The conversion pipeline.
pub struct Converter<'a> {
    cms: &'a Cms,
    /// Model used to audit conversion fidelity by regeneration.
    audit_model: DiffusionModel,
}

impl<'a> Converter<'a> {
    /// A converter consulting `cms` for per-item tags.
    pub fn new(cms: &'a Cms) -> Converter<'a> {
        Converter {
            cms,
            audit_model: DiffusionModel::new(sww_genai::ImageModelKind::Sd3Medium),
        }
    }

    /// Convert a traditional page. `fetch_image` resolves an `img src`
    /// to its encoded bytes (from disk, cache or network).
    pub fn convert_page<F>(&self, html: &str, mut fetch_image: F) -> ConversionReport
    where
        F: FnMut(&str) -> Option<Vec<u8>>,
    {
        let mut doc = parse(html);
        let mut items = Vec::new();
        let mut skipped = 0usize;

        // Images: invert tagged-generatable ones.
        for img_node in query::by_tag(&doc, doc.root(), "img") {
            let Some(src) = doc.attr(img_node, "src").map(str::to_owned) else {
                skipped += 1;
                continue;
            };
            if self.cms.tag(&src) == Some(ContentTag::Unique) {
                skipped += 1;
                continue;
            }
            let Some(encoded) = fetch_image(&src) else {
                skipped += 1;
                continue;
            };
            let Ok(image) = codec::decode(&encoded) else {
                skipped += 1;
                continue;
            };
            let item = self.convert_image(&mut doc, img_node, &src, &image, encoded.len());
            items.push(item);
        }

        // Text blocks: long paragraphs become bullet divisions.
        for p in query::by_tag(&doc, doc.root(), "p") {
            let text = doc.text_content(p);
            if text.len() < MIN_TEXT_CHARS {
                continue;
            }
            let blist = bullets::to_bullets(&text, 8);
            if blist.is_empty() {
                skipped += 1;
                continue;
            }
            let words = text.split_whitespace().count();
            let metadata_bytes = bullets::bullets_wire_size(&blist) + 24;
            let fidelity = sww_genai::metrics::sbert::sbert_score(&blist, &text);
            turn_into_text_division(&mut doc, p, &blist, words);
            items.push(ConvertedItem {
                source: "text-block".into(),
                original_bytes: text.len(),
                converted_bytes: metadata_bytes,
                fidelity,
            });
        }

        ConversionReport {
            html: serialize(&doc),
            items,
            skipped,
        }
    }

    fn convert_image(
        &self,
        doc: &mut Document,
        node: sww_html::NodeId,
        src: &str,
        image: &ImageBuffer,
        original_bytes: usize,
    ) -> ConvertedItem {
        let prompt = invert::invert(image);
        let name = src.rsplit('/').next().unwrap_or("image.jpg");
        // Audit: regenerate and score against the inverted prompt.
        let regen =
            self.audit_model
                .generate(&prompt, image.width().min(224), image.height().min(224), 15);
        let fidelity = clip::clip_score(&regen, &prompt);
        let metadata = Value::object([
            ("prompt", Value::from(prompt.as_str())),
            ("name", Value::from(name)),
            ("width", Value::from(u64::from(image.width()) as i64)),
            ("height", Value::from(u64::from(image.height()) as i64)),
        ]);
        let converted_bytes = sww_json::to_string(&metadata).len();
        let div = doc.create(NodeKind::Element {
            name: "div".into(),
            attrs: vec![
                Attribute {
                    name: "class".into(),
                    value: gencontent::GENERATED_CONTENT_CLASS.into(),
                },
                Attribute {
                    name: gencontent::CONTENT_TYPE_ATTR.into(),
                    value: "img".into(),
                },
                Attribute {
                    name: gencontent::METADATA_ATTR.into(),
                    value: sww_json::to_string(&metadata),
                },
            ],
        });
        doc.replace(node, div);
        ConvertedItem {
            source: src.to_owned(),
            original_bytes,
            converted_bytes,
            fidelity,
        }
    }
}

/// Aggregate report for a whole-site conversion (§7: "The conversion of
/// vast amounts of existing web content to prompts is another challenge").
#[derive(Debug)]
pub struct SiteConversionReport {
    /// Per-page reports, in input order, keyed by page path.
    pub pages: Vec<(String, ConversionReport)>,
    /// Distinct images converted (identical bytes share one inversion).
    pub unique_images: usize,
    /// Inversions avoided by the dedup cache.
    pub dedup_hits: usize,
}

impl SiteConversionReport {
    /// Total original bytes across every converted item on every page.
    pub fn original_bytes(&self) -> usize {
        self.pages.iter().map(|(_, r)| r.original_bytes()).sum()
    }

    /// Total converted bytes.
    pub fn converted_bytes(&self) -> usize {
        self.pages.iter().map(|(_, r)| r.converted_bytes()).sum()
    }

    /// Site-wide compression over converted items.
    pub fn compression_ratio(&self) -> f64 {
        let converted = self.converted_bytes();
        if converted == 0 {
            return 1.0;
        }
        self.original_bytes() as f64 / converted as f64
    }

    /// Items whose audit fidelity fell below `threshold` — the queue the
    /// §4.2 webpage editor reviews by hand.
    pub fn needs_review(&self, threshold: f64) -> Vec<(&str, &ConvertedItem)> {
        self.pages
            .iter()
            .flat_map(|(path, r)| {
                r.items
                    .iter()
                    .filter(move |i| i.fidelity < threshold)
                    .map(move |i| (path.as_str(), i))
            })
            .collect()
    }
}

impl Converter<'_> {
    /// Convert every page of a site, deduplicating image inversions: sites
    /// reuse the same stock files across pages, so identical bytes are
    /// inverted once and the result reused.
    pub fn convert_site<F>(
        &self,
        pages: &[(String, String)],
        mut fetch_image: F,
    ) -> SiteConversionReport
    where
        F: FnMut(&str) -> Option<Vec<u8>>,
    {
        // Cache keyed by content hash so renamed copies still dedup.
        let mut cache: std::collections::HashMap<u64, Vec<u8>> = std::collections::HashMap::new();
        let mut dedup_hits = 0usize;
        let mut unique = 0usize;
        let mut out = Vec::with_capacity(pages.len());
        for (path, html) in pages {
            let report = self.convert_page(html, |src| {
                let bytes = fetch_image(src)?;
                let key = sww_genai::fnv1a(&bytes);
                if let std::collections::hash_map::Entry::Vacant(slot) = cache.entry(key) {
                    unique += 1;
                    slot.insert(bytes.clone());
                } else {
                    dedup_hits += 1;
                }
                Some(bytes)
            });
            out.push((path.clone(), report));
        }
        SiteConversionReport {
            pages: out,
            unique_images: unique,
            dedup_hits,
        }
    }
}

fn turn_into_text_division(
    doc: &mut Document,
    node: sww_html::NodeId,
    blist: &[String],
    words: usize,
) {
    let metadata = Value::object([
        (
            "bullets",
            Value::Array(blist.iter().map(|b| Value::from(b.as_str())).collect()),
        ),
        ("words", Value::from(words)),
    ]);
    doc.clear_children(node);
    if let NodeKind::Element { name, attrs } = &mut doc.node_mut(node).kind {
        *name = "div".into();
        attrs.clear();
        attrs.push(Attribute {
            name: "class".into(),
            value: gencontent::GENERATED_CONTENT_CLASS.into(),
        });
        attrs.push(Attribute {
            name: gencontent::CONTENT_TYPE_ATTR.into(),
            value: "txt".into(),
        });
        attrs.push(Attribute {
            name: gencontent::METADATA_ATTR.into(),
            value: sww_json::to_string(&metadata),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cms::Template;
    use sww_genai::ImageModelKind;

    fn encoded_test_image(prompt: &str, side: u32) -> Vec<u8> {
        let img = DiffusionModel::new(ImageModelKind::Sd3Medium).generate(prompt, side, side, 15);
        codec::encode(&img, 55)
    }

    #[test]
    fn converts_images_to_prompt_divisions() {
        let mut cms = Cms::new();
        cms.register(Template::Blog, "img/landscape.jpg");
        let html = r#"<html><body><img src="img/landscape.jpg"></body></html>"#;
        let bytes = encoded_test_image("a wide mountain landscape", 128);
        let report = Converter::new(&cms).convert_page(html, |_| Some(bytes.clone()));
        assert_eq!(report.items.len(), 1);
        assert!(report.html.contains("generated-content"));
        assert!(!report.html.contains("<img"));
        // The converted page parses back into an extractable item.
        let doc = parse(&report.html);
        let items = gencontent::extract(&doc);
        assert_eq!(items.len(), 1);
        assert!(items[0].prompt().len() >= 100);
        assert!(
            report.compression_ratio() > 3.0,
            "ratio {}",
            report.compression_ratio()
        );
    }

    #[test]
    fn unique_content_is_skipped() {
        let mut cms = Cms::new();
        cms.register(Template::Blog, "uploads/photo-of-me.jpg");
        let html = r#"<img src="uploads/photo-of-me.jpg">"#;
        let report = Converter::new(&cms).convert_page(html, |_| Some(encoded_test_image("x", 64)));
        assert!(report.items.is_empty());
        assert_eq!(report.skipped, 1);
        assert!(report.html.contains("<img"));
    }

    #[test]
    fn long_text_becomes_bullets() {
        let long = "The trail begins at the edge of the village and climbs steadily. \
                    It passes through a forest of old pines where morning light filters down. \
                    After an hour the trees thin out and the path opens onto a meadow. \
                    From the ridge the view stretches across the whole valley below."
            .to_string();
        let html = format!("<html><body><p>{long}</p><p>short</p></body></html>");
        let cms = Cms::new();
        let report = Converter::new(&cms).convert_page(&html, |_| None);
        assert_eq!(report.items.len(), 1);
        assert!(report.items[0].converted_bytes < report.items[0].original_bytes);
        assert!(report.items[0].fidelity > 0.7);
        // Short paragraph untouched.
        assert!(report.html.contains("<p>short</p>"));
        let doc = parse(&report.html);
        assert_eq!(gencontent::extract(&doc).len(), 1);
    }

    #[test]
    fn unfetchable_images_are_skipped() {
        let cms = Cms::new();
        let report = Converter::new(&cms)
            .convert_page(r#"<img src="gone.jpg"><img src="bad.jpg">"#, |src| {
                (src == "bad.jpg").then(|| b"not a swim stream".to_vec())
            });
        assert!(report.items.is_empty());
        assert_eq!(report.skipped, 2);
    }

    #[test]
    fn site_conversion_dedups_shared_stock() {
        // Three pages reusing the same stock banner: one inversion, two
        // dedup hits, aggregated compression.
        let cms = Cms::new();
        let banner = encoded_test_image("a shared stock banner landscape", 128);
        let pages: Vec<(String, String)> = (0..3)
            .map(|i| {
                (
                    format!("/p{i}"),
                    format!(
                        r#"<html><body><img src="img/banner.jpg"><p>page {i}</p></body></html>"#
                    ),
                )
            })
            .collect();
        let report = Converter::new(&cms).convert_site(&pages, |_| Some(banner.clone()));
        assert_eq!(report.pages.len(), 3);
        assert_eq!(report.unique_images, 1);
        assert_eq!(report.dedup_hits, 2);
        assert!(report.compression_ratio() > 3.0);
        // Every page ended up in prompt form.
        for (_, r) in &report.pages {
            assert!(r.html.contains("generated-content"));
        }
    }

    #[test]
    fn site_review_queue_filters_by_fidelity() {
        let cms = Cms::new();
        let img = encoded_test_image("rolling hills", 96);
        let pages = vec![("/a".to_string(), r#"<img src="x.jpg">"#.to_string())];
        let report = Converter::new(&cms).convert_site(&pages, |_| Some(img.clone()));
        // A threshold above any possible score flags everything…
        assert_eq!(report.needs_review(1.0).len(), 1);
        // …and a floor below the random baseline flags nothing.
        assert!(report.needs_review(0.05).is_empty());
    }

    #[test]
    fn fidelity_is_auditable() {
        // Conversion reports a fidelity clearly above the random baseline,
        // so an editor can gate on it.
        let cms = Cms::new();
        let bytes = encoded_test_image("rolling green hills landscape", 224);
        let report =
            Converter::new(&cms).convert_page(r#"<img src="a.jpg">"#, |_| Some(bytes.clone()));
        assert!(report.items[0].fidelity > clip::RANDOM_BASELINE + 0.03);
    }
}
