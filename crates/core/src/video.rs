//! Video streaming negotiation (paper §3.2).
//!
//! HLS/MPEG-DASH run over HTTP, so the same SETTINGS negotiation can
//! advertise client-side video upscaling: frame-rate boosting (60→30 fps
//! halves the data) and resolution upscaling (4K→HD saves 2.3×, turning
//! 7 GB/hour into 3 GB/hour). The model here is an HLS-like segment
//! stream whose per-segment size derives from those published rates.

use sww_http2::GenAbility;

/// Video resolutions with their full-rate data cost (GB per hour at
/// 60 fps, from the paper's Netflix-derived figures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// High definition (720p-class): 3 GB/hour.
    Hd,
    /// Full HD (1080p-class): 4.5 GB/hour.
    FullHd,
    /// 4K UHD: 7 GB/hour.
    Uhd4K,
}

impl Resolution {
    /// GB per hour at 60 fps.
    pub fn gb_per_hour(self) -> f64 {
        match self {
            Resolution::Hd => 3.0,
            Resolution::FullHd => 4.5,
            Resolution::Uhd4K => 7.0,
        }
    }

    /// The next resolution down (what the server sends when the client
    /// can upscale), or `None` at the bottom.
    pub fn downgrade(self) -> Option<Resolution> {
        match self {
            Resolution::Uhd4K => Some(Resolution::Hd), // the paper's 4K→HD example
            Resolution::FullHd => Some(Resolution::Hd),
            Resolution::Hd => None,
        }
    }
}

/// A stream the client asked to watch.
#[derive(Debug, Clone, Copy)]
pub struct StreamRequest {
    /// Target display resolution.
    pub resolution: Resolution,
    /// Target display frame rate.
    pub fps: u32,
    /// Content length in seconds.
    pub duration_s: u64,
    /// HLS-like segment length in seconds.
    pub segment_s: u32,
}

/// What the server will actually send after negotiation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NegotiatedStream {
    /// Resolution on the wire.
    pub sent_resolution: Resolution,
    /// Frame rate on the wire.
    pub sent_fps: u32,
    /// Whether the client upscales resolution.
    pub client_upscales: bool,
    /// Whether the client boosts frame rate.
    pub client_boosts_fps: bool,
    /// Total bytes on the wire for the whole stream.
    pub wire_bytes: u64,
    /// Bytes a traditional full-rate stream would cost.
    pub traditional_bytes: u64,
    /// Number of segments.
    pub segments: u64,
}

impl NegotiatedStream {
    /// Data saving factor.
    pub fn savings_ratio(&self) -> f64 {
        self.traditional_bytes as f64 / self.wire_bytes.max(1) as f64
    }
}

/// Bytes per hour at a resolution and frame rate (linear in fps relative
/// to the 60 fps base, per the paper: 60→30 fps halves the data).
fn bytes_per_hour(res: Resolution, fps: u32) -> f64 {
    res.gb_per_hour() * 1e9 * f64::from(fps) / 60.0
}

/// Negotiate a stream: when the client advertises video upscaling, the
/// server sends lower resolution and frame rate and the client restores
/// them locally.
pub fn negotiate(req: StreamRequest, client: GenAbility, server: GenAbility) -> NegotiatedStream {
    let shared = client.intersect(server);
    let traditional = bytes_per_hour(req.resolution, req.fps) * req.duration_s as f64 / 3600.0;
    let can_video = shared.can_upscale_video();
    let (sent_resolution, client_upscales) = if can_video {
        match req.resolution.downgrade() {
            Some(lower) => (lower, true),
            None => (req.resolution, false),
        }
    } else {
        (req.resolution, false)
    };
    let (sent_fps, client_boosts_fps) = if can_video && req.fps >= 60 {
        (req.fps / 2, true)
    } else {
        (req.fps, false)
    };
    let wire = bytes_per_hour(sent_resolution, sent_fps) * req.duration_s as f64 / 3600.0;
    let segments =
        (req.duration_s + u64::from(req.segment_s) - 1) / u64::from(req.segment_s.max(1));
    NegotiatedStream {
        sent_resolution,
        sent_fps,
        client_upscales,
        client_boosts_fps,
        wire_bytes: wire as u64,
        traditional_bytes: traditional as u64,
        segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn video_ability() -> GenAbility {
        GenAbility::from_bits(GenAbility::VIDEO)
    }

    fn hour_4k60() -> StreamRequest {
        StreamRequest {
            resolution: Resolution::Uhd4K,
            fps: 60,
            duration_s: 3600,
            segment_s: 6,
        }
    }

    #[test]
    fn fps_halving_halves_data() {
        // Paper: "moving from 60fps to 30fps will half the data".
        let b60 = bytes_per_hour(Resolution::Hd, 60);
        let b30 = bytes_per_hour(Resolution::Hd, 30);
        assert!((b60 / b30 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn resolution_downgrade_saves_2_3x() {
        // Paper: "from 4K to high definition can save 2.3× data, turning
        // 7GB/hour into 3GB/hour".
        let ratio = Resolution::Uhd4K.gb_per_hour() / Resolution::Hd.gb_per_hour();
        assert!((ratio - 2.333).abs() < 0.01);
    }

    #[test]
    fn full_negotiation_combines_both_savings() {
        let s = negotiate(hour_4k60(), video_ability(), video_ability());
        assert_eq!(s.sent_resolution, Resolution::Hd);
        assert_eq!(s.sent_fps, 30);
        assert!(s.client_upscales && s.client_boosts_fps);
        // 2.33× from resolution × 2× from fps ≈ 4.67×.
        assert!(
            (s.savings_ratio() - 4.67).abs() < 0.05,
            "{}",
            s.savings_ratio()
        );
        assert_eq!(s.traditional_bytes, 7_000_000_000);
        assert_eq!(s.segments, 600);
    }

    #[test]
    fn naive_client_gets_full_rate() {
        let s = negotiate(hour_4k60(), GenAbility::none(), video_ability());
        assert_eq!(s.sent_resolution, Resolution::Uhd4K);
        assert_eq!(s.sent_fps, 60);
        assert!((s.savings_ratio() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn naive_server_sends_full_rate() {
        let s = negotiate(hour_4k60(), video_ability(), GenAbility::none());
        assert!(!s.client_upscales);
        assert_eq!(s.wire_bytes, s.traditional_bytes);
    }

    #[test]
    fn generate_ability_alone_does_not_downscale_video() {
        // GEN_ABILITY bit 0 (image/text generation) is not the video bit.
        let s = negotiate(hour_4k60(), GenAbility::full(), GenAbility::full());
        assert!(!s.client_upscales);
    }

    #[test]
    fn low_fps_content_not_halved() {
        let req = StreamRequest {
            fps: 30,
            ..hour_4k60()
        };
        let s = negotiate(req, video_ability(), video_ability());
        assert_eq!(s.sent_fps, 30);
        assert!(!s.client_boosts_fps);
        assert!(s.client_upscales);
    }

    #[test]
    fn hd_cannot_downgrade() {
        let req = StreamRequest {
            resolution: Resolution::Hd,
            ..hour_4k60()
        };
        let s = negotiate(req, video_ability(), video_ability());
        assert_eq!(s.sent_resolution, Resolution::Hd);
        assert!(!s.client_upscales);
        assert!(s.client_boosts_fps, "fps boosting still applies");
    }
}
