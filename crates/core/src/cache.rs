//! Client-side cache of generated media.
//!
//! Generation is deterministic in `(prompt, model, size, steps)`, so a
//! generated image is as cacheable as a fetched one — and because the
//! cache key is the *recipe*, every page reusing a stock prompt hits the
//! same entry. This is the client end of the paper's cache-placement
//! observation (§7: traffic reduction "provides more flexibility in cache
//! placement"); it also bounds the §6 generation-time cost to the first
//! visit.

use crate::faults::{self, FaultAction, FaultSite};
use std::collections::HashMap;
use sww_genai::diffusion::ImageModelKind;
use sww_genai::ImageBuffer;

/// Cache key: the full generation recipe.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Recipe {
    /// The prompt text.
    pub prompt: String,
    /// Model used.
    pub model: ImageModelKind,
    /// Output width.
    pub width: u32,
    /// Output height.
    pub height: u32,
    /// Inference steps.
    pub steps: u32,
}

#[derive(Debug)]
struct Entry {
    image: ImageBuffer,
    /// Monotone counter value at last use (for LRU eviction).
    last_used: u64,
}

/// An LRU cache of generated images, bounded by total pixel budget (a
/// proxy for memory).
#[derive(Debug)]
pub struct GenerationCache {
    entries: HashMap<Recipe, Entry>,
    clock: u64,
    /// Total pixels currently held.
    pixels: u64,
    /// Pixel budget.
    capacity_pixels: u64,
    /// Hits since creation.
    pub hits: u64,
    /// Misses since creation.
    pub misses: u64,
}

impl GenerationCache {
    /// A cache bounded to `capacity_pixels` total pixels (e.g. 32 MP ≈
    /// a hundred thumbnails).
    pub fn new(capacity_pixels: u64) -> GenerationCache {
        GenerationCache {
            entries: HashMap::new(),
            clock: 0,
            pixels: 0,
            capacity_pixels: capacity_pixels.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a recipe, updating recency.
    ///
    /// Under chaos ([`crate::faults`]), the `cache.get` failpoint can
    /// turn a lookup into a forced miss (the entry stays cached — the
    /// caller simply regenerates) or delay it.
    pub fn get(&mut self, recipe: &Recipe) -> Option<ImageBuffer> {
        match faults::at(FaultSite::CacheGet) {
            Some(FaultAction::Error) | Some(FaultAction::TruncateKeepPct(_)) => {
                self.misses += 1;
                sww_obs::counter("sww_cache_events_total", &[("result", "miss")]).inc();
                return None;
            }
            Some(FaultAction::Latency(d)) => std::thread::sleep(d),
            None => {}
        }
        self.clock += 1;
        match self.entries.get_mut(recipe) {
            Some(e) => {
                e.last_used = self.clock;
                self.hits += 1;
                sww_obs::counter("sww_cache_events_total", &[("result", "hit")]).inc();
                Some(e.image.clone())
            }
            None => {
                self.misses += 1;
                sww_obs::counter("sww_cache_events_total", &[("result", "miss")]).inc();
                None
            }
        }
    }

    /// Insert a generated image, evicting least-recently-used entries to
    /// stay within the pixel budget. Images larger than the whole budget
    /// are not cached.
    pub fn put(&mut self, recipe: Recipe, image: ImageBuffer) {
        let cost = image.pixels();
        if cost > self.capacity_pixels {
            return;
        }
        self.clock += 1;
        if let Some(old) = self.entries.remove(&recipe) {
            self.pixels -= old.image.pixels();
        }
        self.pixels += cost;
        self.entries.insert(
            recipe,
            Entry {
                image,
                last_used: self.clock,
            },
        );
        while self.pixels > self.capacity_pixels {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("pixels>0 implies entries");
            let removed = self.entries.remove(&victim).expect("victim exists");
            self.pixels -= removed.image.pixels();
        }
    }

    /// Hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recipe(p: &str, side: u32) -> Recipe {
        Recipe {
            prompt: p.into(),
            model: ImageModelKind::Sd3Medium,
            width: side,
            height: side,
            steps: 15,
        }
    }

    fn image(side: u32) -> ImageBuffer {
        ImageBuffer::new(side, side)
    }

    #[test]
    fn hit_after_put() {
        let mut c = GenerationCache::new(1_000_000);
        assert!(c.get(&recipe("a", 64)).is_none());
        c.put(recipe("a", 64), image(64));
        assert!(c.get(&recipe("a", 64)).is_some());
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn key_includes_full_recipe() {
        let mut c = GenerationCache::new(1_000_000);
        c.put(recipe("a", 64), image(64));
        // Different steps → different entry.
        let mut other = recipe("a", 64);
        other.steps = 30;
        assert!(c.get(&other).is_none());
        let mut other = recipe("a", 64);
        other.model = ImageModelKind::Sd21Base;
        assert!(c.get(&other).is_none());
    }

    #[test]
    fn lru_eviction_by_pixel_budget() {
        // Budget for exactly two 64² images.
        let mut c = GenerationCache::new(2 * 64 * 64);
        c.put(recipe("a", 64), image(64));
        c.put(recipe("b", 64), image(64));
        // Touch "a" so "b" is the LRU victim.
        assert!(c.get(&recipe("a", 64)).is_some());
        c.put(recipe("c", 64), image(64));
        assert_eq!(c.len(), 2);
        assert!(c.get(&recipe("a", 64)).is_some());
        assert!(c.get(&recipe("b", 64)).is_none(), "b evicted");
        assert!(c.get(&recipe("c", 64)).is_some());
    }

    #[test]
    fn oversized_entries_skipped() {
        let mut c = GenerationCache::new(100);
        c.put(recipe("big", 64), image(64));
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_replaces() {
        let mut c = GenerationCache::new(1_000_000);
        c.put(recipe("a", 64), image(64));
        c.put(recipe("a", 64), image(64));
        assert_eq!(c.len(), 1);
    }
}
