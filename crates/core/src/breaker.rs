//! Per-model-profile circuit breaker.
//!
//! When a model backend goes bad (driven deterministically in tests by
//! the `engine.generate` failpoint), every queued request burns a worker
//! for seconds before failing — the worst possible way to discover an
//! outage. The breaker watches *consecutive* generation failures per
//! [`ImageModelKind`] and, past a threshold, sheds requests for that
//! model instantly with `503`/`Retry-After` instead of queueing them
//! into a known-bad backend.
//!
//! Classic three-state machine, per model:
//!
//! ```text
//!            N consecutive failures
//!   Closed ──────────────────────────▶ Open
//!     ▲                                 │ cooldown elapses
//!     │ probe succeeds                  ▼
//!     └────────────────────────────  HalfOpen ──▶ (probe fails: Open)
//! ```
//!
//! In `HalfOpen` exactly one request is admitted as a probe; everyone
//! else keeps shedding until the probe reports. Success re-closes the
//! breaker; failure re-opens it for another cooldown.
//!
//! State is exported as `sww_breaker_state{model}` (0 = closed,
//! 1 = open, 2 = half-open); sheds count into
//! `sww_shed_total{reason="breaker"}` at the admission site in
//! `server.rs`.
#![warn(clippy::must_use_candidate)]

use crate::error::SwwError;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use sww_genai::ImageModelKind;

/// Breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive generation failures that trip `Closed → Open`.
    pub failure_threshold: u32,
    /// How long an open breaker sheds before admitting a half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_secs(30),
        }
    }
}

/// Observable breaker state for one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, consecutive failures are counted.
    Closed,
    /// Tripped: requests shed instantly until the cooldown elapses.
    Open,
    /// Probing: one request is in flight to test the backend.
    HalfOpen,
}

impl BreakerState {
    /// The gauge encoding used by `sww_breaker_state{model}`.
    #[must_use]
    pub fn gauge_value(self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::Open => 1.0,
            BreakerState::HalfOpen => 2.0,
        }
    }
}

#[derive(Debug)]
enum ModelState {
    Closed { consecutive_failures: u32 },
    Open { since: Instant },
    HalfOpen { probe_inflight: bool },
}

/// A set of independent per-model breakers sharing one config.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    models: Mutex<HashMap<ImageModelKind, ModelState>>,
}

impl CircuitBreaker {
    /// A breaker set with the given tuning. Every model starts `Closed`.
    #[must_use]
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            models: Mutex::new(HashMap::new()),
        }
    }

    /// The configured tuning.
    #[must_use]
    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    /// The current state for `model` (as admission would observe it: an
    /// open breaker whose cooldown has elapsed reads as half-open).
    #[must_use]
    pub fn state(&self, model: ImageModelKind) -> BreakerState {
        match self
            .models
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&model)
        {
            None | Some(ModelState::Closed { .. }) => BreakerState::Closed,
            Some(ModelState::Open { since }) => {
                if since.elapsed() >= self.config.cooldown {
                    BreakerState::HalfOpen
                } else {
                    BreakerState::Open
                }
            }
            Some(ModelState::HalfOpen { .. }) => BreakerState::HalfOpen,
        }
    }

    /// Admission check for one generation against `model`.
    ///
    /// `Ok(())` admits the request (in half-open state, as *the* probe).
    /// `Err(Saturated)` sheds it, with `Retry-After` advice equal to the
    /// remaining cooldown (minimum 1 s). Every admitted request must be
    /// followed by exactly one [`record_success`] or [`record_failure`].
    ///
    /// [`record_success`]: CircuitBreaker::record_success
    /// [`record_failure`]: CircuitBreaker::record_failure
    pub fn try_admit(&self, model: ImageModelKind) -> Result<(), SwwError> {
        let mut models = self.models.lock().unwrap_or_else(|e| e.into_inner());
        let state = models.entry(model).or_insert(ModelState::Closed {
            consecutive_failures: 0,
        });
        let decision = match state {
            ModelState::Closed { .. } => Ok(()),
            ModelState::Open { since } => {
                let elapsed = since.elapsed();
                if elapsed >= self.config.cooldown {
                    *state = ModelState::HalfOpen {
                        probe_inflight: true,
                    };
                    Ok(())
                } else {
                    let left = self.config.cooldown - elapsed;
                    Err(SwwError::Saturated {
                        retry_after_s: u32::try_from(left.as_secs()).unwrap_or(u32::MAX).max(1),
                    })
                }
            }
            ModelState::HalfOpen { probe_inflight } => {
                if *probe_inflight {
                    Err(SwwError::Saturated { retry_after_s: 1 })
                } else {
                    *probe_inflight = true;
                    Ok(())
                }
            }
        };
        Self::export(model, state);
        decision
    }

    /// Report a successful generation: re-closes a probing breaker and
    /// resets the consecutive-failure count.
    pub fn record_success(&self, model: ImageModelKind) {
        let mut models = self.models.lock().unwrap_or_else(|e| e.into_inner());
        let state = models.entry(model).or_insert(ModelState::Closed {
            consecutive_failures: 0,
        });
        *state = ModelState::Closed {
            consecutive_failures: 0,
        };
        Self::export(model, state);
    }

    /// Report a failed generation: trips `Closed → Open` at the
    /// threshold, and a failed half-open probe re-opens immediately.
    pub fn record_failure(&self, model: ImageModelKind) {
        let mut models = self.models.lock().unwrap_or_else(|e| e.into_inner());
        let state = models.entry(model).or_insert(ModelState::Closed {
            consecutive_failures: 0,
        });
        match state {
            ModelState::Closed {
                consecutive_failures,
            } => {
                *consecutive_failures += 1;
                if *consecutive_failures >= self.config.failure_threshold {
                    *state = ModelState::Open {
                        since: Instant::now(),
                    };
                }
            }
            ModelState::HalfOpen { .. } => {
                *state = ModelState::Open {
                    since: Instant::now(),
                };
            }
            ModelState::Open { .. } => {}
        }
        Self::export(model, state);
    }

    /// Publish `sww_breaker_state{model}` for one model's stored state.
    /// (An elapsed cooldown reads as still-open here; the gauge flips to
    /// half-open when the first probe is actually admitted.)
    fn export(model: ImageModelKind, state: &ModelState) {
        let value = match state {
            ModelState::Closed { .. } => BreakerState::Closed,
            ModelState::Open { .. } => BreakerState::Open,
            ModelState::HalfOpen { .. } => BreakerState::HalfOpen,
        }
        .gauge_value();
        let label = format!("{model:?}");
        sww_obs::gauge("sww_breaker_state", &[("model", &label)]).set(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(40),
        })
    }

    const MODEL: ImageModelKind = ImageModelKind::Sd3Medium;

    #[test]
    fn trips_only_on_consecutive_failures() {
        let b = fast();
        b.record_failure(MODEL);
        b.record_failure(MODEL);
        b.record_success(MODEL); // streak broken
        b.record_failure(MODEL);
        b.record_failure(MODEL);
        assert_eq!(b.state(MODEL), BreakerState::Closed);
        assert!(b.try_admit(MODEL).is_ok());
        b.record_failure(MODEL); // third consecutive: trips
        assert_eq!(b.state(MODEL), BreakerState::Open);
    }

    #[test]
    fn open_breaker_sheds_with_retry_after() {
        let b = fast();
        for _ in 0..3 {
            b.record_failure(MODEL);
        }
        match b.try_admit(MODEL) {
            Err(SwwError::Saturated { retry_after_s }) => assert!(retry_after_s >= 1),
            other => panic!("open breaker must shed, got {other:?}"),
        }
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let b = fast();
        for _ in 0..3 {
            b.record_failure(MODEL);
        }
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(b.state(MODEL), BreakerState::HalfOpen);
        assert!(b.try_admit(MODEL).is_ok(), "first probe admitted");
        assert!(b.try_admit(MODEL).is_err(), "second request sheds");
        // Probe succeeds: breaker closes, traffic flows again.
        b.record_success(MODEL);
        assert_eq!(b.state(MODEL), BreakerState::Closed);
        assert!(b.try_admit(MODEL).is_ok());
    }

    #[test]
    fn failed_probe_reopens() {
        let b = fast();
        for _ in 0..3 {
            b.record_failure(MODEL);
        }
        std::thread::sleep(Duration::from_millis(50));
        assert!(b.try_admit(MODEL).is_ok());
        b.record_failure(MODEL);
        assert_eq!(b.state(MODEL), BreakerState::Open);
        assert!(b.try_admit(MODEL).is_err());
    }

    #[test]
    fn models_break_independently() {
        let b = fast();
        for _ in 0..3 {
            b.record_failure(ImageModelKind::Sd21Base);
        }
        assert_eq!(b.state(ImageModelKind::Sd21Base), BreakerState::Open);
        assert_eq!(b.state(MODEL), BreakerState::Closed);
        assert!(b.try_admit(MODEL).is_ok());
    }
}
