#![warn(missing_docs)]

//! The SWW protocol layer — the paper's primary contribution, assembled
//! from the substrates: capability negotiation over HTTP/2 SETTINGS (§3),
//! the generative server (§5.1) and client (§5.2), the media generator
//! (§4.1), webpage conversion and CMS tagging (§4.2), CDN deployment
//! (§2.2), video negotiation (§3.2), and the byte/energy accounting the
//! evaluation (§6) is built on.

pub mod batch;
pub mod breaker;
pub mod cache;
pub mod cdn;
pub mod client;
pub mod cms;
pub mod convert;
pub mod edge;
pub mod engine;
pub mod error;
pub mod faults;
pub mod gossip;
pub mod hls;
pub mod lifecycle;
pub mod mediagen;
pub mod negotiate;
pub mod personalize;
pub mod policy;
pub mod render;
pub mod retry;
pub mod server;
pub mod stats;
pub mod transport;
pub mod trust;
pub mod video;
pub mod workpool;

pub use batch::{BatchConfig, BatchKey, BatchOutcome, BatchScheduler, BatchStats};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use client::GenerativeClient;
pub use edge::{EdgeConfig, EdgeNode, EdgeRouter, HashRing};
pub use engine::{FetchOutcome, GenerationEngine, ShardedGenerationCache};
pub use error::{retryable_status, SwwError};
pub use faults::{ChaosSpec, FaultKind, FaultScope, FaultSite};
pub use gossip::{Gossip, GossipConfig, Health};
pub use lifecycle::RequestCtx;
pub use mediagen::MediaGenerator;
pub use negotiate::{ServeMode, SessionAbilities};
pub use policy::ServerPolicy;
pub use render::RenderedPage;
pub use retry::{BackoffSchedule, RetryPolicy};
pub use server::{
    GenerativeServer, GenerativeServerBuilder, ServerConfig, Session, SiteContent, SwwPage,
};
pub use stats::PageStats;
pub use transport::TransportKind;
pub use workpool::WorkerPool;

/// Re-export of the wire-level capability type.
pub use sww_http2::GenAbility;

/// Re-export of the per-denoise-step cancellation probe, so serving-layer
/// callers can build probes without depending on `sww-genai` directly.
pub use sww_genai::StepCancel;
