//! Distributed generative edge: a consistent-hash CDN tier of
//! cooperating [`GenerativeServer`] nodes (paper §2.2).
//!
//! The paper argues generative servers will be deployed like a CDN — a
//! tier of edges close to users, each able to *expand* prompt-form
//! content on demand. This module promotes the E13 deployment model
//! (`crate::cdn`) to a running system:
//!
//! * a [`HashRing`] consistent-hashes **recipe keys**
//!   (model × prompt × params, hashed through `sww-hash`) onto node
//!   ids, so every entry edge agrees on one *owner* per recipe;
//! * an [`EdgeRouter`] fronts N [`EdgeNode`]s, each wrapping a full
//!   [`GenerativeServer`] with its own cache, pool and breaker;
//! * a miss at a non-owner edge performs **peer cache-fill**: the
//!   finished media is fetched from the owner and stored in the entry's
//!   bounded fill cache — or, when the client itself advertises
//!   `SETTINGS_SWW_GEN_ABILITY`, the entry serves the *recipe itself*
//!   (prompt form is replicated at every edge, so no hop is needed);
//! * the entry generates locally only when the owner is down: failover
//!   walks the ring in successor order, so every edge converges on the
//!   same *acting owner* and generation stays exactly-once cluster-wide
//!   even through node loss.
//!
//! Because all entries funnel a recipe to one owner, the single-flight
//! machinery from PRs 2/5 becomes **global**: M clients × N nodes over
//! P shared prompts still cost exactly P generations. Per-node circuit
//! breakers (and overload shedding) surface as 5xx at the owner, which
//! the router treats as node-unhealthy and fails over — breakers feed
//! router-level failover. Node join/leave rebalances deterministically
//! (the ring is a pure function of membership); leave unpublishes the
//! node from the ring *first* and then reuses PR 5's
//! [`GenerativeServer::drain`], so no in-flight response is lost.
//!
//! Since PR 10 the router also runs a SWIM-style **gossip layer**
//! ([`crate::gossip`]) as its second health signal: the static `alive`
//! flag still models the physical process (connection failures), while
//! gossip supplies the *distributed* view — suspect→dead timelines,
//! incarnation-numbered rejoin, partition healing — that the successor
//! walk consults to skip nodes the entry's view has declared unusable.
//! On top of it sits **hot-key replication**: once a key's hit count at
//! its acting owner crosses [`EdgeConfig::hot_threshold`], the owner
//! pushes the finished response to the next `replication - 1` ring
//! successors, with *hinted handoff* (the push is parked and delivered
//! on rejoin) when a replica is down and anti-entropy delivery during
//! [`EdgeRouter::tick_gossip`]. The walk then serves hot keys from
//! replicas on owner death with **zero regeneration** — byte-identical
//! bodies, no second generation — where the pre-replication tier had
//! to re-render.
//!
//! Routed and local dispatches land in `/metrics` under the
//! [`TransportKind::Edge`](crate::TransportKind::Edge) label; the
//! router's own counters are the
//! `sww_edge_*` family (OBSERVABILITY.md), every one carrying a `node`
//! label; replication adds `sww_edge_replica_*` and the gossip layer
//! `sww_gossip_*`.

use crate::cache::Recipe;
use crate::error::retryable_status;
use crate::gossip::{Gossip, GossipConfig, Health};
use crate::negotiate::{decide, ServeMode};
use crate::server::{DrainReport, GenerativeServer, SiteContent};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use sww_energy::device::{profile as device_profile, DeviceKind};
use sww_hash::sha256;
use sww_html::gencontent::{self, ContentType};
use sww_html::parse;
use sww_http2::server::{serve_connection_until, ServeStats};
use sww_http2::{GenAbility, H2Error, Request, Response};
use tokio::io::{AsyncRead, AsyncWrite};

/// Virtual nodes per physical node — enough that a 10k-key workload
/// spreads within a small factor of uniform (see `proptest_ring`).
pub const DEFAULT_VNODES: usize = 64;

/// A point on the 64-bit ring: the first 8 bytes of `sha256(bytes)`.
fn ring_point(bytes: &[u8]) -> u64 {
    let digest = sha256(bytes);
    u64::from_be_bytes(digest[..8].try_into().expect("sha256 is 32 bytes"))
}

/// The canonical routing key for a recipe: `model|WxH|steps|prompt`.
/// Every edge derives the same key for the same recipe, which is what
/// makes ownership a cluster-wide agreement rather than a per-node
/// guess.
pub fn recipe_key(recipe: &Recipe) -> String {
    format!(
        "{:?}|{}x{}|{}|{}",
        recipe.model, recipe.width, recipe.height, recipe.steps, recipe.prompt
    )
}

/// A consistent-hash ring mapping keys to node ids.
///
/// The ring is a **pure function of membership**: vnode points depend
/// only on `(node id, replica index)`, so any two rings built from the
/// same node set — in any insertion order, through any join/leave
/// history — assign every key identically. That purity is what makes
/// rebalancing deterministic and replayable (see
/// `crates/core/tests/proptest_ring.rs`).
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted `(point, index into nodes)` pairs.
    points: Vec<(u64, usize)>,
    /// Sorted member ids (sorted so `points` indices are canonical).
    nodes: Vec<String>,
    /// Vnodes per member.
    replicas: usize,
}

impl HashRing {
    /// An empty ring with `replicas` vnodes per member (0 is clamped
    /// to 1).
    pub fn new(replicas: usize) -> HashRing {
        HashRing {
            points: Vec::new(),
            nodes: Vec::new(),
            replicas: replicas.max(1),
        }
    }

    /// A ring populated from `nodes`.
    pub fn with_nodes<I, S>(replicas: usize, nodes: I) -> HashRing
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut ring = HashRing::new(replicas);
        for node in nodes {
            ring.add(&node.into());
        }
        ring
    }

    fn rebuild(&mut self) {
        self.points.clear();
        for (idx, node) in self.nodes.iter().enumerate() {
            for replica in 0..self.replicas {
                self.points
                    .push((ring_point(format!("{node}#{replica}").as_bytes()), idx));
            }
        }
        // Ties (a sha256 collision between two vnode labels) are broken
        // by node index, which is itself canonical (sorted ids).
        self.points.sort_unstable();
    }

    /// Add a member; returns `false` if it was already present.
    pub fn add(&mut self, node: &str) -> bool {
        if self.contains(node) {
            return false;
        }
        self.nodes.push(node.to_owned());
        self.nodes.sort_unstable();
        self.rebuild();
        true
    }

    /// Remove a member; returns `false` if it was not present.
    pub fn remove(&mut self, node: &str) -> bool {
        let Some(pos) = self.nodes.iter().position(|n| n == node) else {
            return false;
        };
        self.nodes.remove(pos);
        self.rebuild();
        true
    }

    /// Membership test.
    pub fn contains(&self, node: &str) -> bool {
        self.nodes.iter().any(|n| n == node)
    }

    /// Member ids, sorted.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no members remain.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Vnodes per member.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Index into `points` of the first vnode at or after `key`'s point
    /// (wrapping past the top of the ring).
    fn start_index(&self, key: &[u8]) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let point = ring_point(key);
        let idx = self.points.partition_point(|&(p, _)| p < point);
        Some(idx % self.points.len())
    }

    /// The owner of `key`: the member whose vnode follows the key's
    /// point clockwise.
    pub fn owner(&self, key: &[u8]) -> Option<&str> {
        let start = self.start_index(key)?;
        Some(self.nodes[self.points[start].1].as_str())
    }

    /// Every member in ring order from `key`'s owner — the failover
    /// chain. The first entry is the owner; each subsequent entry is the
    /// next *distinct* member clockwise, so when the owner is down every
    /// edge converges on the same acting owner.
    pub fn successors(&self, key: &[u8]) -> Vec<&str> {
        let Some(start) = self.start_index(key) else {
            return Vec::new();
        };
        let mut seen = vec![false; self.nodes.len()];
        let mut chain = Vec::with_capacity(self.nodes.len());
        for offset in 0..self.points.len() {
            let (_, idx) = self.points[(start + offset) % self.points.len()];
            if !seen[idx] {
                seen[idx] = true;
                chain.push(self.nodes[idx].as_str());
                if chain.len() == self.nodes.len() {
                    break;
                }
            }
        }
        chain
    }

    /// How many of `keys` each member owns (keys in unowned rings are
    /// dropped). Used by E19 to model per-node generation load.
    pub fn ownership<K: AsRef<[u8]>>(&self, keys: &[K]) -> HashMap<String, usize> {
        let mut counts: HashMap<String, usize> =
            self.nodes.iter().map(|n| (n.clone(), 0)).collect();
        for key in keys {
            if let Some(owner) = self.owner(key.as_ref()) {
                *counts.get_mut(owner).expect("owner is a member") += 1;
            }
        }
        counts
    }
}

/// A finished response held in an edge's fill cache.
#[derive(Debug, Clone)]
struct FillEntry {
    resp: Response,
    bytes: u64,
    stamp: u64,
}

/// Bounded per-node cache of peer-filled responses, LRU by touch order.
#[derive(Debug)]
struct FillCache {
    budget: u64,
    inner: Mutex<FillInner>,
}

#[derive(Debug, Default)]
struct FillInner {
    map: HashMap<String, FillEntry>,
    bytes: u64,
    clock: u64,
}

impl FillCache {
    fn new(budget: u64) -> FillCache {
        FillCache {
            budget,
            inner: Mutex::new(FillInner::default()),
        }
    }

    fn get(&self, key: &str) -> Option<Response> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let entry = inner.map.get_mut(key)?;
        entry.stamp = clock;
        Some(entry.resp.clone())
    }

    fn put(&self, key: &str, resp: &Response) {
        let bytes = resp.body.len() as u64;
        if bytes > self.budget {
            return;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some(old) = inner.map.insert(
            key.to_owned(),
            FillEntry {
                resp: resp.clone(),
                bytes,
                stamp,
            },
        ) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        while inner.bytes > self.budget {
            let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let evicted = inner.map.remove(&oldest).expect("key just observed");
            inner.bytes -= evicted.bytes;
        }
    }

    fn contains(&self, key: &str) -> bool {
        self.inner.lock().map.contains_key(key)
    }

    fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    fn stored_bytes(&self) -> u64 {
        self.inner.lock().bytes
    }
}

/// Per-node router counters, mirrored into the `sww_edge_*` metric
/// family. Kept on the node too so tests and benches can read exact
/// deltas without the process-global registry.
#[derive(Debug, Default)]
struct NodeCounters {
    requests: AtomicU64,
    prompt_local: AtomicU64,
    local_media: AtomicU64,
    peer_serves: AtomicU64,
    fills: AtomicU64,
    fill_hits: AtomicU64,
    failovers: AtomicU64,
    replica_pushes: AtomicU64,
    replica_hits: AtomicU64,
    replica_hints: AtomicU64,
    replica_handoffs: AtomicU64,
}

/// A read-only snapshot of one node's router counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Requests that entered the cluster at this node.
    pub requests: u64,
    /// Prompt-form pages served locally to generative clients.
    pub prompt_local: u64,
    /// Media served locally because this entry was the acting owner.
    pub local_media: u64,
    /// Requests this node served as acting owner on behalf of a peer
    /// entry (the target side of `sww_edge_routed_total`).
    pub peer_serves: u64,
    /// Responses this entry filled into its cache from a peer.
    pub fills: u64,
    /// Requests this entry answered from its fill cache.
    pub fill_hits: u64,
    /// Times this node was skipped over (dead, erroring, or declared
    /// unusable by gossip) during failover.
    pub failovers: u64,
    /// Hot-key responses this node, as acting owner, pushed to a
    /// replica.
    pub replica_pushes: u64,
    /// Requests this node answered from its replica store — the
    /// zero-regeneration path.
    pub replica_hits: u64,
    /// Pushes this node parked as hints because the replica was down.
    pub replica_hints: u64,
    /// Hinted writes delivered *to* this node on rejoin (anti-entropy).
    pub replica_handoffs: u64,
}

/// One edge: a full [`GenerativeServer`] plus its liveness flag and
/// fill cache.
pub struct EdgeNode {
    id: String,
    server: GenerativeServer,
    alive: AtomicBool,
    fill: FillCache,
    /// Replicated hot-key responses pushed to this node by acting
    /// owners — served with zero regeneration when the owner dies.
    replica: FillCache,
    /// Per-key hit counts at this node *as acting owner*; crossing
    /// [`EdgeConfig::hot_threshold`] triggers replication.
    hot: Mutex<HashMap<String, u64>>,
    counters: NodeCounters,
}

impl EdgeNode {
    fn new(id: String, server: GenerativeServer, fill_budget: u64) -> EdgeNode {
        EdgeNode {
            id,
            server,
            alive: AtomicBool::new(true),
            fill: FillCache::new(fill_budget),
            replica: FillCache::new(fill_budget),
            hot: Mutex::new(HashMap::new()),
            counters: NodeCounters::default(),
        }
    }

    /// Count one acting-owner serve of `key`; returns the new total.
    fn note_hit(&self, key: &str) -> u64 {
        let mut hot = self.hot.lock();
        let count = hot.entry(key.to_owned()).or_insert(0);
        *count += 1;
        *count
    }

    /// The node's ring id (`n0`, `n1`, …) — also its `node` metric
    /// label.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The wrapped server (own cache/pool/breaker).
    pub fn server(&self) -> &GenerativeServer {
        &self.server
    }

    /// Liveness as the router sees it (flipped by
    /// [`EdgeRouter::kill`] / [`EdgeRouter::revive`]).
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Snapshot of this node's router counters.
    pub fn stats(&self) -> NodeStats {
        NodeStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            prompt_local: self.counters.prompt_local.load(Ordering::Relaxed),
            local_media: self.counters.local_media.load(Ordering::Relaxed),
            peer_serves: self.counters.peer_serves.load(Ordering::Relaxed),
            fills: self.counters.fills.load(Ordering::Relaxed),
            fill_hits: self.counters.fill_hits.load(Ordering::Relaxed),
            failovers: self.counters.failovers.load(Ordering::Relaxed),
            replica_pushes: self.counters.replica_pushes.load(Ordering::Relaxed),
            replica_hits: self.counters.replica_hits.load(Ordering::Relaxed),
            replica_hints: self.counters.replica_hints.load(Ordering::Relaxed),
            replica_handoffs: self.counters.replica_handoffs.load(Ordering::Relaxed),
        }
    }

    /// Entries currently in the fill cache.
    pub fn fill_len(&self) -> usize {
        self.fill.len()
    }

    /// Octets currently in the fill cache (≤ the configured budget).
    pub fn fill_bytes(&self) -> u64 {
        self.fill.stored_bytes()
    }

    /// Hot-key entries currently replicated *to* this node.
    pub fn replica_len(&self) -> usize {
        self.replica.len()
    }

    fn count(&self, which: &AtomicU64, metric: &'static str) {
        which.fetch_add(1, Ordering::Relaxed);
        sww_obs::counter(metric, &[("node", &self.id)]).inc();
    }
}

/// Cluster-tier configuration.
#[derive(Debug, Clone, Copy)]
pub struct EdgeConfig {
    /// Initial node count.
    pub nodes: usize,
    /// Vnodes per node on the ring ([`DEFAULT_VNODES`]).
    pub replicas: usize,
    /// Per-node fill-cache budget in octets.
    pub fill_bytes: u64,
    /// Total copies of each hot key, *including* the acting owner.
    /// `1` (the default) disables hot-key replication entirely.
    pub replication: usize,
    /// Acting-owner hit count at which a key becomes hot and is pushed
    /// to its replicas.
    pub hot_threshold: u64,
    /// Gossip failure-detector tuning ([`GossipConfig`]).
    pub gossip: GossipConfig,
}

impl Default for EdgeConfig {
    fn default() -> EdgeConfig {
        EdgeConfig {
            nodes: 2,
            replicas: DEFAULT_VNODES,
            fill_bytes: 8 << 20,
            replication: 1,
            hot_threshold: 3,
            gossip: GossipConfig::default(),
        }
    }
}

/// Everything the router's clones share.
struct RouterInner {
    site: SiteContent,
    factory: Box<dyn Fn(SiteContent) -> GenerativeServer + Send + Sync>,
    fill_bytes: u64,
    /// Path → routing key. Pages with generated images key on their
    /// first image recipe, and each `/generated/<name>` asset keys on
    /// its page's recipe, so a page and its media co-locate on one
    /// owner. Unlisted paths fall back to hashing the path itself.
    keys: HashMap<String, String>,
    state: RwLock<ClusterState>,
    seq: AtomicUsize,
    round_robin: AtomicUsize,
    /// Total copies of each hot key, including the acting owner.
    replication: usize,
    /// Acting-owner hit count at which a key is pushed to replicas.
    hot_threshold: u64,
    /// The SWIM failure detector. Locked after `state` everywhere (the
    /// router never takes `state` while holding this lock).
    gossip: Mutex<Gossip>,
    /// Parked replica pushes awaiting their target's rejoin, newest
    /// write per `(target, key)` pair.
    hints: Mutex<Vec<Hint>>,
}

/// One parked replica push: delivered by [`EdgeRouter::tick_gossip`]
/// once `target` is back and the membership view agrees it is alive.
struct Hint {
    target: String,
    key: String,
    resp: Response,
}

#[derive(Clone)]
struct ClusterState {
    ring: HashRing,
    nodes: Vec<Arc<EdgeNode>>,
}

impl ClusterState {
    fn by_id(&self, id: &str) -> Option<&Arc<EdgeNode>> {
        self.nodes.iter().find(|n| n.id == id)
    }
}

/// The cluster front door: consistent-hash routing, peer cache-fill,
/// and ring-order failover over N [`EdgeNode`]s. Cheap to clone (all
/// clones share one cluster state).
#[derive(Clone)]
pub struct EdgeRouter {
    inner: Arc<RouterInner>,
}

impl EdgeRouter {
    /// Build a cluster of `config.nodes` nodes. `factory` constructs
    /// each node's server from a clone of `site` — prompt-form content
    /// is replicated at every edge, exactly the §2.2 deployment (the
    /// prompts are tiny; the expanded media is what the ring shards).
    pub fn new<F>(config: EdgeConfig, site: SiteContent, factory: F) -> EdgeRouter
    where
        F: Fn(SiteContent) -> GenerativeServer + Send + Sync + 'static,
    {
        let keys = routing_keys(&site);
        let router = EdgeRouter {
            inner: Arc::new(RouterInner {
                site,
                factory: Box::new(factory),
                fill_bytes: config.fill_bytes,
                keys,
                state: RwLock::new(ClusterState {
                    ring: HashRing::new(config.replicas.max(1)),
                    nodes: Vec::new(),
                }),
                seq: AtomicUsize::new(0),
                round_robin: AtomicUsize::new(0),
                replication: config.replication.max(1),
                hot_threshold: config.hot_threshold.max(1),
                gossip: Mutex::new(Gossip::new(config.gossip, Vec::<String>::new())),
                hints: Mutex::new(Vec::new()),
            }),
        };
        for _ in 0..config.nodes {
            router.join();
        }
        router
    }

    /// Add a node (fresh server from the factory) to the ring; returns
    /// its id. Rebalancing is deterministic: the ring is a pure
    /// function of the new membership, so only ~K/N keys change owner.
    pub fn join(&self) -> String {
        let id = format!("n{}", self.inner.seq.fetch_add(1, Ordering::SeqCst));
        let server = (self.inner.factory)(self.inner.site.clone());
        // Each node draws chaos decisions from its own seeded stream so
        // multi-node fault runs are per-node independent and replayable.
        server.set_fault_domain(&id);
        let node = Arc::new(EdgeNode::new(id.clone(), server, self.inner.fill_bytes));
        {
            let mut state = self.inner.state.write();
            state.ring.add(&id);
            state.nodes.push(node);
        }
        self.inner.gossip.lock().add_member(&id);
        self.publish_gauges();
        id
    }

    /// Remove a node gracefully: unpublish it from the ring *first*
    /// (new requests re-route to its ring successors immediately), then
    /// drain the wrapped server — PR 5's [`GenerativeServer::drain`]
    /// finishes every in-flight exchange before the node is dropped, so
    /// leave loses no responses. Returns the drain report, or `None`
    /// for an unknown id.
    pub fn leave(&self, id: &str) -> Option<DrainReport> {
        let node = {
            let mut state = self.inner.state.write();
            if !state.ring.remove(id) {
                return None;
            }
            let pos = state
                .nodes
                .iter()
                .position(|n| n.id == id)
                .expect("ring and node list stay in sync");
            state.nodes.remove(pos)
        };
        self.inner.gossip.lock().remove_member(id);
        self.inner.hints.lock().retain(|h| h.target != id);
        let report = node.server.drain();
        self.publish_gauges();
        Some(report)
    }

    /// Chaos: mark a node dead. It stays on the ring (the failure
    /// detector, not the membership protocol, saw it go), but the
    /// router skips it — and discards responses from dispatches that
    /// were mid-flight when the kill landed, retrying them on the next
    /// successor, so a kill never loses a response.
    pub fn kill(&self, id: &str) -> bool {
        self.set_alive(id, false)
    }

    /// Chaos: bring a killed node back.
    pub fn revive(&self, id: &str) -> bool {
        self.set_alive(id, true)
    }

    fn set_alive(&self, id: &str, alive: bool) -> bool {
        let state = self.inner.state.read();
        let Some(node) = state.by_id(id) else {
            return false;
        };
        node.alive.store(alive, Ordering::SeqCst);
        // The failure detector sees the process stop answering probes
        // (it learns the death over subsequent `tick_gossip` rounds; a
        // revival re-announces with a bumped incarnation).
        self.inner.gossip.lock().set_process_alive(id, alive);
        sww_obs::gauge("sww_edge_node_alive", &[("node", id)]).set(if alive { 1.0 } else { 0.0 });
        true
    }

    fn publish_gauges(&self) {
        let state = self.inner.state.read();
        sww_obs::gauge("sww_edge_ring_nodes", &[]).set(state.ring.len() as f64);
        for node in &state.nodes {
            sww_obs::gauge("sww_edge_node_alive", &[("node", &node.id)]).set(if node.is_alive() {
                1.0
            } else {
                0.0
            });
        }
    }

    /// Current node count.
    pub fn node_count(&self) -> usize {
        self.inner.state.read().nodes.len()
    }

    /// Node ids in join order (entry index i maps to `node_ids()[i %
    /// len]`).
    pub fn node_ids(&self) -> Vec<String> {
        let state = self.inner.state.read();
        state.nodes.iter().map(|n| n.id.clone()).collect()
    }

    /// Handle to one node.
    pub fn node(&self, id: &str) -> Option<Arc<EdgeNode>> {
        self.inner.state.read().by_id(id).cloned()
    }

    /// All node handles, in join order.
    pub fn nodes(&self) -> Vec<Arc<EdgeNode>> {
        self.inner.state.read().nodes.clone()
    }

    /// A snapshot of the ring.
    pub fn ring(&self) -> HashRing {
        self.inner.state.read().ring.clone()
    }

    /// Advance the failure detector by `rounds` virtual-clock rounds,
    /// then run anti-entropy: publish consensus-health gauges and
    /// deliver parked hinted-handoff writes whose targets have
    /// rejoined. Tests and benches call this explicitly; `sww serve
    /// --cluster` drives it from a timer at `--gossip-interval-ms`.
    pub fn tick_gossip(&self, rounds: u64) {
        let state = self.inner.state.read().clone();
        {
            let mut gossip = self.inner.gossip.lock();
            for _ in 0..rounds {
                gossip.tick();
            }
            for node in &state.nodes {
                if let Some(health) = gossip.consensus_health(&node.id) {
                    let value = match health {
                        Health::Alive => 0.0,
                        Health::Suspect => 1.0,
                        Health::Dead => 2.0,
                    };
                    sww_obs::gauge("sww_gossip_member_health", &[("node", &node.id)]).set(value);
                }
            }
        }
        self.deliver_hints(&state);
        for node in &state.nodes {
            sww_obs::gauge("sww_edge_replica_entries", &[("node", &node.id)])
                .set(node.replica.len() as f64);
        }
    }

    /// Deliver every parked hint whose target is back: process-alive
    /// *and* agreed Alive by the membership view — the anti-entropy
    /// half of hinted handoff.
    fn deliver_hints(&self, state: &ClusterState) {
        let mut hints = self.inner.hints.lock();
        if hints.is_empty() {
            return;
        }
        let gossip = self.inner.gossip.lock();
        hints.retain(|hint| {
            let rejoined = state.by_id(&hint.target).is_some_and(|n| n.is_alive())
                && gossip.process_alive(&hint.target)
                && gossip.consensus_health(&hint.target) == Some(Health::Alive);
            if !rejoined {
                return true;
            }
            let target = state.by_id(&hint.target).expect("checked just above");
            target.replica.put(&hint.key, &hint.resp);
            target.count(
                &target.counters.replica_handoffs,
                "sww_edge_replica_handoffs_total",
            );
            false
        });
    }

    /// Inject a network partition into the gossip layer: members in
    /// different groups cannot exchange probes until
    /// [`heal_partition`](EdgeRouter::heal_partition).
    pub fn set_partition(&self, groups: &[Vec<String>]) {
        self.inner.gossip.lock().set_partition(groups);
    }

    /// Remove an injected partition.
    pub fn heal_partition(&self) {
        self.inner.gossip.lock().heal_partition();
    }

    /// Whether every live member's membership view is identical.
    pub fn gossip_converged(&self) -> bool {
        self.inner.gossip.lock().converged()
    }

    /// Completed gossip rounds (the virtual clock).
    pub fn gossip_round(&self) -> u64 {
        self.inner.gossip.lock().round()
    }

    /// Order-independent digest of every live member's view — the
    /// replay witness for deterministic chaos runs.
    pub fn gossip_digest(&self) -> u64 {
        self.inner.gossip.lock().digest()
    }

    /// The newest cluster-wide opinion of `id`'s health, or `None` for
    /// an unknown member.
    pub fn consensus_health(&self, id: &str) -> Option<Health> {
        self.inner.gossip.lock().consensus_health(id)
    }

    /// Parked hinted-handoff writes not yet delivered.
    pub fn pending_hints(&self) -> usize {
        self.inner.hints.lock().len()
    }

    /// The routing key `path` hashes under (a recipe key for pages with
    /// generated images and their assets, the path itself otherwise).
    pub fn routing_key(&self, path: &str) -> String {
        self.inner
            .keys
            .get(path)
            .cloned()
            .unwrap_or_else(|| path.to_owned())
    }

    /// Which node owns `path` right now.
    pub fn owner_of(&self, path: &str) -> Option<String> {
        let key = self.routing_key(path);
        let state = self.inner.state.read();
        state.ring.owner(key.as_bytes()).map(str::to_owned)
    }

    /// Serve one request entering the cluster at entry node `entry`
    /// (modulo the node count).
    ///
    /// The decision tree, in order:
    ///
    /// 1. `/metrics` answers at the entry (the registry is shared).
    /// 2. A client that negotiates a generative mode gets the **recipe
    ///    itself**, served from the entry's replicated prompt store —
    ///    no routing hop at all.
    /// 3. Otherwise the entry consults its fill cache and replica
    ///    store, then routes to the acting owner: the first *alive*
    ///    node in the key's ring successor chain. A peer-served 200 is
    ///    filled into the entry's cache (`sww_edge_peer_fill_total`).
    /// 4. Dead nodes — and nodes the entry's gossip view declares
    ///    unusable, nodes whose dispatch returned a breaker/overload-
    ///    shaped 5xx, and nodes killed while the dispatch was
    ///    mid-flight — are skipped (`sww_edge_failover_total`), walking
    ///    toward the entry's own position. At each surviving chain node
    ///    the replica store is checked *before* dispatching: a hot key
    ///    whose owner died is served from a replica byte-identically,
    ///    with zero regeneration (`sww_edge_replica_hits_total`).
    /// 5. A 200 at the acting owner bumps the key's hit count; crossing
    ///    [`EdgeConfig::hot_threshold`] (with `replication > 1`) pushes
    ///    the response to the next `replication - 1` ring successors,
    ///    parking a hint instead for any replica that is down.
    pub fn handle(&self, entry: usize, client_ability: GenAbility, req: &Request) -> Response {
        let state = self.inner.state.read().clone();
        if state.nodes.is_empty() {
            return cluster_down_response();
        }
        let entry_node = Arc::clone(&state.nodes[entry % state.nodes.len()]);
        entry_node.count(&entry_node.counters.requests, "sww_edge_requests_total");
        if !entry_node.is_alive() {
            entry_node.count(&entry_node.counters.failovers, "sww_edge_failover_total");
            return node_down_response(&entry_node.id);
        }
        if req.path == "/metrics" {
            return entry_node.server.dispatch_edge(client_ability, req);
        }
        let mode = decide(
            entry_node.server.ability(),
            client_ability,
            entry_node.server.policy(),
        );
        if matches!(mode, ServeMode::Generative | ServeMode::UpscaleAssisted) {
            entry_node.count(
                &entry_node.counters.prompt_local,
                "sww_edge_prompt_local_total",
            );
            return entry_node.server.dispatch_edge(client_ability, req);
        }
        // Naive client: finished media. Conditional revalidations skip
        // the fill cache (it stores full 200s, not 304 bookkeeping).
        let revalidate = req.headers.get("if-none-match").is_some();
        let fill_key = format!("{}|{}", req.path, mode_tag(mode));
        if !revalidate {
            if let Some(resp) = entry_node.fill.get(&fill_key) {
                entry_node.count(&entry_node.counters.fill_hits, "sww_edge_fill_hits_total");
                return resp;
            }
            if let Some(resp) = entry_node.replica.get(&fill_key) {
                entry_node.count(
                    &entry_node.counters.replica_hits,
                    "sww_edge_replica_hits_total",
                );
                return resp;
            }
        }
        let key = self.routing_key(&req.path);
        let chain: Vec<String> = {
            let successors = state.ring.successors(key.as_bytes());
            successors.iter().map(|s| (*s).to_owned()).collect()
        };
        let mut last = None;
        for id in &chain {
            let node = state.by_id(id).expect("successors are members");
            if !node.is_alive() {
                node.count(&node.counters.failovers, "sww_edge_failover_total");
                continue;
            }
            if *id != entry_node.id && !self.inner.gossip.lock().usable(&entry_node.id, id) {
                // The entry's membership view has this node suspect or
                // dead: skip it proactively instead of burning a
                // dispatch that will fail.
                node.count(&node.counters.failovers, "sww_edge_failover_total");
                continue;
            }
            if !revalidate {
                if let Some(resp) = node.replica.get(&fill_key) {
                    // A replica of a hot key survives its owner: serve
                    // the stored owner response — byte-identical, zero
                    // regeneration.
                    node.count(&node.counters.replica_hits, "sww_edge_replica_hits_total");
                    return resp;
                }
            }
            let resp = node.server.dispatch_edge(client_ability, req);
            if !node.is_alive() {
                // Killed while the dispatch was in flight: the response
                // is deemed lost on the wire. Retry on the successor —
                // this is the zero-lost-responses half of the chaos
                // node-kill scenario.
                node.count(&node.counters.failovers, "sww_edge_failover_total");
                continue;
            }
            if node_unhealthy(resp.status) {
                node.count(&node.counters.failovers, "sww_edge_failover_total");
                last = Some(resp);
                continue;
            }
            if resp.status == 200 && !revalidate {
                self.note_hot(&state, node, &chain, &fill_key, &resp);
            }
            if node.id == entry_node.id {
                entry_node.count(&entry_node.counters.local_media, "sww_edge_local_total");
            } else {
                node.count(&node.counters.peer_serves, "sww_edge_routed_total");
                if resp.status == 200 && !revalidate {
                    entry_node.fill.put(&fill_key, &resp);
                    entry_node.count(&entry_node.counters.fills, "sww_edge_peer_fill_total");
                }
            }
            return resp;
        }
        last.unwrap_or_else(cluster_down_response)
    }

    /// Hot-key accounting at the acting owner: bump `fill_key`'s hit
    /// count on `owner` and, once it crosses the threshold (with
    /// replication enabled), push the finished response to the next
    /// `replication - 1` distinct chain members. A replica seat whose
    /// node is down or gossip-unusable gets a *hint* instead — parked
    /// until [`tick_gossip`](EdgeRouter::tick_gossip) observes the
    /// rejoin. Seats already holding the key are skipped, so steady
    /// traffic repairs evicted replicas without re-pushing every hit.
    fn note_hot(
        &self,
        state: &ClusterState,
        owner: &Arc<EdgeNode>,
        chain: &[String],
        fill_key: &str,
        resp: &Response,
    ) {
        if self.inner.replication <= 1 {
            return;
        }
        if owner.note_hit(fill_key) < self.inner.hot_threshold {
            return;
        }
        let mut seats = 0;
        for id in chain {
            if seats == self.inner.replication - 1 {
                break;
            }
            if *id == owner.id {
                continue;
            }
            seats += 1;
            let target = state.by_id(id).expect("successors are members");
            if target.replica.contains(fill_key) {
                continue;
            }
            let reachable =
                target.is_alive() && self.inner.gossip.lock().usable(&owner.id, &target.id);
            if reachable {
                target.replica.put(fill_key, resp);
                owner.count(
                    &owner.counters.replica_pushes,
                    "sww_edge_replica_pushes_total",
                );
            } else {
                let mut hints = self.inner.hints.lock();
                hints.retain(|h| !(h.target == *id && h.key == fill_key));
                hints.push(Hint {
                    target: id.clone(),
                    key: fill_key.to_owned(),
                    resp: resp.clone(),
                });
                owner.count(
                    &owner.counters.replica_hints,
                    "sww_edge_replica_hints_total",
                );
            }
        }
    }

    /// Serve one HTTP/2 connection whose requests enter at `entry` —
    /// the per-connection half of [`spawn_tcp`](EdgeRouter::spawn_tcp).
    pub async fn serve_stream<T>(&self, entry: usize, io: T) -> Result<ServeStats, H2Error>
    where
        T: AsyncRead + AsyncWrite + Unpin,
    {
        let ability = {
            let state = self.inner.state.read();
            match state.nodes.get(entry % state.nodes.len().max(1)) {
                Some(node) => node.server.ability(),
                None => GenAbility::none(),
            }
        };
        let router = self.clone();
        serve_connection_until(
            io,
            ability,
            move |req, ctx| router.handle(entry, ctx.client_ability, &req),
            || false,
        )
        .await
    }

    /// Bind a TCP listener for the whole cluster: connections are
    /// assigned entry nodes round-robin (a stand-in for the DNS/anycast
    /// spraying a real CDN front end does). Returns the bound address.
    pub async fn spawn_tcp(&self, addr: &str) -> std::io::Result<std::net::SocketAddr> {
        let listener = tokio::net::TcpListener::bind(addr).await?;
        let local = listener.local_addr()?;
        let router = self.clone();
        tokio::spawn(async move {
            while let Ok((sock, _)) = listener.accept().await {
                let entry = router.inner.round_robin.fetch_add(1, Ordering::Relaxed);
                let router = router.clone();
                tokio::spawn(async move {
                    let _ = router.serve_stream(entry, sock).await;
                });
            }
        });
        Ok(local)
    }
}

/// Statuses after which the router stops trusting a node for this
/// request: its breaker is open (503), it shed under overload (503),
/// missed a deadline (504), or failed outright (500/502). One shared
/// predicate ([`retryable_status`]) decides this for the router, the
/// client retry policy, and the workload replayer alike.
fn node_unhealthy(status: u16) -> bool {
    retryable_status(status)
}

/// Fill-cache key component for the negotiated mode (distinct modes
/// carry distinct `x-sww-mode` headers, so they must not share cached
/// bodies).
fn mode_tag(mode: ServeMode) -> &'static str {
    match mode {
        ServeMode::Generative => "gen",
        ServeMode::UpscaleAssisted => "upscale",
        ServeMode::ServerGenerated => "server-gen",
        ServeMode::Traditional => "traditional",
    }
}

fn cluster_down_response() -> Response {
    let mut resp = Response::status(503);
    resp.headers.insert("retry-after", "1");
    resp.headers
        .insert("x-sww-error", "edge-cluster-unavailable");
    resp
}

fn node_down_response(id: &str) -> Response {
    let mut resp = Response::status(503);
    resp.headers.insert("retry-after", "1");
    resp.headers.insert("x-sww-error", "edge-node-down");
    resp.headers.insert("x-sww-edge-node", id);
    resp
}

/// Derive the path → routing-key map for a site: each page with
/// generated images keys on its first image recipe (model × prompt ×
/// params), and every `/generated/<name>` asset a page's materialized
/// form references keys on the *same* recipe, so the page and its media
/// land on one owner.
fn routing_keys(site: &SiteContent) -> HashMap<String, String> {
    let generator = crate::mediagen::MediaGenerator::new(device_profile(DeviceKind::Workstation));
    let (model, steps) = (generator.image_model(), generator.inference_steps());
    let mut keys = HashMap::new();
    for path in site.page_paths() {
        let page = site.page(path).expect("path came from the site");
        let items = gencontent::extract(&parse(&page.html));
        let mut page_key = None;
        for item in &items {
            if item.content_type != ContentType::Img {
                continue;
            }
            let recipe = Recipe {
                prompt: item.prompt().to_owned(),
                model,
                width: item.width(),
                height: item.height(),
                steps,
            };
            let key = recipe_key(&recipe);
            if page_key.is_none() {
                page_key = Some(key.clone());
            }
            keys.insert(
                format!("/generated/{}", item.name()),
                page_key.clone().expect("set just above"),
            );
        }
        if let Some(key) = page_key {
            keys.insert(path.to_owned(), key);
        }
    }
    keys
}

/// A tiny in-module smoke surface; the heavy proofs live in
/// `crates/core/tests/proptest_ring.rs` and `tests/edge_cluster.rs`.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use bytes::Bytes;
    use sww_genai::diffusion::ImageModelKind;

    fn ring(nodes: &[&str]) -> HashRing {
        HashRing::with_nodes(DEFAULT_VNODES, nodes.iter().copied())
    }

    fn demo_site() -> SiteContent {
        let mut site = SiteContent::new();
        for p in 0..4 {
            site.add_page(
                format!("/page/{p}"),
                format!(
                    "<html><body>{}</body></html>",
                    gencontent::image_div(
                        &format!("edge prompt {p} basalt arch"),
                        &format!("edge{p}.jpg"),
                        32,
                        32,
                    )
                ),
            );
        }
        site.add_page("/plain", "<html><body>no images</body></html>");
        site
    }

    fn demo_router(nodes: usize) -> EdgeRouter {
        EdgeRouter::new(
            EdgeConfig {
                nodes,
                ..EdgeConfig::default()
            },
            demo_site(),
            |site| {
                GenerativeServer::from_config(ServerConfig {
                    site,
                    ..ServerConfig::default()
                })
            },
        )
    }

    #[test]
    fn ring_point_is_stable() {
        // The ring hash is a wire-adjacent contract: changing it
        // reshuffles every deployed cluster at once.
        assert_eq!(ring_point(b"n0#0"), ring_point(b"n0#0"));
        assert_ne!(ring_point(b"n0#0"), ring_point(b"n0#1"));
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new(DEFAULT_VNODES);
        assert!(ring.is_empty());
        assert_eq!(ring.owner(b"k"), None);
        assert!(ring.successors(b"k").is_empty());
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = ring(&["n0"]);
        for k in 0..100u32 {
            assert_eq!(ring.owner(format!("key{k}").as_bytes()), Some("n0"));
        }
    }

    #[test]
    fn owner_is_insertion_order_independent() {
        let a = ring(&["n0", "n1", "n2"]);
        let b = ring(&["n2", "n0", "n1"]);
        for k in 0..200u32 {
            let key = format!("key{k}");
            assert_eq!(a.owner(key.as_bytes()), b.owner(key.as_bytes()));
        }
    }

    #[test]
    fn successors_start_at_owner_and_cover_all_nodes() {
        let ring = ring(&["n0", "n1", "n2", "n3"]);
        for k in 0..50u32 {
            let key = format!("key{k}");
            let chain = ring.successors(key.as_bytes());
            assert_eq!(chain.len(), 4);
            assert_eq!(chain[0], ring.owner(key.as_bytes()).unwrap());
            let mut sorted: Vec<&str> = chain.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, ["n0", "n1", "n2", "n3"]);
        }
    }

    #[test]
    fn add_and_remove_report_membership_changes() {
        let mut ring = HashRing::new(8);
        assert!(ring.add("n0"));
        assert!(!ring.add("n0"), "double add is a no-op");
        assert!(ring.contains("n0"));
        assert!(ring.remove("n0"));
        assert!(!ring.remove("n0"), "double remove is a no-op");
        assert!(ring.is_empty());
    }

    #[test]
    fn ownership_counts_every_key_once() {
        let ring = ring(&["n0", "n1", "n2"]);
        let keys: Vec<String> = (0..300).map(|k| format!("key{k}")).collect();
        let counts = ring.ownership(&keys);
        assert_eq!(counts.values().sum::<usize>(), keys.len());
        assert_eq!(counts.len(), 3);
    }

    #[test]
    fn recipe_key_is_canonical() {
        let recipe = Recipe {
            prompt: "a basalt arch".into(),
            model: ImageModelKind::Sd3Medium,
            width: 64,
            height: 48,
            steps: 15,
        };
        assert_eq!(recipe_key(&recipe), "Sd3Medium|64x48|15|a basalt arch");
    }

    #[test]
    fn fill_cache_evicts_lru_within_budget() {
        let cache = FillCache::new(10);
        let resp = |body: &str| Response::ok(Bytes::from(body.to_owned()));
        cache.put("a", &resp("aaaa"));
        cache.put("b", &resp("bbbb"));
        assert!(cache.get("a").is_some(), "touch a so b is the LRU");
        cache.put("c", &resp("cccc"));
        assert!(cache.get("b").is_none(), "b was least recently used");
        assert!(cache.get("a").is_some() && cache.get("c").is_some());
        assert!(cache.stored_bytes() <= 10);
    }

    #[test]
    fn fill_cache_rejects_oversized_bodies() {
        let cache = FillCache::new(3);
        cache.put("big", &Response::ok(Bytes::from_static(b"toolarge")));
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn pages_and_their_assets_share_a_routing_key() {
        let router = demo_router(3);
        let page_key = router.routing_key("/page/0");
        assert!(page_key.contains("edge prompt 0"), "{page_key}");
        assert_eq!(router.routing_key("/generated/edge0.jpg"), page_key);
        // A page with no generated images hashes on its own path.
        assert_eq!(router.routing_key("/plain"), "/plain");
        assert_eq!(router.routing_key("/nowhere"), "/nowhere");
    }

    #[test]
    fn generative_clients_are_served_at_the_entry() {
        let router = demo_router(3);
        let resp = router.handle(1, GenAbility::full(), &Request::get("/page/0"));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.headers.get("x-sww-mode"), Some("generative"));
        let ids = router.node_ids();
        let entry = router.node(&ids[1]).unwrap();
        assert_eq!(entry.stats().prompt_local, 1);
        assert_eq!(entry.stats().fills, 0, "no peer hop for prompt form");
    }

    #[test]
    fn naive_miss_routes_to_owner_and_fills_the_entry() {
        let router = demo_router(3);
        let owner = router.owner_of("/page/1").unwrap();
        let ids = router.node_ids();
        let entry_idx = ids
            .iter()
            .position(|id| *id != owner)
            .expect("3 nodes, someone is not the owner");
        let resp = router.handle(entry_idx, GenAbility::none(), &Request::get("/page/1"));
        assert_eq!(resp.status, 200);
        let entry = router.node(&ids[entry_idx]).unwrap();
        let owner_node = router.node(&owner).unwrap();
        assert_eq!(entry.stats().fills, 1);
        assert_eq!(owner_node.stats().peer_serves, 1);
        assert_eq!(owner_node.server().engine().generations(), 1);
        assert_eq!(entry.server().engine().generations(), 0);
        // The second request at the same entry is a fill hit: no hop.
        let again = router.handle(entry_idx, GenAbility::none(), &Request::get("/page/1"));
        assert_eq!(again.body, resp.body);
        assert_eq!(entry.stats().fill_hits, 1);
        assert_eq!(owner_node.stats().peer_serves, 1, "no second hop");
    }

    #[test]
    fn owner_kill_fails_over_with_identical_bytes() {
        let router = demo_router(3);
        let owner = router.owner_of("/page/2").unwrap();
        let ids = router.node_ids();
        let entry_idx = ids.iter().position(|id| *id != owner).unwrap();
        let before = router.handle(entry_idx, GenAbility::none(), &Request::get("/page/2"));
        assert_eq!(before.status, 200);
        assert!(router.kill(&owner));
        // The *other* non-owner node as entry: its fill cache is empty,
        // and the key's ring chain still starts at the dead owner.
        let other_idx = ids
            .iter()
            .position(|id| *id != owner && *id != ids[entry_idx])
            .expect("3 nodes: two non-owners");
        let after = router.handle(other_idx, GenAbility::none(), &Request::get("/page/2"));
        assert_eq!(after.status, 200);
        assert_eq!(
            after.body, before.body,
            "failover regenerates deterministically"
        );
        let killed = router.node(&owner).unwrap();
        assert!(killed.stats().failovers >= 1, "the dead owner was skipped");
        assert!(router.revive(&owner));
        assert!(router.node(&owner).unwrap().is_alive());
    }

    #[test]
    fn leave_unpublishes_then_drains() {
        let router = demo_router(3);
        let ids = router.node_ids();
        let report = router.leave(&ids[0]).expect("member leaves");
        assert_eq!(report.inflight_at_start, 0, "nothing was in flight");
        assert_eq!(router.node_count(), 2);
        assert!(!router.ring().contains(&ids[0]));
        assert!(router.leave(&ids[0]).is_none(), "second leave is a no-op");
        // The cluster still answers.
        let resp = router.handle(0, GenAbility::none(), &Request::get("/page/3"));
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn empty_cluster_returns_503() {
        let router = demo_router(1);
        let ids = router.node_ids();
        router.leave(&ids[0]);
        let resp = router.handle(0, GenAbility::none(), &Request::get("/page/0"));
        assert_eq!(resp.status, 503);
        assert_eq!(
            resp.headers.get("x-sww-error"),
            Some("edge-cluster-unavailable")
        );
    }

    #[test]
    fn dead_entry_refuses_with_node_down() {
        let router = demo_router(2);
        let ids = router.node_ids();
        router.kill(&ids[0]);
        let resp = router.handle(0, GenAbility::none(), &Request::get("/page/0"));
        assert_eq!(resp.status, 503);
        assert_eq!(resp.headers.get("x-sww-error"), Some("edge-node-down"));
        assert_eq!(resp.headers.get("x-sww-edge-node"), Some(ids[0].as_str()));
    }

    fn replicated_router(nodes: usize, replication: usize, hot_threshold: u64) -> EdgeRouter {
        EdgeRouter::new(
            EdgeConfig {
                nodes,
                replication,
                hot_threshold,
                ..EdgeConfig::default()
            },
            demo_site(),
            |site| {
                GenerativeServer::from_config(ServerConfig {
                    site,
                    ..ServerConfig::default()
                })
            },
        )
    }

    #[test]
    fn all_nodes_dead_answers_node_down_without_panicking() {
        // The degenerate ring walk: every member dead must be a clean
        // 503, not a panic or an unbounded retry loop.
        let router = demo_router(3);
        for id in router.node_ids() {
            assert!(router.kill(&id));
        }
        let resp = router.handle(1, GenAbility::none(), &Request::get("/page/0"));
        assert_eq!(resp.status, 503);
        assert_eq!(resp.headers.get("x-sww-error"), Some("edge-node-down"));
        let generations: u64 = router
            .nodes()
            .iter()
            .map(|n| n.server().engine().generations())
            .sum();
        assert_eq!(generations, 0, "a dead cluster must not generate");
    }

    #[test]
    fn hot_key_crosses_threshold_and_replicates_to_successors() {
        let router = replicated_router(3, 2, 2);
        let owner = router.owner_of("/page/0").unwrap();
        let ids = router.node_ids();
        let owner_idx = ids.iter().position(|id| *id == owner).unwrap();
        // Warm through the owner as entry so fill caches stay empty and
        // only the replica machinery moves bytes.
        for _ in 0..3 {
            let resp = router.handle(owner_idx, GenAbility::none(), &Request::get("/page/0"));
            assert_eq!(resp.status, 200);
        }
        let owner_node = router.node(&owner).unwrap();
        assert_eq!(owner_node.stats().replica_pushes, 1, "one seat, one push");
        let chain: Vec<String> = router
            .ring()
            .successors(router.routing_key("/page/0").as_bytes())
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let seat = router.node(&chain[1]).unwrap();
        assert_eq!(seat.replica_len(), 1, "first successor holds the replica");
        assert_eq!(
            router.node(&chain[2]).unwrap().replica_len(),
            0,
            "replication=2 means exactly one seat beyond the owner"
        );
    }

    #[test]
    fn replica_serves_owner_death_with_zero_regeneration() {
        let router = replicated_router(3, 2, 2);
        let owner = router.owner_of("/page/2").unwrap();
        let ids = router.node_ids();
        let owner_idx = ids.iter().position(|id| *id == owner).unwrap();
        let mut before = None;
        for _ in 0..3 {
            before = Some(router.handle(owner_idx, GenAbility::none(), &Request::get("/page/2")));
        }
        let before = before.unwrap();
        assert_eq!(before.status, 200);
        router.kill(&owner);
        let survivor_generations: u64 = router
            .nodes()
            .iter()
            .filter(|n| n.id() != owner)
            .map(|n| n.server().engine().generations())
            .sum();
        assert_eq!(survivor_generations, 0, "only the owner generated so far");
        for entry_idx in (0..3).filter(|i| *i != owner_idx) {
            let after = router.handle(entry_idx, GenAbility::none(), &Request::get("/page/2"));
            assert_eq!(after.status, 200);
            assert_eq!(after.body, before.body, "replica serves the owner's bytes");
        }
        let survivors_after: u64 = router
            .nodes()
            .iter()
            .filter(|n| n.id() != owner)
            .map(|n| n.server().engine().generations())
            .sum();
        assert_eq!(survivors_after, 0, "zero regeneration on owner death");
        let replica_hits: u64 = router.nodes().iter().map(|n| n.stats().replica_hits).sum();
        assert!(replica_hits >= 2, "both survivors answered from replicas");
    }

    #[test]
    fn push_to_a_dead_replica_parks_a_hint_delivered_on_rejoin() {
        let router = replicated_router(3, 2, 1);
        let owner = router.owner_of("/page/1").unwrap();
        let ids = router.node_ids();
        let owner_idx = ids.iter().position(|id| *id == owner).unwrap();
        let chain: Vec<String> = router
            .ring()
            .successors(router.routing_key("/page/1").as_bytes())
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let seat = chain[1].clone();
        router.kill(&seat);
        let resp = router.handle(owner_idx, GenAbility::none(), &Request::get("/page/1"));
        assert_eq!(resp.status, 200);
        assert_eq!(router.pending_hints(), 1, "the push parked as a hint");
        assert_eq!(router.node(&owner).unwrap().stats().replica_hints, 1);
        // Let the failure detector actually observe the death, then the
        // rejoin — delivery requires the membership view to agree.
        router.tick_gossip(8);
        assert_eq!(router.pending_hints(), 1, "no delivery while dead");
        assert_eq!(router.consensus_health(&seat), Some(Health::Dead));
        router.revive(&seat);
        router.tick_gossip(8);
        assert_eq!(router.pending_hints(), 0, "hint delivered on rejoin");
        let seat_node = router.node(&seat).unwrap();
        assert_eq!(seat_node.stats().replica_handoffs, 1);
        assert_eq!(seat_node.replica_len(), 1);
        assert_eq!(router.consensus_health(&seat), Some(Health::Alive));
    }

    #[test]
    fn gossip_view_skips_suspect_nodes_proactively() {
        let router = demo_router(3);
        let owner = router.owner_of("/page/3").unwrap();
        let ids = router.node_ids();
        let entry_idx = ids.iter().position(|id| *id != owner).unwrap();
        router.kill(&owner);
        router.tick_gossip(8);
        assert_eq!(router.consensus_health(&owner), Some(Health::Dead));
        let resp = router.handle(entry_idx, GenAbility::none(), &Request::get("/page/3"));
        assert_eq!(resp.status, 200, "the walk fails over past the dead owner");
        assert!(router.gossip_converged(), "healthy members agree");
    }

    #[test]
    fn router_partition_diverges_then_heals_to_convergence() {
        let router = demo_router(3);
        let ids = router.node_ids();
        router.set_partition(&[vec![ids[0].clone()], vec![ids[1].clone(), ids[2].clone()]]);
        router.tick_gossip(10);
        assert!(
            !router.gossip_converged(),
            "cross-group probes are dropped, so views must diverge"
        );
        router.heal_partition();
        let mut rounds = 0u64;
        while !router.gossip_converged() {
            router.tick_gossip(1);
            rounds += 1;
            assert!(rounds <= 32, "healing must converge in bounded rounds");
        }
        assert!(router.gossip_converged());
    }

    #[test]
    fn revalidation_bypasses_the_fill_cache() {
        let router = demo_router(2);
        let first = router.handle(0, GenAbility::none(), &Request::get("/page/0"));
        let etag = first.headers.get("etag").expect("pages carry etags");
        let mut req = Request::get("/page/0");
        req.headers.insert("if-none-match", etag);
        let resp = router.handle(0, GenAbility::none(), &req);
        assert_eq!(resp.status, 304);
        let hits: u64 = router.nodes().iter().map(|n| n.stats().fill_hits).sum();
        assert_eq!(hits, 0, "revalidations never consult the fill cache");
    }
}
