//! The rendered-page model — what the paper's PyQt GUI displays, as data.
//!
//! After the client parses, generates and rewrites a page, the result is a
//! [`RenderedPage`]: final HTML (all generated-content divisions resolved)
//! plus the resolved media resources. A PPM dump is available for visual
//! inspection; every measured quantity the GUI-less evaluation needs is on
//! the structure.

use sww_genai::ImageBuffer;

/// A media resource on the rendered page.
#[derive(Debug, Clone)]
pub struct RenderedResource {
    /// Path the final HTML references.
    pub path: String,
    /// Pixels (generated or fetched-and-decoded).
    pub image: ImageBuffer,
    /// Encoded size in octets (measured).
    pub encoded_bytes: usize,
    /// Whether the resource was generated on-device (vs fetched).
    pub generated: bool,
}

/// A fully resolved page.
#[derive(Debug, Clone, Default)]
pub struct RenderedPage {
    /// Final HTML after generated-content rewrite.
    pub html: String,
    /// Resolved media resources.
    pub resources: Vec<RenderedResource>,
    /// Text blocks that were expanded on-device.
    pub expanded_texts: Vec<String>,
}

impl RenderedPage {
    /// Number of images on the page.
    pub fn image_count(&self) -> usize {
        self.resources.len()
    }

    /// Total encoded media bytes on the page.
    pub fn media_bytes(&self) -> usize {
        self.resources.iter().map(|r| r.encoded_bytes).sum()
    }

    /// Count of resources generated on-device.
    pub fn generated_count(&self) -> usize {
        self.resources.iter().filter(|r| r.generated).count()
    }

    /// Render to terminal text, lynx-style: headings become banner lines,
    /// paragraphs flow as text, images appear as placeholders with their
    /// provenance (generated vs fetched). This is the GUI-free analog of
    /// the paper's PyQt rendering (§5.2) and what the CLI prints.
    pub fn to_text(&self) -> String {
        let doc = sww_html::parse(&self.html);
        let mut out = String::new();
        render_node(&doc, doc.root(), self, &mut out);
        // Collapse runs of blank lines.
        let mut collapsed = String::with_capacity(out.len());
        let mut blank = false;
        for line in out.lines() {
            let is_blank = line.trim().is_empty();
            if is_blank && blank {
                continue;
            }
            blank = is_blank;
            collapsed.push_str(line.trim_end());
            collapsed.push('\n');
        }
        collapsed.trim().to_string()
    }

    /// Dump every image as PPM into `dir` for eyeballing (the Figure 2
    /// comparison). Returns written file paths.
    pub fn dump_ppm(&self, dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        for (i, r) in self.resources.iter().enumerate() {
            let safe = r.path.replace(['/', '\\'], "_");
            let path = dir.join(format!("{i:02}_{safe}.ppm"));
            std::fs::write(&path, r.image.to_ppm())?;
            written.push(path);
        }
        Ok(written)
    }
}

fn render_node(
    doc: &sww_html::Document,
    id: sww_html::NodeId,
    page: &RenderedPage,
    out: &mut String,
) {
    use sww_html::dom::NodeKind;
    match &doc.node(id).kind {
        NodeKind::Text(t) => {
            let trimmed = t.trim();
            if !trimmed.is_empty() {
                out.push_str(trimmed);
                out.push(' ');
            }
        }
        NodeKind::Element { name, .. } => {
            match name.as_str() {
                "h1" | "h2" | "h3" | "h4" | "h5" | "h6" => {
                    let title = doc.text_content(id).trim().to_uppercase();
                    out.push_str("\n\n");
                    out.push_str(&title);
                    out.push('\n');
                    out.push_str(&"=".repeat(title.chars().count().min(72)));
                    out.push('\n');
                    return; // children already flattened into the banner
                }
                "img" => {
                    let src = doc.attr(id, "src").unwrap_or("?");
                    let provenance = page
                        .resources
                        .iter()
                        .find(|r| r.path == src)
                        .map(|r| if r.generated { "generated" } else { "fetched" })
                        .unwrap_or("unresolved");
                    let w = doc.attr(id, "width").unwrap_or("?");
                    let h = doc.attr(id, "height").unwrap_or("?");
                    out.push_str(&format!("\n[image {src} {w}x{h} ({provenance})]\n"));
                    return;
                }
                "p" | "div" | "li" | "br" | "section" | "article" => {
                    out.push('\n');
                }
                "script" | "style" | "head" => return,
                _ => {}
            }
            for &child in doc.children(id) {
                render_node(doc, child, page, out);
            }
            if matches!(name.as_str(), "p" | "div" | "li" | "section" | "article") {
                out.push('\n');
            }
        }
        NodeKind::Document => {
            for &child in doc.children(id) {
                render_node(doc, child, page, out);
            }
        }
        NodeKind::Comment(_) | NodeKind::Doctype(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(n: usize) -> RenderedPage {
        RenderedPage {
            html: "<html></html>".into(),
            resources: (0..n)
                .map(|i| RenderedResource {
                    path: format!("generated/img{i}.jpg"),
                    image: ImageBuffer::new(8, 8),
                    encoded_bytes: 100 + i,
                    generated: i % 2 == 0,
                })
                .collect(),
            expanded_texts: vec![],
        }
    }

    #[test]
    fn counters() {
        let p = page_with(4);
        assert_eq!(p.image_count(), 4);
        assert_eq!(p.media_bytes(), 100 + 101 + 102 + 103);
        assert_eq!(p.generated_count(), 2);
    }

    #[test]
    fn text_rendering_shows_structure_and_provenance() {
        let page = RenderedPage {
            html: "<html><body><h1>Hike Report</h1><p>A fine day on the ridge.</p>\
                   <img src=\"generated/trail.jpg\" width=\"256\" height=\"256\">\
                   <img src=\"/photos/me.jpg\" width=\"512\" height=\"512\">\
                   <script>ignored()</script></body></html>"
                .into(),
            resources: vec![
                RenderedResource {
                    path: "generated/trail.jpg".into(),
                    image: ImageBuffer::new(1, 1),
                    encoded_bytes: 10,
                    generated: true,
                },
                RenderedResource {
                    path: "/photos/me.jpg".into(),
                    image: ImageBuffer::new(1, 1),
                    encoded_bytes: 10,
                    generated: false,
                },
            ],
            expanded_texts: vec![],
        };
        let text = page.to_text();
        assert!(text.contains("HIKE REPORT"));
        assert!(text.contains("===="));
        assert!(text.contains("A fine day on the ridge."));
        assert!(text.contains("[image generated/trail.jpg 256x256 (generated)]"));
        assert!(text.contains("[image /photos/me.jpg 512x512 (fetched)]"));
        assert!(!text.contains("ignored()"), "script bodies must not render");
    }

    #[test]
    fn text_rendering_collapses_blank_runs() {
        let page = RenderedPage {
            html: "<div></div><div></div><div></div><p>x</p>".into(),
            resources: vec![],
            expanded_texts: vec![],
        };
        let text = page.to_text();
        assert!(!text.contains("\n\n\n"));
        assert!(text.ends_with('x'));
    }

    #[test]
    fn ppm_dump_writes_files() {
        let dir = std::env::temp_dir().join("sww-render-test");
        let _ = std::fs::remove_dir_all(&dir);
        let p = page_with(2);
        let files = p.dump_ppm(&dir).unwrap();
        assert_eq!(files.len(), 2);
        for f in &files {
            let data = std::fs::read(f).unwrap();
            assert!(data.starts_with(b"P6\n"));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
