//! Deterministic fault injection for the serving stack.
//!
//! The paper's deployment story assumes generation can fail or stall on
//! either end — ability negotiation exists precisely so a peer can fall
//! back to traditional media (§3, §7) — yet a failure path that cannot
//! be exercised on demand is a failure path that rots. This module is a
//! seeded failpoint registry: five well-known **sites** in the stack can
//! be made to inject errors, added latency, or payload truncation with
//! per-site probabilities, and every decision is drawn from a seeded
//! PRNG so a chaos run is reproducible.
//!
//! | Site key          | Where it fires                                   |
//! |-------------------|--------------------------------------------------|
//! | `engine.generate` | `GenerationEngine::try_fetch_image` (leader path) and the client's per-item generation |
//! | `pool.enqueue`    | `WorkerPool::try_execute` (admission)            |
//! | `cache.get`       | `GenerationCache::get` (lookup becomes a miss)   |
//! | `h2.read`         | `GenerativeClient` transport reads               |
//! | `server.respond`  | `server::dispatch`, wrapping the whole response  |
//!
//! # Determinism
//!
//! Each site keeps a monotone evaluation counter; the decision for the
//! *n*-th evaluation at a site is a pure function of `(seed, site, n)`.
//! Single-threaded runs are therefore bit-for-bit reproducible; under
//! concurrency the multiset of decisions per site is fixed by the seed
//! even though which request draws which decision depends on thread
//! interleaving.
//!
//! # Zero cost when off
//!
//! [`at`] is a single relaxed atomic load when no spec is installed —
//! the hot path pays nothing until chaos is explicitly enabled via
//! [`install`] (e.g. `sww serve --chaos <spec>`).
//!
//! Observability: every injected fault increments
//! `sww_faults_injected_total{site,kind}` and an internal tally
//! (readable via [`injected_total`] / [`injected_counts`]) so chaos
//! suites can reconcile the exposition against ground truth.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The failpoint sites threaded through the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A generation about to run (engine leader, or client-side item).
    EngineGenerate,
    /// A job being admitted to the worker pool.
    PoolEnqueue,
    /// A generation-cache lookup.
    CacheGet,
    /// A transport read on the client connection.
    H2Read,
    /// The server producing a response.
    ServerRespond,
}

/// All sites, in spec/display order.
pub const ALL_SITES: [FaultSite; 5] = [
    FaultSite::EngineGenerate,
    FaultSite::PoolEnqueue,
    FaultSite::CacheGet,
    FaultSite::H2Read,
    FaultSite::ServerRespond,
];

impl FaultSite {
    /// The spec key for this site (`engine.generate`, ...).
    pub fn key(self) -> &'static str {
        match self {
            FaultSite::EngineGenerate => "engine.generate",
            FaultSite::PoolEnqueue => "pool.enqueue",
            FaultSite::CacheGet => "cache.get",
            FaultSite::H2Read => "h2.read",
            FaultSite::ServerRespond => "server.respond",
        }
    }

    fn from_key(key: &str) -> Option<FaultSite> {
        ALL_SITES.iter().copied().find(|s| s.key() == key)
    }

    fn index(self) -> usize {
        match self {
            FaultSite::EngineGenerate => 0,
            FaultSite::PoolEnqueue => 1,
            FaultSite::CacheGet => 2,
            FaultSite::H2Read => 3,
            FaultSite::ServerRespond => 4,
        }
    }
}

/// What kind of fault a rule injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails outright.
    Error,
    /// The operation is delayed before proceeding normally.
    Latency,
    /// The payload is truncated (byte-stream sites only; sites without a
    /// payload treat a truncate draw as a no-op).
    Truncate,
}

impl FaultKind {
    fn label(self) -> &'static str {
        match self {
            FaultKind::Error => "error",
            FaultKind::Latency => "latency",
            FaultKind::Truncate => "truncate",
        }
    }
}

/// The action an armed failpoint tells its call site to take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the operation (the site maps this to its natural error).
    Error,
    /// Sleep this long, then proceed normally.
    Latency(Duration),
    /// Keep only this percentage of the payload (1..=99).
    TruncateKeepPct(u8),
}

/// One parsed rule: inject `kind` at `site` with `probability`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// Where to inject.
    pub site: FaultSite,
    /// What to inject.
    pub kind: FaultKind,
    /// Per-evaluation probability in `[0, 1]`.
    pub probability: f64,
    /// Kind-specific parameter: latency milliseconds (default 10) or
    /// truncation keep-percent (default 50).
    pub param: u64,
}

/// A parsed `--chaos` spec: a seed plus fault rules.
///
/// Grammar (comma-separated entries):
///
/// ```text
/// seed=<u64>
/// <site>=<kind>:<probability>[:<param>]
/// ```
///
/// e.g. `seed=42,engine.generate=error:0.1,pool.enqueue=error:0.05,
/// h2.read=latency:0.2:15,server.respond=truncate:0.05:50`. Repeated
/// entries for a site accumulate; their probabilities must sum to ≤ 1.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// PRNG seed; identical seeds yield identical decision sequences.
    pub seed: u64,
    /// The fault rules, in spec order.
    pub rules: Vec<FaultRule>,
}

impl ChaosSpec {
    /// Parse a spec string. Returns a human-readable error for malformed
    /// entries, unknown sites/kinds, or per-site probabilities over 1.
    pub fn parse(spec: &str) -> Result<ChaosSpec, String> {
        let mut seed = 0u64;
        let mut rules = Vec::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("chaos entry `{entry}` is not key=value"))?;
            if key == "seed" {
                seed = value
                    .parse()
                    .map_err(|_| format!("chaos seed `{value}` is not a u64"))?;
                continue;
            }
            let site =
                FaultSite::from_key(key).ok_or_else(|| format!("unknown fault site `{key}`"))?;
            let mut parts = value.split(':');
            let kind = match parts.next() {
                Some("error") => FaultKind::Error,
                Some("latency") => FaultKind::Latency,
                Some("truncate") => FaultKind::Truncate,
                other => return Err(format!("unknown fault kind `{}`", other.unwrap_or(""))),
            };
            let prob_text = parts
                .next()
                .ok_or_else(|| format!("rule `{entry}` is missing a probability"))?;
            let probability: f64 = prob_text
                .parse()
                .map_err(|_| format!("probability `{prob_text}` is not a number"))?;
            if !(0.0..=1.0).contains(&probability) {
                return Err(format!("probability {probability} outside [0, 1]"));
            }
            let param = match parts.next() {
                Some(p) => p
                    .parse()
                    .map_err(|_| format!("parameter `{p}` is not a u64"))?,
                None => match kind {
                    FaultKind::Latency => 10,
                    FaultKind::Truncate => 50,
                    FaultKind::Error => 0,
                },
            };
            if kind == FaultKind::Truncate && !(1..=99).contains(&param) {
                return Err(format!("truncate keep-percent {param} outside 1..=99"));
            }
            rules.push(FaultRule {
                site,
                kind,
                probability,
                param,
            });
        }
        for site in ALL_SITES {
            let total: f64 = rules
                .iter()
                .filter(|r| r.site == site)
                .map(|r| r.probability)
                .sum();
            if total > 1.0 + 1e-9 {
                return Err(format!(
                    "probabilities for site `{}` sum to {total} (> 1)",
                    site.key()
                ));
            }
        }
        Ok(ChaosSpec { seed, rules })
    }
}

/// The number of distinct (site, kind) cells tracked by the tally.
const KINDS: usize = 3;

/// Live chaos state: the compiled spec plus per-site decision counters
/// and per-(site, kind) injection tallies.
#[derive(Debug)]
struct ChaosState {
    seed: u64,
    /// Rules grouped per site (probability thresholds evaluated in order).
    per_site: [Vec<(FaultKind, f64, u64)>; 5],
    /// Evaluation sequence number per site.
    seq: [AtomicU64; 5],
    /// Injection tally per (site, kind).
    injected: [[AtomicU64; KINDS]; 5],
}

impl ChaosState {
    fn new(spec: &ChaosSpec) -> ChaosState {
        let mut per_site: [Vec<(FaultKind, f64, u64)>; 5] = Default::default();
        for rule in &spec.rules {
            per_site[rule.site.index()].push((rule.kind, rule.probability, rule.param));
        }
        ChaosState {
            seed: spec.seed,
            per_site,
            seq: Default::default(),
            injected: Default::default(),
        }
    }

    /// Decide the fate of the next evaluation at `site`: a pure function
    /// of `(seed, site, n)` where `n` is the per-site sequence number.
    fn decide(&self, site: FaultSite) -> Option<FaultAction> {
        let idx = site.index();
        let rules = &self.per_site[idx];
        if rules.is_empty() {
            return None;
        }
        let n = self.seq[idx].fetch_add(1, Ordering::Relaxed);
        let r = unit_from(self.seed, idx as u64, n);
        let mut threshold = 0.0;
        for &(kind, probability, param) in rules {
            threshold += probability;
            if r < threshold {
                self.injected[idx][kind_index(kind)].fetch_add(1, Ordering::Relaxed);
                sww_obs::counter(
                    "sww_faults_injected_total",
                    &[("site", site.key()), ("kind", kind.label())],
                )
                .inc();
                return Some(match kind {
                    FaultKind::Error => FaultAction::Error,
                    FaultKind::Latency => FaultAction::Latency(Duration::from_millis(param)),
                    FaultKind::Truncate => FaultAction::TruncateKeepPct(param.clamp(1, 99) as u8),
                });
            }
        }
        None
    }

    fn injected_total(&self) -> u64 {
        self.injected
            .iter()
            .flatten()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

fn kind_index(kind: FaultKind) -> usize {
    match kind {
        FaultKind::Error => 0,
        FaultKind::Latency => 1,
        FaultKind::Truncate => 2,
    }
}

/// SplitMix64: the decision PRNG. Statistically adequate for coin flips
/// and, crucially, a pure function of its input — no hidden state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Uniform draw in `[0, 1)` from `(seed, site, n)`.
fn unit_from(seed: u64, site: u64, n: u64) -> f64 {
    let mixed = splitmix64(splitmix64(seed ^ site.wrapping_mul(0xa076_1d64_78bd_642f)) ^ n);
    (mixed >> 11) as f64 / (1u64 << 53) as f64
}

/// Fast-path switch: callers pay one relaxed load when chaos is off.
static ENABLED: AtomicBool = AtomicBool::new(false);

fn state_slot() -> &'static Mutex<Option<Arc<ChaosState>>> {
    static SLOT: std::sync::OnceLock<Mutex<Option<Arc<ChaosState>>>> = std::sync::OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Install a chaos spec process-wide, arming every failpoint it names.
/// Replaces any previously installed spec (tallies restart at zero).
pub fn install(spec: &ChaosSpec) {
    *state_slot().lock() = Some(Arc::new(ChaosState::new(spec)));
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disarm all failpoints and drop the installed state.
pub fn clear() {
    ENABLED.store(false, Ordering::SeqCst);
    *state_slot().lock() = None;
}

/// Whether a chaos spec is currently installed.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Evaluate the failpoint at `site`: `None` (the overwhelmingly common
/// answer, and a single atomic load when chaos is off) means proceed
/// normally; `Some(action)` tells the call site what to inject.
pub fn at(site: FaultSite) -> Option<FaultAction> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    let state = state_slot().lock().clone()?;
    state.decide(site)
}

/// Total faults injected since the current spec was installed.
pub fn injected_total() -> u64 {
    state_slot()
        .lock()
        .as_ref()
        .map(|s| s.injected_total())
        .unwrap_or(0)
}

/// Injection tally per `(site key, kind label)`, zero entries omitted.
pub fn injected_counts() -> Vec<(&'static str, &'static str, u64)> {
    let Some(state) = state_slot().lock().clone() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for site in ALL_SITES {
        for kind in [FaultKind::Error, FaultKind::Latency, FaultKind::Truncate] {
            let n = state.injected[site.index()][kind_index(kind)].load(Ordering::Relaxed);
            if n > 0 {
                out.push((site.key(), kind.label(), n));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests exercise `ChaosState` directly rather than the global
    // install/clear switch: unit tests across the crate run in parallel
    // threads of one process, and arming the process-wide registry here
    // would inject faults into unrelated tests. Global behaviour is
    // covered by `tests/chaos_resilience.rs`, which owns its binary.

    #[test]
    fn parses_full_spec() {
        let spec = ChaosSpec::parse(
            "seed=42,engine.generate=error:0.1,pool.enqueue=error:0.05,\
             h2.read=latency:0.2:15,server.respond=truncate:0.05:75",
        )
        .unwrap();
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.rules.len(), 4);
        assert_eq!(spec.rules[0].site, FaultSite::EngineGenerate);
        assert_eq!(spec.rules[2].kind, FaultKind::Latency);
        assert_eq!(spec.rules[2].param, 15);
        assert_eq!(spec.rules[3].param, 75);
    }

    #[test]
    fn default_params_apply() {
        let spec = ChaosSpec::parse("h2.read=latency:0.5,server.respond=truncate:0.5").unwrap();
        assert_eq!(spec.rules[0].param, 10, "latency defaults to 10 ms");
        assert_eq!(spec.rules[1].param, 50, "truncate defaults to keep 50%");
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "engine.generate",                                       // no '='
            "nowhere.at.all=error:0.1",                              // unknown site
            "engine.generate=explode:0.1",                           // unknown kind
            "engine.generate=error",                                 // missing probability
            "engine.generate=error:1.5",                             // probability out of range
            "seed=notanumber",                                       // bad seed
            "server.respond=truncate:0.1:100",                       // keep-percent out of range
            "engine.generate=error:0.6,engine.generate=latency:0.6", // sums > 1
        ] {
            assert!(ChaosSpec::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn empty_spec_is_quiet() {
        let spec = ChaosSpec::parse("seed=7").unwrap();
        let state = ChaosState::new(&spec);
        for _ in 0..100 {
            assert_eq!(state.decide(FaultSite::EngineGenerate), None);
        }
        assert_eq!(state.injected_total(), 0);
    }

    #[test]
    fn identical_seeds_yield_identical_decision_sequences() {
        let spec =
            ChaosSpec::parse("seed=1234,engine.generate=error:0.3,h2.read=latency:0.25:5").unwrap();
        let a = ChaosState::new(&spec);
        let b = ChaosState::new(&spec);
        for _ in 0..500 {
            assert_eq!(
                a.decide(FaultSite::EngineGenerate),
                b.decide(FaultSite::EngineGenerate)
            );
            assert_eq!(a.decide(FaultSite::H2Read), b.decide(FaultSite::H2Read));
        }
        assert_eq!(a.injected_total(), b.injected_total());
        assert!(a.injected_total() > 0, "a 30% coin must land in 500 draws");
    }

    #[test]
    fn different_seeds_diverge() {
        let mk = |seed: u64| {
            let spec = ChaosSpec {
                seed,
                rules: vec![FaultRule {
                    site: FaultSite::EngineGenerate,
                    kind: FaultKind::Error,
                    probability: 0.5,
                    param: 0,
                }],
            };
            let state = ChaosState::new(&spec);
            (0..64)
                .map(|_| state.decide(FaultSite::EngineGenerate).is_some())
                .collect::<Vec<bool>>()
        };
        assert_ne!(mk(1), mk(2), "64 fair coins agreeing is ~2^-64");
    }

    #[test]
    fn injection_rate_tracks_probability() {
        let spec = ChaosSpec::parse("seed=9,pool.enqueue=error:0.1").unwrap();
        let state = ChaosState::new(&spec);
        let n = 10_000;
        let injected = (0..n)
            .filter(|_| state.decide(FaultSite::PoolEnqueue).is_some())
            .count();
        let rate = injected as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.02, "rate {rate} far from 0.1");
        assert_eq!(state.injected_total(), injected as u64);
    }

    #[test]
    fn sites_draw_independent_streams() {
        let spec =
            ChaosSpec::parse("seed=5,engine.generate=error:0.5,pool.enqueue=error:0.5").unwrap();
        let state = ChaosState::new(&spec);
        let a: Vec<bool> = (0..64)
            .map(|_| state.decide(FaultSite::EngineGenerate).is_some())
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|_| state.decide(FaultSite::PoolEnqueue).is_some())
            .collect();
        assert_ne!(a, b, "same stream at two sites");
    }

    #[test]
    fn actions_carry_their_parameters() {
        let spec = ChaosSpec::parse("seed=3,h2.read=latency:1.0:25,server.respond=truncate:1.0:40")
            .unwrap();
        let state = ChaosState::new(&spec);
        assert_eq!(
            state.decide(FaultSite::H2Read),
            Some(FaultAction::Latency(Duration::from_millis(25)))
        );
        assert_eq!(
            state.decide(FaultSite::ServerRespond),
            Some(FaultAction::TruncateKeepPct(40))
        );
    }

    #[test]
    fn disabled_global_registry_is_quiet() {
        // The global switch defaults to off; `at` must answer None without
        // touching any state. (Do not install here — see module note.)
        if !enabled() {
            assert_eq!(at(FaultSite::EngineGenerate), None);
            assert_eq!(injected_total(), 0);
        }
    }
}
