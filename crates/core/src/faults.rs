//! Deterministic fault injection for the serving stack.
//!
//! The paper's deployment story assumes generation can fail or stall on
//! either end — ability negotiation exists precisely so a peer can fall
//! back to traditional media (§3, §7) — yet a failure path that cannot
//! be exercised on demand is a failure path that rots. This module is a
//! seeded failpoint registry: six well-known **sites** in the stack can
//! be made to inject errors, added latency, or payload truncation with
//! per-site probabilities, and every decision is drawn from a seeded
//! PRNG so a chaos run is reproducible.
//!
//! | Site key          | Where it fires                                   |
//! |-------------------|--------------------------------------------------|
//! | `engine.generate` | `GenerationEngine::try_fetch_image` (leader path) and the client's per-item generation |
//! | `pool.enqueue`    | `WorkerPool::try_execute` (admission)            |
//! | `cache.get`       | `GenerationCache::get` (lookup becomes a miss)   |
//! | `h2.read`         | `GenerativeClient` transport reads               |
//! | `server.respond`  | `server::dispatch`, wrapping the whole response  |
//! | `gossip.send`     | `Gossip::tick` message delivery (drops only)     |
//!
//! # Determinism
//!
//! Each site keeps a monotone evaluation counter; the decision for the
//! *n*-th evaluation at a site is a pure function of `(seed, site, n)`.
//! Single-threaded runs are therefore bit-for-bit reproducible; under
//! concurrency the multiset of decisions per site is fixed by the seed
//! even though which request draws which decision depends on thread
//! interleaving.
//!
//! # Scoped streams
//!
//! The registry is installed process-wide, but draws can be **scoped**:
//! a [`FaultScope`] derives an independent decision stream from
//! `(spec seed ⊕ scope label)` with its own counters, rebuilt fresh
//! whenever a new spec is installed. Every [`GenerativeServer`] owns a
//! scope (label `server`, relabelled to the node id when it joins an
//! edge cluster) and enters it for the duration of each dispatch, so:
//!
//! * multi-node chaos runs inject *independent per-node* streams — one
//!   node's draw volume no longer shifts another node's decisions;
//! * two runs on fresh stacks replay identically even when an earlier
//!   run already consumed the global stream (scope counters start at
//!   zero per instance), which is what lets `bench-workload` keep its
//!   response-digest determinism gate armed under `--chaos`.
//!
//! Draws outside any scope (client-side sites, gossip delivery) fall
//! through to the global stream. Pool-worker threads execute jobs
//! outside the dispatching thread's scope and also use the global
//! stream.
//!
//! # Zero cost when off
//!
//! [`at`] is a single relaxed atomic load when no spec is installed —
//! the hot path pays nothing until chaos is explicitly enabled via
//! [`install`] (e.g. `sww serve --chaos <spec>`).
//!
//! Observability: every injected fault — scoped or global — increments
//! `sww_faults_injected_total{site,kind}` and one process-wide tally
//! (readable via [`injected_total`] / [`injected_counts`]) so chaos
//! suites can reconcile the exposition against ground truth.
//!
//! [`GenerativeServer`]: crate::GenerativeServer

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The failpoint sites threaded through the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A generation about to run (engine leader, or client-side item).
    EngineGenerate,
    /// A job being admitted to the worker pool.
    PoolEnqueue,
    /// A generation-cache lookup.
    CacheGet,
    /// A transport read on the client connection.
    H2Read,
    /// The server producing a response.
    ServerRespond,
    /// A gossip message about to be delivered (`error` drops it; other
    /// kinds are no-ops under the virtual clock).
    GossipSend,
}

/// The number of sites.
const SITES: usize = 6;

/// All sites, in spec/display order.
pub const ALL_SITES: [FaultSite; SITES] = [
    FaultSite::EngineGenerate,
    FaultSite::PoolEnqueue,
    FaultSite::CacheGet,
    FaultSite::H2Read,
    FaultSite::ServerRespond,
    FaultSite::GossipSend,
];

impl FaultSite {
    /// The spec key for this site (`engine.generate`, ...).
    pub fn key(self) -> &'static str {
        match self {
            FaultSite::EngineGenerate => "engine.generate",
            FaultSite::PoolEnqueue => "pool.enqueue",
            FaultSite::CacheGet => "cache.get",
            FaultSite::H2Read => "h2.read",
            FaultSite::ServerRespond => "server.respond",
            FaultSite::GossipSend => "gossip.send",
        }
    }

    fn from_key(key: &str) -> Option<FaultSite> {
        ALL_SITES.iter().copied().find(|s| s.key() == key)
    }

    fn index(self) -> usize {
        match self {
            FaultSite::EngineGenerate => 0,
            FaultSite::PoolEnqueue => 1,
            FaultSite::CacheGet => 2,
            FaultSite::H2Read => 3,
            FaultSite::ServerRespond => 4,
            FaultSite::GossipSend => 5,
        }
    }
}

/// What kind of fault a rule injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails outright.
    Error,
    /// The operation is delayed before proceeding normally.
    Latency,
    /// The payload is truncated (byte-stream sites only; sites without a
    /// payload treat a truncate draw as a no-op).
    Truncate,
}

impl FaultKind {
    fn label(self) -> &'static str {
        match self {
            FaultKind::Error => "error",
            FaultKind::Latency => "latency",
            FaultKind::Truncate => "truncate",
        }
    }
}

/// The action an armed failpoint tells its call site to take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the operation (the site maps this to its natural error).
    Error,
    /// Sleep this long, then proceed normally.
    Latency(Duration),
    /// Keep only this percentage of the payload (1..=99).
    TruncateKeepPct(u8),
}

impl FaultAction {
    fn kind(self) -> FaultKind {
        match self {
            FaultAction::Error => FaultKind::Error,
            FaultAction::Latency(_) => FaultKind::Latency,
            FaultAction::TruncateKeepPct(_) => FaultKind::Truncate,
        }
    }
}

/// One parsed rule: inject `kind` at `site` with `probability`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// Where to inject.
    pub site: FaultSite,
    /// What to inject.
    pub kind: FaultKind,
    /// Per-evaluation probability in `[0, 1]`.
    pub probability: f64,
    /// Kind-specific parameter: latency milliseconds (default 10) or
    /// truncation keep-percent (default 50).
    pub param: u64,
}

/// A parsed `--chaos` spec: a seed plus fault rules.
///
/// Grammar (comma-separated entries):
///
/// ```text
/// seed=<u64>
/// <site>=<kind>:<probability>[:<param>]
/// ```
///
/// e.g. `seed=42,engine.generate=error:0.1,pool.enqueue=error:0.05,
/// h2.read=latency:0.2:15,server.respond=truncate:0.05:50`. Repeated
/// entries for a site accumulate; their probabilities must sum to ≤ 1.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// PRNG seed; identical seeds yield identical decision sequences.
    pub seed: u64,
    /// The fault rules, in spec order.
    pub rules: Vec<FaultRule>,
}

impl ChaosSpec {
    /// Parse a spec string. Returns a human-readable error for malformed
    /// entries, unknown sites/kinds, or per-site probabilities over 1.
    pub fn parse(spec: &str) -> Result<ChaosSpec, String> {
        let mut seed = 0u64;
        let mut rules = Vec::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("chaos entry `{entry}` is not key=value"))?;
            if key == "seed" {
                seed = value
                    .parse()
                    .map_err(|_| format!("chaos seed `{value}` is not a u64"))?;
                continue;
            }
            let site =
                FaultSite::from_key(key).ok_or_else(|| format!("unknown fault site `{key}`"))?;
            let mut parts = value.split(':');
            let kind = match parts.next() {
                Some("error") => FaultKind::Error,
                Some("latency") => FaultKind::Latency,
                Some("truncate") => FaultKind::Truncate,
                other => return Err(format!("unknown fault kind `{}`", other.unwrap_or(""))),
            };
            let prob_text = parts
                .next()
                .ok_or_else(|| format!("rule `{entry}` is missing a probability"))?;
            let probability: f64 = prob_text
                .parse()
                .map_err(|_| format!("probability `{prob_text}` is not a number"))?;
            if !(0.0..=1.0).contains(&probability) {
                return Err(format!("probability {probability} outside [0, 1]"));
            }
            let param = match parts.next() {
                Some(p) => p
                    .parse()
                    .map_err(|_| format!("parameter `{p}` is not a u64"))?,
                None => match kind {
                    FaultKind::Latency => 10,
                    FaultKind::Truncate => 50,
                    FaultKind::Error => 0,
                },
            };
            if kind == FaultKind::Truncate && !(1..=99).contains(&param) {
                return Err(format!("truncate keep-percent {param} outside 1..=99"));
            }
            rules.push(FaultRule {
                site,
                kind,
                probability,
                param,
            });
        }
        for site in ALL_SITES {
            let total: f64 = rules
                .iter()
                .filter(|r| r.site == site)
                .map(|r| r.probability)
                .sum();
            if total > 1.0 + 1e-9 {
                return Err(format!(
                    "probabilities for site `{}` sum to {total} (> 1)",
                    site.key()
                ));
            }
        }
        Ok(ChaosSpec { seed, rules })
    }
}

/// The number of distinct (site, kind) cells tracked by the tally.
const KINDS: usize = 3;

/// One compiled decision stream: per-site rules, sequence counters, and
/// a local injection tally. The global stream and every scope hold one.
#[derive(Debug)]
struct ChaosState {
    seed: u64,
    /// Rules grouped per site (probability thresholds evaluated in order).
    per_site: [Vec<(FaultKind, f64, u64)>; SITES],
    /// Evaluation sequence number per site.
    seq: [AtomicU64; SITES],
    /// Injection tally per (site, kind) for this stream alone.
    injected: [[AtomicU64; KINDS]; SITES],
}

impl ChaosState {
    fn new(spec: &ChaosSpec) -> ChaosState {
        ChaosState::with_seed(spec, spec.seed)
    }

    /// Compile `spec`'s rules but draw from `seed` — how scopes derive
    /// independent streams from one installed spec.
    fn with_seed(spec: &ChaosSpec, seed: u64) -> ChaosState {
        let mut per_site: [Vec<(FaultKind, f64, u64)>; SITES] = Default::default();
        for rule in &spec.rules {
            per_site[rule.site.index()].push((rule.kind, rule.probability, rule.param));
        }
        ChaosState {
            seed,
            per_site,
            seq: Default::default(),
            injected: Default::default(),
        }
    }

    /// Decide the fate of the next evaluation at `site`: a pure function
    /// of `(seed, site, n)` where `n` is the per-site sequence number.
    fn decide(&self, site: FaultSite) -> Option<FaultAction> {
        let idx = site.index();
        let rules = &self.per_site[idx];
        if rules.is_empty() {
            return None;
        }
        let n = self.seq[idx].fetch_add(1, Ordering::Relaxed);
        let r = unit_from(self.seed, idx as u64, n);
        let mut threshold = 0.0;
        for &(kind, probability, param) in rules {
            threshold += probability;
            if r < threshold {
                self.injected[idx][kind_index(kind)].fetch_add(1, Ordering::Relaxed);
                return Some(match kind {
                    FaultKind::Error => FaultAction::Error,
                    FaultKind::Latency => FaultAction::Latency(Duration::from_millis(param)),
                    FaultKind::Truncate => FaultAction::TruncateKeepPct(param.clamp(1, 99) as u8),
                });
            }
        }
        None
    }

    /// This stream's own tally (unit-test surface; the process-wide
    /// tally the chaos suites reconcile against is [`injected_total`]).
    #[cfg(test)]
    fn injected_total(&self) -> u64 {
        self.injected
            .iter()
            .flatten()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

fn kind_index(kind: FaultKind) -> usize {
    match kind {
        FaultKind::Error => 0,
        FaultKind::Latency => 1,
        FaultKind::Truncate => 2,
    }
}

/// SplitMix64: the decision PRNG. Statistically adequate for coin flips
/// and, crucially, a pure function of its input — no hidden state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Uniform draw in `[0, 1)` from `(seed, site, n)`.
fn unit_from(seed: u64, site: u64, n: u64) -> f64 {
    let mixed = splitmix64(splitmix64(seed ^ site.wrapping_mul(0xa076_1d64_78bd_642f)) ^ n);
    (mixed >> 11) as f64 / (1u64 << 53) as f64
}

/// Fast-path switch: callers pay one relaxed load when chaos is off.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Bumped on every install/clear so scopes know to rebuild their
/// derived streams (fresh counters) against the new spec.
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// The installed spec plus its compiled global stream.
struct Installed {
    spec: ChaosSpec,
    state: Arc<ChaosState>,
}

fn state_slot() -> &'static Mutex<Option<Installed>> {
    static SLOT: std::sync::OnceLock<Mutex<Option<Installed>>> = std::sync::OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Process-wide injection tally per (site, kind), fed by every stream —
/// global and scoped — so `/metrics` reconciliation sees one truth.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_ROW: [AtomicU64; KINDS] = [ZERO; KINDS];
static INJECTED: [[AtomicU64; KINDS]; SITES] = [ZERO_ROW; SITES];

fn reset_tallies() {
    for site in &INJECTED {
        for cell in site {
            cell.store(0, Ordering::Relaxed);
        }
    }
}

/// Record one injection in the process-wide tally and the exposition.
fn record(site: FaultSite, kind: FaultKind) {
    INJECTED[site.index()][kind_index(kind)].fetch_add(1, Ordering::Relaxed);
    sww_obs::counter(
        "sww_faults_injected_total",
        &[("site", site.key()), ("kind", kind.label())],
    )
    .inc();
}

/// Install a chaos spec process-wide, arming every failpoint it names.
/// Replaces any previously installed spec (tallies restart at zero, and
/// every [`FaultScope`] rebuilds its derived stream on next use).
pub fn install(spec: &ChaosSpec) {
    *state_slot().lock() = Some(Installed {
        spec: spec.clone(),
        state: Arc::new(ChaosState::new(spec)),
    });
    reset_tallies();
    GENERATION.fetch_add(1, Ordering::SeqCst);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disarm all failpoints and drop the installed state.
pub fn clear() {
    ENABLED.store(false, Ordering::SeqCst);
    *state_slot().lock() = None;
    reset_tallies();
    GENERATION.fetch_add(1, Ordering::SeqCst);
}

/// Whether a chaos spec is currently installed.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A derived per-scope decision stream (one per server/edge node).
///
/// A scope compiles the installed spec against `seed ⊕ hash(label)`
/// with its own sequence counters, lazily and once per installed spec:
/// two fresh instances with the same label replay the same stream, and
/// two different labels draw independent streams. See the module-level
/// *Scoped streams* section.
#[derive(Debug)]
pub struct FaultScope {
    inner: Mutex<ScopeInner>,
}

#[derive(Debug)]
struct ScopeInner {
    label_seed: u64,
    built_generation: u64,
    state: Option<Arc<ChaosState>>,
}

impl FaultScope {
    /// A scope deriving its stream from `label`.
    pub fn new(label: &str) -> FaultScope {
        FaultScope {
            inner: Mutex::new(ScopeInner {
                label_seed: label_seed(label),
                built_generation: 0,
                state: None,
            }),
        }
    }

    /// Re-derive the scope from a new label (the edge router relabels a
    /// node's server scope to the node id on join). Drops any compiled
    /// stream so counters restart under the new label.
    pub fn relabel(&self, label: &str) {
        let mut inner = self.inner.lock();
        inner.label_seed = label_seed(label);
        inner.state = None;
    }

    fn decide(&self, site: FaultSite) -> Option<FaultAction> {
        let state = {
            let mut inner = self.inner.lock();
            let generation = GENERATION.load(Ordering::SeqCst);
            if inner.state.is_none() || inner.built_generation != generation {
                inner.state = state_slot().lock().as_ref().map(|installed| {
                    Arc::new(ChaosState::with_seed(
                        &installed.spec,
                        installed.spec.seed ^ inner.label_seed,
                    ))
                });
                inner.built_generation = generation;
            }
            inner.state.clone()
        }?;
        state.decide(site)
    }
}

/// Stable label hash for scope-seed derivation.
fn label_seed(label: &str) -> u64 {
    let mut acc = 0x73_63_6f_70_65_u64; // "scope"
    for &b in label.as_bytes() {
        acc = splitmix64(acc ^ u64::from(b));
    }
    acc
}

thread_local! {
    /// The stack of scopes the current thread has entered; draws use
    /// the innermost.
    static ACTIVE_SCOPES: RefCell<Vec<Arc<FaultScope>>> = const { RefCell::new(Vec::new()) };
}

/// RAII token from [`enter`]; leaving the scope is dropping it.
#[must_use = "dropping the guard leaves the scope immediately"]
pub struct ScopeGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        ACTIVE_SCOPES.with(|scopes| {
            scopes.borrow_mut().pop();
        });
    }
}

/// Route this thread's fault draws through `scope` until the returned
/// guard drops. Scopes nest; the innermost wins.
pub fn enter(scope: &Arc<FaultScope>) -> ScopeGuard {
    ACTIVE_SCOPES.with(|scopes| scopes.borrow_mut().push(Arc::clone(scope)));
    ScopeGuard {
        _not_send: std::marker::PhantomData,
    }
}

/// Evaluate the failpoint at `site`: `None` (the overwhelmingly common
/// answer, and a single atomic load when chaos is off) means proceed
/// normally; `Some(action)` tells the call site what to inject. Draws
/// come from the innermost entered [`FaultScope`] on this thread, or
/// the global stream outside any scope.
pub fn at(site: FaultSite) -> Option<FaultAction> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    let scoped = ACTIVE_SCOPES.with(|scopes| scopes.borrow().last().cloned());
    let action = match scoped {
        Some(scope) => scope.decide(site)?,
        None => {
            let state = state_slot().lock().as_ref().map(|i| Arc::clone(&i.state))?;
            state.decide(site)?
        }
    };
    record(site, action.kind());
    Some(action)
}

/// Total faults injected since the current spec was installed, summed
/// across the global stream and every scope.
pub fn injected_total() -> u64 {
    INJECTED
        .iter()
        .flatten()
        .map(|c| c.load(Ordering::Relaxed))
        .sum()
}

/// Injection tally per `(site key, kind label)`, zero entries omitted.
/// Like [`injected_total`], covers scoped and global draws alike.
pub fn injected_counts() -> Vec<(&'static str, &'static str, u64)> {
    let mut out = Vec::new();
    for site in ALL_SITES {
        for kind in [FaultKind::Error, FaultKind::Latency, FaultKind::Truncate] {
            let n = INJECTED[site.index()][kind_index(kind)].load(Ordering::Relaxed);
            if n > 0 {
                out.push((site.key(), kind.label(), n));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests exercise `ChaosState` directly rather than the global
    // install/clear switch: unit tests across the crate run in parallel
    // threads of one process, and arming the process-wide registry here
    // would inject faults into unrelated tests. Global behaviour —
    // including scoped draws through `at` — is covered by
    // `tests/chaos_resilience.rs`, which owns its binary.

    #[test]
    fn parses_full_spec() {
        let spec = ChaosSpec::parse(
            "seed=42,engine.generate=error:0.1,pool.enqueue=error:0.05,\
             h2.read=latency:0.2:15,server.respond=truncate:0.05:75",
        )
        .unwrap();
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.rules.len(), 4);
        assert_eq!(spec.rules[0].site, FaultSite::EngineGenerate);
        assert_eq!(spec.rules[2].kind, FaultKind::Latency);
        assert_eq!(spec.rules[2].param, 15);
        assert_eq!(spec.rules[3].param, 75);
    }

    #[test]
    fn parses_gossip_site() {
        let spec = ChaosSpec::parse("seed=3,gossip.send=error:0.25").unwrap();
        assert_eq!(spec.rules[0].site, FaultSite::GossipSend);
        assert_eq!(spec.rules[0].kind, FaultKind::Error);
    }

    #[test]
    fn default_params_apply() {
        let spec = ChaosSpec::parse("h2.read=latency:0.5,server.respond=truncate:0.5").unwrap();
        assert_eq!(spec.rules[0].param, 10, "latency defaults to 10 ms");
        assert_eq!(spec.rules[1].param, 50, "truncate defaults to keep 50%");
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "engine.generate",                                       // no '='
            "nowhere.at.all=error:0.1",                              // unknown site
            "engine.generate=explode:0.1",                           // unknown kind
            "engine.generate=error",                                 // missing probability
            "engine.generate=error:1.5",                             // probability out of range
            "seed=notanumber",                                       // bad seed
            "server.respond=truncate:0.1:100",                       // keep-percent out of range
            "engine.generate=error:0.6,engine.generate=latency:0.6", // sums > 1
        ] {
            assert!(ChaosSpec::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn empty_spec_is_quiet() {
        let spec = ChaosSpec::parse("seed=7").unwrap();
        let state = ChaosState::new(&spec);
        for _ in 0..100 {
            assert_eq!(state.decide(FaultSite::EngineGenerate), None);
        }
        assert_eq!(state.injected_total(), 0);
    }

    #[test]
    fn identical_seeds_yield_identical_decision_sequences() {
        let spec =
            ChaosSpec::parse("seed=1234,engine.generate=error:0.3,h2.read=latency:0.25:5").unwrap();
        let a = ChaosState::new(&spec);
        let b = ChaosState::new(&spec);
        for _ in 0..500 {
            assert_eq!(
                a.decide(FaultSite::EngineGenerate),
                b.decide(FaultSite::EngineGenerate)
            );
            assert_eq!(a.decide(FaultSite::H2Read), b.decide(FaultSite::H2Read));
        }
        assert_eq!(a.injected_total(), b.injected_total());
        assert!(a.injected_total() > 0, "a 30% coin must land in 500 draws");
    }

    #[test]
    fn different_seeds_diverge() {
        let mk = |seed: u64| {
            let spec = ChaosSpec {
                seed,
                rules: vec![FaultRule {
                    site: FaultSite::EngineGenerate,
                    kind: FaultKind::Error,
                    probability: 0.5,
                    param: 0,
                }],
            };
            let state = ChaosState::new(&spec);
            (0..64)
                .map(|_| state.decide(FaultSite::EngineGenerate).is_some())
                .collect::<Vec<bool>>()
        };
        assert_ne!(mk(1), mk(2), "64 fair coins agreeing is ~2^-64");
    }

    #[test]
    fn scope_seed_derivation_is_stable_and_label_dependent() {
        // The scoped stream is `with_seed(spec, seed ^ hash(label))`:
        // same label → identical replay, different label → independent.
        let spec = ChaosSpec::parse("seed=11,engine.generate=error:0.5").unwrap();
        let draws = |label: &str| {
            let state = ChaosState::with_seed(&spec, spec.seed ^ label_seed(label));
            (0..64)
                .map(|_| state.decide(FaultSite::EngineGenerate).is_some())
                .collect::<Vec<bool>>()
        };
        assert_eq!(draws("n0"), draws("n0"), "same label must replay");
        assert_ne!(draws("n0"), draws("n1"), "labels must draw independently");
        assert_ne!(
            draws("n0"),
            {
                let state = ChaosState::new(&spec);
                (0..64)
                    .map(|_| state.decide(FaultSite::EngineGenerate).is_some())
                    .collect::<Vec<bool>>()
            },
            "a scope must not mirror the global stream"
        );
    }

    #[test]
    fn injection_rate_tracks_probability() {
        let spec = ChaosSpec::parse("seed=9,pool.enqueue=error:0.1").unwrap();
        let state = ChaosState::new(&spec);
        let n = 10_000;
        let injected = (0..n)
            .filter(|_| state.decide(FaultSite::PoolEnqueue).is_some())
            .count();
        let rate = injected as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.02, "rate {rate} far from 0.1");
        assert_eq!(state.injected_total(), injected as u64);
    }

    #[test]
    fn sites_draw_independent_streams() {
        let spec =
            ChaosSpec::parse("seed=5,engine.generate=error:0.5,pool.enqueue=error:0.5").unwrap();
        let state = ChaosState::new(&spec);
        let a: Vec<bool> = (0..64)
            .map(|_| state.decide(FaultSite::EngineGenerate).is_some())
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|_| state.decide(FaultSite::PoolEnqueue).is_some())
            .collect();
        assert_ne!(a, b, "same stream at two sites");
    }

    #[test]
    fn actions_carry_their_parameters() {
        let spec = ChaosSpec::parse("seed=3,h2.read=latency:1.0:25,server.respond=truncate:1.0:40")
            .unwrap();
        let state = ChaosState::new(&spec);
        assert_eq!(
            state.decide(FaultSite::H2Read),
            Some(FaultAction::Latency(Duration::from_millis(25)))
        );
        assert_eq!(
            state.decide(FaultSite::ServerRespond),
            Some(FaultAction::TruncateKeepPct(40))
        );
    }

    #[test]
    fn disabled_global_registry_is_quiet() {
        // The global switch defaults to off; `at` must answer None without
        // touching any state. (Do not install here — see module note.)
        if !enabled() {
            assert_eq!(at(FaultSite::EngineGenerate), None);
        }
    }
}
