//! Request lifecycle: deadlines and cooperative cancellation.
//!
//! A [`RequestCtx`] travels with a request from the HTTP/2 session down
//! through admission control, the worker pool, the single-flight engine,
//! the batch scheduler, and (as a [`StepCancel`](sww_genai::StepCancel)
//! probe, since `sww-genai` sits below this crate) into the diffusion
//! step loop. It carries two
//! facts the whole stack agrees on:
//!
//! * **deadline** — an absolute instant after which nobody wants the
//!   response anymore. Expiry maps to [`SwwError::DeadlineExceeded`]
//!   (HTTP 504) in the single `server::error_response` path.
//! * **cancel flag** — an explicit "stop now" the owner can flip (client
//!   disconnect, shutdown), checked at the same sites as the deadline.
//!
//! Cancellation is *cooperative*: nothing is killed. Each layer polls
//! [`RequestCtx::finished`] at its natural yield points — queue pop,
//! condvar wake, denoise step — and unwinds with `DeadlineExceeded`. The
//! waiter refcount that decides when a coalesced flight may actually die
//! lives on the engine's flight entry (see `engine.rs`): a flight is only
//! abandoned when every request attached to it has finished, so one
//! cancelled leader can never poison a result that still has waiters.
#![warn(clippy::must_use_candidate)]

use crate::error::SwwError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The per-request lifecycle handle: deadline + cooperative cancel flag.
///
/// Cloning is cheap (one `Arc` bump) and every clone observes the same
/// state, so the same ctx can be polled concurrently by the session
/// thread, a pool worker, and a flight leader.
#[derive(Debug, Clone)]
pub struct RequestCtx {
    inner: Arc<CtxInner>,
}

#[derive(Debug)]
struct CtxInner {
    deadline: Option<Instant>,
    budget: Option<Duration>,
    cancelled: AtomicBool,
}

impl RequestCtx {
    /// A context with no deadline and no cancellation: the pre-lifecycle
    /// behaviour. All legacy entry points delegate through this.
    #[must_use]
    pub fn unbounded() -> RequestCtx {
        RequestCtx {
            inner: Arc::new(CtxInner {
                deadline: None,
                budget: None,
                cancelled: AtomicBool::new(false),
            }),
        }
    }

    /// A context whose deadline is `budget` from now.
    #[must_use]
    pub fn with_deadline(budget: Duration) -> RequestCtx {
        RequestCtx {
            inner: Arc::new(CtxInner {
                deadline: Some(Instant::now() + budget),
                budget: Some(budget),
                cancelled: AtomicBool::new(false),
            }),
        }
    }

    /// Flip the cooperative cancel flag. Idempotent; takes effect at the
    /// next lifecycle checkpoint each layer polls.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether [`cancel`](RequestCtx::cancel) has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// The absolute deadline, if one was set.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// The original deadline budget, if one was set.
    #[must_use]
    pub fn budget(&self) -> Option<Duration> {
        self.inner.budget
    }

    /// Time left before the deadline. `None` when no deadline was set
    /// (infinite budget); `Some(ZERO)` once expired.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Whether the deadline has passed. Always `false` without one.
    #[must_use]
    pub fn expired(&self) -> bool {
        matches!(self.inner.deadline, Some(d) if Instant::now() >= d)
    }

    /// Whether this request no longer wants a response: cancelled *or*
    /// past its deadline. This is the predicate every lifecycle
    /// checkpoint polls.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.is_cancelled() || self.expired()
    }

    /// Checkpoint: `Err(DeadlineExceeded)` once the request is finished,
    /// `Ok` otherwise. The error carries the original budget (0 for an
    /// explicit cancel) so the 504 response can say what was exceeded.
    pub fn check(&self) -> Result<(), SwwError> {
        if self.finished() {
            Err(self.deadline_error())
        } else {
            Ok(())
        }
    }

    /// The error this context unwinds with when it misses its deadline.
    #[must_use]
    pub fn deadline_error(&self) -> SwwError {
        SwwError::DeadlineExceeded {
            budget_ms: self
                .inner
                .budget
                .map_or(0, |b| u64::try_from(b.as_millis()).unwrap_or(u64::MAX)),
        }
    }
}

/// Record a cancellation taking effect at `site` — the one counter all
/// detach points share (`sww_cancelled_total{site}`). Sites:
/// `engine.wait` (waiter gave up on a coalesced flight), `engine.handoff`
/// (expired leader finished for survivors), `denoise` (step loop
/// abandoned a fully-orphaned flight), `batch.wait` (batch member
/// detached), `pool.queue` (job expired before a worker picked it up).
pub fn record_cancelled(site: &str) {
    sww_obs::counter("sww_cancelled_total", &[("site", site)]).inc();
}

/// Record a request shed at admission (`sww_shed_total{reason}`).
/// Reasons: `deadline` (predicted queue wait exceeds the remaining
/// budget), `breaker` (the model's circuit breaker is open), `draining`
/// (the server is shutting down gracefully).
pub fn record_shed(reason: &str) {
    sww_obs::counter("sww_shed_total", &[("reason", reason)]).inc();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_ctx_never_finishes() {
        let ctx = RequestCtx::unbounded();
        assert!(!ctx.finished());
        assert!(!ctx.expired());
        assert_eq!(ctx.remaining(), None);
        assert_eq!(ctx.budget(), None);
        assert!(ctx.check().is_ok());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let ctx = RequestCtx::unbounded();
        let peer = ctx.clone();
        assert!(!peer.finished());
        ctx.cancel();
        assert!(peer.is_cancelled());
        assert!(peer.finished());
        // Cancel without a deadline reports budget 0.
        assert!(matches!(
            peer.check(),
            Err(SwwError::DeadlineExceeded { budget_ms: 0 })
        ));
    }

    #[test]
    fn deadline_expires_and_reports_budget() {
        let ctx = RequestCtx::with_deadline(Duration::from_millis(20));
        assert!(!ctx.expired());
        assert!(ctx.remaining().unwrap() <= Duration::from_millis(20));
        std::thread::sleep(Duration::from_millis(30));
        assert!(ctx.expired());
        assert!(ctx.finished());
        assert_eq!(ctx.remaining(), Some(Duration::ZERO));
        assert!(matches!(
            ctx.check(),
            Err(SwwError::DeadlineExceeded { budget_ms: 20 })
        ));
    }

    #[test]
    fn generous_deadline_is_not_finished() {
        let ctx = RequestCtx::with_deadline(Duration::from_secs(3600));
        assert!(!ctx.finished());
        assert!(ctx.remaining().unwrap() > Duration::from_secs(3000));
        assert!(ctx.deadline().is_some());
    }
}
