//! Trust and verification for generated content (paper §7, Ethics and
//! Trust: "verifying generated content on end-user devices. Such
//! verification should be accompanied by other mechanisms for trustworthy
//! AI").
//!
//! Two mechanisms, both enabled by determinism:
//!
//! 1. **Signed metadata.** A publisher signs every generated-content
//!    dictionary with a site key (HMAC-SHA-256 over the canonical JSON).
//!    A client verifies the signature before generating, so prompts cannot
//!    be swapped by an intermediary (a prompt substitution changes what
//!    renders — a sharper attack than swapping a JPEG, since the payload
//!    is *instructions*).
//!
//! 2. **Content attestation.** Because prompt → pixels is deterministic
//!    in `(prompt, model, steps, size)`, a client can attest what it
//!    rendered by hashing the pixels, and any auditor with the same model
//!    can regenerate and compare — the on-device verification the paper
//!    calls for.

use sww_genai::diffusion::{DiffusionModel, ImageModelKind};
use sww_genai::ImageBuffer;
use sww_hash::{hmac_sha256, sha256, to_hex, verify_hmac};
use sww_json::Value;

/// A publisher's signing key.
#[derive(Debug, Clone)]
pub struct SiteKey {
    key: [u8; 32],
}

impl SiteKey {
    /// Derive a key from a secret string (hashed to fixed length).
    pub fn from_secret(secret: &str) -> SiteKey {
        SiteKey {
            key: sha256(secret.as_bytes()),
        }
    }
}

/// The metadata field carrying the signature.
pub const SIG_FIELD: &str = "sig";

/// Canonical bytes of a metadata dictionary without its signature field.
fn canonical_without_sig(metadata: &Value) -> Option<String> {
    let mut copy = metadata.clone();
    copy.as_object_mut()?.remove(SIG_FIELD);
    Some(sww_json::to_string(&copy))
}

/// Sign a metadata dictionary in place: adds the `sig` field (hex HMAC
/// over the canonical serialization). Returns false for non-objects.
pub fn sign_metadata(key: &SiteKey, metadata: &mut Value) -> bool {
    let Some(canonical) = canonical_without_sig(metadata) else {
        return false;
    };
    let tag = hmac_sha256(&key.key, canonical.as_bytes());
    metadata
        .as_object_mut()
        .expect("checked object above")
        .insert(SIG_FIELD.into(), Value::from(to_hex(&tag).as_str()));
    true
}

/// Verify a signed metadata dictionary.
pub fn verify_metadata(key: &SiteKey, metadata: &Value) -> bool {
    let Some(sig_hex) = metadata[SIG_FIELD].as_str() else {
        return false;
    };
    let Some(canonical) = canonical_without_sig(metadata) else {
        return false;
    };
    let Some(tag) = from_hex(sig_hex) else {
        return false;
    };
    verify_hmac(&key.key, canonical.as_bytes(), &tag)
}

fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

/// An attestation of rendered content: what was generated, from what, by
/// which model configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attestation {
    /// SHA-256 of the rendered pixel data.
    pub content_hash: String,
    /// SHA-256 of the prompt text.
    pub prompt_hash: String,
    /// Model used.
    pub model: ImageModelKind,
    /// Inference steps used.
    pub steps: u32,
    /// Output dimensions.
    pub width: u32,
    /// Output height.
    pub height: u32,
}

/// Attest an image a client just generated.
pub fn attest_image(
    image: &ImageBuffer,
    prompt: &str,
    model: ImageModelKind,
    steps: u32,
) -> Attestation {
    Attestation {
        content_hash: to_hex(&sha256(image.data())),
        prompt_hash: to_hex(&sha256(prompt.as_bytes())),
        model,
        steps,
        width: image.width(),
        height: image.height(),
    }
}

/// Audit an attestation by regeneration: recompute the image from the
/// claimed inputs and compare hashes. Returns false when the client did
/// not render what the prompt dictates (wrong pixels, wrong model, wrong
/// step count, tampered prompt).
pub fn audit_attestation(att: &Attestation, prompt: &str) -> bool {
    if to_hex(&sha256(prompt.as_bytes())) != att.prompt_hash {
        return false;
    }
    let regenerated =
        DiffusionModel::new(att.model).generate(prompt, att.width, att.height, att.steps);
    to_hex(&sha256(regenerated.data())) == att.content_hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metadata() -> Value {
        Value::object([
            ("prompt", Value::from("a mountain trail at dawn")),
            ("name", Value::from("trail.jpg")),
            ("width", Value::from(256i64)),
            ("height", Value::from(256i64)),
        ])
    }

    #[test]
    fn sign_then_verify() {
        let key = SiteKey::from_secret("publisher-secret");
        let mut md = sample_metadata();
        assert!(sign_metadata(&key, &mut md));
        assert!(md[SIG_FIELD].as_str().is_some());
        assert!(verify_metadata(&key, &md));
    }

    #[test]
    fn tampered_prompt_rejected() {
        let key = SiteKey::from_secret("publisher-secret");
        let mut md = sample_metadata();
        sign_metadata(&key, &mut md);
        md.as_object_mut()
            .unwrap()
            .insert("prompt".into(), Value::from("a completely different scene"));
        assert!(!verify_metadata(&key, &md));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut md = sample_metadata();
        sign_metadata(&SiteKey::from_secret("right"), &mut md);
        assert!(!verify_metadata(&SiteKey::from_secret("wrong"), &md));
    }

    #[test]
    fn unsigned_and_malformed_rejected() {
        let key = SiteKey::from_secret("k");
        assert!(!verify_metadata(&key, &sample_metadata()));
        let mut md = sample_metadata();
        md.as_object_mut()
            .unwrap()
            .insert(SIG_FIELD.into(), Value::from("not-hex!"));
        assert!(!verify_metadata(&key, &md));
        assert!(!sign_metadata(&key, &mut Value::from("a string")));
    }

    #[test]
    fn resigning_after_edit_verifies() {
        let key = SiteKey::from_secret("k");
        let mut md = sample_metadata();
        sign_metadata(&key, &mut md);
        md.as_object_mut()
            .unwrap()
            .insert("width".into(), Value::from(512i64));
        assert!(!verify_metadata(&key, &md));
        sign_metadata(&key, &mut md);
        assert!(verify_metadata(&key, &md));
    }

    #[test]
    fn attestation_audits_by_regeneration() {
        let prompt = "a quiet lake with morning mist";
        let model = ImageModelKind::Sd3Medium;
        let img = DiffusionModel::new(model).generate(prompt, 64, 64, 10);
        let att = attest_image(&img, prompt, model, 10);
        assert!(audit_attestation(&att, prompt));
        // A different prompt fails the prompt-hash check.
        assert!(!audit_attestation(&att, "a different prompt"));
        // Tampered pixels fail the content-hash check.
        let mut tampered = att.clone();
        tampered.content_hash = to_hex(&sha256(b"fake"));
        assert!(!audit_attestation(&tampered, prompt));
        // Claiming a different model fails (different pixels regenerate).
        let mut wrong_model = att.clone();
        wrong_model.model = ImageModelKind::Sd21Base;
        assert!(!audit_attestation(&wrong_model, prompt));
    }
}
