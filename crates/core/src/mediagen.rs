//! The media generator (paper §4.1): parses generated-content metadata
//! and invokes the right generation subroutine — text-to-image via the
//! diffusion pipeline, text-to-text via the language model — while
//! accounting modelled device time and energy for every invocation.

use crate::error::SwwError;
use sww_energy::{cost, device::DeviceProfile, Energy};
use sww_genai::diffusion::ImageModelKind;
use sww_genai::image::codec;
use sww_genai::text::TextModelKind;
use sww_genai::{GenerationPipeline, ImageBuffer};
use sww_html::gencontent::{ContentType, GeneratedContent};

/// Codec quality used when materializing generated images to bytes.
/// Calibrated so the paper's media classes land near their nominal sizes.
pub const DEFAULT_CODEC_QUALITY: u8 = 55;

/// Output of one generation call.
#[derive(Debug, Clone)]
pub enum GeneratedMedia {
    /// A generated image plus its encoded (measured) byte size.
    Image {
        /// File name the page rewrite points at.
        name: String,
        /// The pixels.
        image: ImageBuffer,
        /// Encoded bytes (SWIM codec) — the size the media would occupy
        /// as a file / on the wire.
        encoded: Vec<u8>,
    },
    /// Expanded text.
    Text {
        /// The prose.
        text: String,
    },
}

impl GeneratedMedia {
    /// The media's materialized byte size.
    pub fn media_bytes(&self) -> usize {
        match self {
            GeneratedMedia::Image { encoded, .. } => encoded.len(),
            GeneratedMedia::Text { text } => text.len(),
        }
    }
}

/// One generation invocation's cost accounting.
#[derive(Debug, Clone, Copy)]
pub struct GenerationCost {
    /// Modelled seconds on the generator's device.
    pub time_s: f64,
    /// Modelled energy on the generator's device.
    pub energy: Energy,
}

/// The media generator: a preloaded pipeline bound to a device profile.
#[derive(Debug)]
pub struct MediaGenerator {
    pipeline: GenerationPipeline,
    device: DeviceProfile,
    image_model: ImageModelKind,
    text_model: TextModelKind,
    inference_steps: u32,
    codec_quality: u8,
}

impl MediaGenerator {
    /// The paper's default configuration on a given device: SD 3 Medium at
    /// 15 steps + DeepSeek-R1 8B.
    pub fn new(device: DeviceProfile) -> MediaGenerator {
        MediaGenerator::with_models(
            device,
            ImageModelKind::Sd3Medium,
            TextModelKind::DeepSeekR1_8B,
        )
    }

    /// A generator with explicit model choices.
    pub fn with_models(
        device: DeviceProfile,
        image_model: ImageModelKind,
        text_model: TextModelKind,
    ) -> MediaGenerator {
        MediaGenerator {
            pipeline: GenerationPipeline::preload(image_model, text_model),
            device,
            image_model,
            text_model,
            inference_steps: 15,
            codec_quality: DEFAULT_CODEC_QUALITY,
        }
    }

    /// Change the inference step count (the §6.3.1 sweep).
    pub fn set_inference_steps(&mut self, steps: u32) {
        self.inference_steps = steps.max(1);
    }

    /// Switch the image model, re-preloading the pipeline. Selecting a
    /// model without a cost profile on this device makes every image
    /// [`try_generate`] fail with [`SwwError::UnsupportedModel`] — which
    /// is exactly how tests force the client's generation-fallback path
    /// deterministically.
    ///
    /// [`try_generate`]: MediaGenerator::try_generate
    pub fn set_image_model(&mut self, model: ImageModelKind) {
        self.image_model = model;
        self.pipeline = GenerationPipeline::preload(model, self.text_model);
    }

    /// Current inference step count.
    pub fn inference_steps(&self) -> u32 {
        self.inference_steps
    }

    /// The device this generator models.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// The image model in use.
    pub fn image_model(&self) -> ImageModelKind {
        self.image_model
    }

    /// Generate the media for one generated-content element.
    ///
    /// Panics if the configured image model cannot run on the local
    /// device; use [`MediaGenerator::try_generate`] to handle that case.
    pub fn generate(&mut self, item: &GeneratedContent) -> (GeneratedMedia, GenerationCost) {
        self.try_generate(item).expect("local generation model")
    }

    /// Generate the media for one generated-content element, failing with
    /// [`SwwError::UnsupportedModel`] when the configured image model has
    /// no cost profile on the local device (e.g. a server-only model in a
    /// client-side generator).
    pub fn try_generate(
        &mut self,
        item: &GeneratedContent,
    ) -> Result<(GeneratedMedia, GenerationCost), SwwError> {
        match item.content_type {
            ContentType::Img => {
                let (w, h) = (item.width(), item.height());
                let time_s = cost::image_generation_time(
                    self.image_model,
                    &self.device,
                    w,
                    h,
                    self.inference_steps,
                )
                .ok_or_else(|| SwwError::UnsupportedModel {
                    what: "image generation",
                    model: format!("{:?}", self.image_model),
                })?;
                let image = self
                    .pipeline
                    .generate_image(item.prompt(), w, h, self.inference_steps);
                let encoded = codec::encode(&image, self.codec_quality);
                let cost = GenerationCost {
                    time_s,
                    energy: Energy::from_power(self.device.image_power_w, time_s),
                };
                Ok((
                    GeneratedMedia::Image {
                        name: item.name().to_owned(),
                        image,
                        encoded,
                    },
                    cost,
                ))
            }
            ContentType::Txt => {
                let bullets = item.bullets();
                let words = item.words();
                let text = self.pipeline.generate_text(&bullets, words);
                let time_s = cost::text_generation_time(self.text_model, &self.device, words);
                let cost = GenerationCost {
                    time_s,
                    energy: Energy::from_power(self.device.text_power_w, time_s),
                };
                Ok((GeneratedMedia::Text { text }, cost))
            }
        }
    }

    /// Upscale an image (the §2.2 intermediate deployment).
    pub fn upscale(&mut self, image: &ImageBuffer, factor: u32) -> (ImageBuffer, GenerationCost) {
        let out = self.pipeline.upscale(image, factor);
        let time_s = cost::upscale_time(&self.device, out.width(), out.height());
        let cost = GenerationCost {
            time_s,
            energy: Energy::from_power(self.device.image_power_w, time_s),
        };
        (out, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sww_energy::device::{profile, DeviceKind};
    use sww_html::{gencontent, parse};

    fn image_item(prompt: &str, side: u32) -> GeneratedContent {
        let html = gencontent::image_div(prompt, "img.jpg", side, side);
        let doc = parse(&html);
        gencontent::extract(&doc).remove(0)
    }

    fn text_item() -> GeneratedContent {
        let html = gencontent::text_div(&["trail summit dawn".into()], 120);
        let doc = parse(&html);
        gencontent::extract(&doc).remove(0)
    }

    #[test]
    fn generates_image_with_measured_bytes() {
        let mut generator = MediaGenerator::new(profile(DeviceKind::Workstation));
        let (media, cost) = generator.generate(&image_item("a mountain lake", 256));
        match &media {
            GeneratedMedia::Image {
                image,
                encoded,
                name,
            } => {
                assert_eq!(image.width(), 256);
                assert_eq!(name, "img.jpg");
                assert!(!encoded.is_empty());
                // Encoded bytes decode back to the same dimensions.
                let back = codec::decode(encoded).unwrap();
                assert_eq!(back.width(), 256);
            }
            other => panic!("expected image, got {other:?}"),
        }
        // Workstation, 256², 15 steps → the Table 2 anchor of 1.0 s.
        assert!((cost.time_s - 1.0).abs() < 1e-9);
        assert!(cost.energy.wh() > 0.0);
    }

    #[test]
    fn generates_text_with_word_budget() {
        let mut generator = MediaGenerator::new(profile(DeviceKind::Laptop));
        let (media, cost) = generator.generate(&text_item());
        match media {
            GeneratedMedia::Text { text } => {
                let words = text.split_whitespace().count();
                assert!((96..=144).contains(&words), "words={words}");
            }
            other => panic!("expected text, got {other:?}"),
        }
        // Laptop text range from the paper: 16.06–34.04 s.
        assert!((13.0..45.0).contains(&cost.time_s), "{}", cost.time_s);
    }

    #[test]
    fn laptop_slower_than_workstation() {
        let mut lap = MediaGenerator::new(profile(DeviceKind::Laptop));
        let mut ws = MediaGenerator::new(profile(DeviceKind::Workstation));
        let item = image_item("hills", 512);
        let (_, lc) = lap.generate(&item);
        let (_, wc) = ws.generate(&item);
        assert!(lc.time_s > wc.time_s * 5.0);
    }

    #[test]
    fn steps_scale_time_linearly() {
        let mut generator = MediaGenerator::new(profile(DeviceKind::Workstation));
        let item = image_item("forest", 256);
        generator.set_inference_steps(15);
        let (_, c15) = generator.generate(&item);
        generator.set_inference_steps(30);
        let (_, c30) = generator.generate(&item);
        assert!((c30.time_s / c15.time_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn upscale_is_cheap() {
        let mut generator = MediaGenerator::new(profile(DeviceKind::Workstation));
        let (media, _) = generator.generate(&image_item("beach", 256));
        let GeneratedMedia::Image { image, .. } = media else {
            panic!()
        };
        let (up, cost) = generator.upscale(&image, 2);
        assert_eq!(up.width(), 512);
        assert!(cost.time_s < 1.0, "upscale {}", cost.time_s);
    }
}
