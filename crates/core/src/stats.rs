//! Byte, time and energy accounting — the quantities every experiment in
//! §6 reports. All byte counts are measured from real encoded artifacts.

use sww_energy::Energy;

/// Accounting for one delivered page.
#[derive(Debug, Clone, Default)]
pub struct PageStats {
    /// Octets that crossed the wire in SWW form (HTML + metadata + unique
    /// content).
    pub wire_bytes: u64,
    /// Octets the same page would have cost in traditional form (HTML +
    /// all media files).
    pub traditional_bytes: u64,
    /// Octets of generated-content metadata alone.
    pub metadata_bytes: u64,
    /// Octets of media that were generated on-device instead of sent.
    pub generated_media_bytes: u64,
    /// Number of media items generated client-side.
    pub items_generated: u32,
    /// Number of media items satisfied from the client generation cache.
    pub items_cached: u32,
    /// Number of unique items fetched traditionally.
    pub items_fetched: u32,
    /// Modelled client-side generation time, seconds.
    pub generation_time_s: f64,
    /// Modelled client-side generation energy.
    pub generation_energy: Energy,
    /// Retries the client spent on this page (transient failures).
    pub retries: u32,
    /// Whether the page was ultimately served through the traditional
    /// fallback (generation withdrawn after terminal failure).
    pub fell_back: bool,
}

impl PageStats {
    /// Compression factor: traditional bytes ÷ wire bytes (the paper's
    /// headline 157× for the Wikimedia page).
    pub fn compression_ratio(&self) -> f64 {
        if self.wire_bytes == 0 {
            return 1.0;
        }
        self.traditional_bytes as f64 / self.wire_bytes as f64
    }

    /// Octets saved on the wire.
    pub fn bytes_saved(&self) -> u64 {
        self.traditional_bytes.saturating_sub(self.wire_bytes)
    }

    /// Network energy avoided by not transmitting the saved bytes.
    pub fn transmission_energy_saved(&self) -> Energy {
        sww_energy::network::transmission_energy(self.bytes_saved())
    }

    /// Merge another page's stats into this one (multi-page accounting).
    pub fn merge(&mut self, other: &PageStats) {
        self.wire_bytes += other.wire_bytes;
        self.traditional_bytes += other.traditional_bytes;
        self.metadata_bytes += other.metadata_bytes;
        self.generated_media_bytes += other.generated_media_bytes;
        self.items_generated += other.items_generated;
        self.items_cached += other.items_cached;
        self.items_fetched += other.items_fetched;
        self.generation_time_s += other.generation_time_s;
        self.generation_energy = self.generation_energy + other.generation_energy;
        self.retries += other.retries;
        self.fell_back |= other.fell_back;
    }
}

/// Projection helper for §7: scale a measured compression ratio to a
/// traffic aggregate (e.g. mobile web exabytes/month → petabytes/month).
pub fn project_traffic(bytes_per_month: f64, compression_ratio: f64) -> f64 {
    assert!(compression_ratio >= 1.0);
    bytes_per_month / compression_ratio
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_savings() {
        let s = PageStats {
            wire_bytes: 8_920,
            traditional_bytes: 1_400_000,
            ..Default::default()
        };
        // The paper's Wikimedia numbers: 1400 kB → 8.92 kB ⇒ ≈157×.
        assert!((s.compression_ratio() - 156.95).abs() < 0.5);
        assert_eq!(s.bytes_saved(), 1_391_080);
    }

    #[test]
    fn empty_wire_is_ratio_one() {
        assert_eq!(PageStats::default().compression_ratio(), 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PageStats {
            wire_bytes: 100,
            traditional_bytes: 1000,
            items_generated: 2,
            generation_time_s: 1.5,
            generation_energy: Energy::from_wh(0.1),
            ..Default::default()
        };
        let b = PageStats {
            wire_bytes: 50,
            traditional_bytes: 500,
            items_generated: 1,
            generation_time_s: 0.5,
            generation_energy: Energy::from_wh(0.05),
            retries: 2,
            fell_back: true,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.wire_bytes, 150);
        assert_eq!(a.traditional_bytes, 1500);
        assert_eq!(a.items_generated, 3);
        assert!((a.generation_time_s - 2.0).abs() < 1e-12);
        assert!((a.generation_energy.wh() - 0.15).abs() < 1e-12);
        assert_eq!(a.retries, 2);
        assert!(a.fell_back, "fallback flag must survive a merge");
    }

    #[test]
    fn traffic_projection_two_orders_of_magnitude() {
        // Paper §7: 2–3 EB/month of mobile web, reduced by ≈two orders of
        // magnitude, lands at tens of PB/month.
        let reduced = project_traffic(2.5e18, 100.0);
        assert!((1e16..1e17).contains(&reduced), "reduced={reduced:e}");
    }

    #[test]
    fn transmission_energy_saved_uses_telefonica_intensity() {
        let s = PageStats {
            wire_bytes: 0,
            traditional_bytes: 1_000_000,
            ..Default::default()
        };
        assert!((s.transmission_energy_saved().wh() - 0.038).abs() < 1e-9);
    }
}
