//! Server-side serving policy (paper §5.1): a server can prefer
//! traditional content for performance, or make the choice on the
//! availability of renewable energy.

/// Knobs controlling how a generative server serves capable clients.
#[derive(Debug, Clone)]
pub struct ServerPolicy {
    /// Serve prompt-form pages to clients that can generate.
    pub allow_client_generation: bool,
    /// When the client cannot generate (or generation is disallowed),
    /// expand prompts server-side instead of keeping parallel media copies.
    pub expand_prompts_server_side: bool,
    /// Fraction of the time renewable energy is available on-site, 0..=1.
    /// Used by [`ServerPolicy::renewable_decision`].
    pub renewable_availability: f64,
}

impl Default for ServerPolicy {
    fn default() -> ServerPolicy {
        ServerPolicy {
            allow_client_generation: true,
            expand_prompts_server_side: true,
            renewable_availability: 0.0,
        }
    }
}

impl ServerPolicy {
    /// A policy that serves traditional content whenever the grid is
    /// carbon-cheap for the server (renewables available → the server
    /// absorbs generation cost; otherwise push generation to clients).
    pub fn renewable_aware(availability: f64) -> ServerPolicy {
        ServerPolicy {
            allow_client_generation: true,
            expand_prompts_server_side: true,
            renewable_availability: availability.clamp(0.0, 1.0),
        }
    }

    /// Decide, for one request at a deterministic `slot` (e.g. hour of
    /// day), whether the server should generate despite a capable client:
    /// true when renewables cover this slot.
    pub fn renewable_decision(&self, slot: u64) -> bool {
        if self.renewable_availability <= 0.0 {
            return false;
        }
        // Deterministic spread of renewable slots across the day.
        let phase = (slot.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40) as f64 / (1u64 << 24) as f64;
        phase < self.renewable_availability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_generation() {
        let p = ServerPolicy::default();
        assert!(p.allow_client_generation);
        assert!(p.expand_prompts_server_side);
    }

    #[test]
    fn renewable_zero_never_triggers() {
        let p = ServerPolicy::default();
        assert!((0..100).all(|s| !p.renewable_decision(s)));
    }

    #[test]
    fn renewable_full_always_triggers() {
        let p = ServerPolicy::renewable_aware(1.0);
        assert!((0..100).all(|s| p.renewable_decision(s)));
    }

    #[test]
    fn renewable_fraction_is_proportional() {
        let p = ServerPolicy::renewable_aware(0.4);
        let hits = (0..10_000).filter(|&s| p.renewable_decision(s)).count();
        let share = hits as f64 / 10_000.0;
        assert!((share - 0.4).abs() < 0.05, "share={share}");
    }

    #[test]
    fn availability_clamped() {
        assert_eq!(
            ServerPolicy::renewable_aware(7.0).renewable_availability,
            1.0
        );
        assert_eq!(
            ServerPolicy::renewable_aware(-1.0).renewable_availability,
            0.0
        );
    }
}
