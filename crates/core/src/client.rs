//! The generative client (paper §5.2): connect, exchange settings
//! (advertising generation ability), request a page, parse it, generate
//! the content, fetch unique assets, and produce the rendered page with
//! full byte/time/energy accounting.
//!
//! # Resilience
//!
//! [`fetch_page`] no longer gives up on the first error. Transient
//! failures (saturation `503`s, transport faults, corrupted payloads,
//! generation faults, upstream `5xx`) are retried under a
//! [`RetryPolicy`] — exponential backoff, deterministic jitter, server
//! `Retry-After` hints honored — and each retry increments
//! `sww_client_retries_total`. When generation fails *terminally*
//! (retries exhausted on a generation fault, or the model cannot run at
//! all), the client degrades gracefully: it withdraws its generative
//! ability over HTTP/2 SETTINGS, re-fetches the page so the server
//! materializes traditional content, and restores the ability afterward
//! (`sww_client_fallbacks_total`). Both counts surface per page in
//! [`PageStats::retries`] / [`PageStats::fell_back`].
//!
//! [`fetch_page`]: GenerativeClient::fetch_page
//! [`PageStats::retries`]: crate::stats::PageStats
//! [`PageStats::fell_back`]: crate::stats::PageStats

use crate::cache::{GenerationCache, Recipe};
use crate::error::SwwError;
use crate::faults::{self, FaultAction, FaultSite};
use crate::mediagen::{GeneratedMedia, MediaGenerator};
use crate::render::{RenderedPage, RenderedResource};
use crate::retry::RetryPolicy;
use crate::stats::PageStats;
use sww_energy::device::DeviceProfile;
use sww_genai::image::codec;
use sww_hash::{sha256, to_hex};
use sww_html::{gencontent, parse, query, serialize};
use sww_http2::{ClientConnection, GenAbility, H2Error, Request, Response};
use tokio::io::{AsyncRead, AsyncWrite};

/// Default generation-cache budget: 64 megapixels (≈ a few hundred
/// thumbnails or a handful of large images).
pub const DEFAULT_CACHE_PIXELS: u64 = 64_000_000;

/// The generative client.
pub struct GenerativeClient<T> {
    conn: ClientConnection<T>,
    generator: MediaGenerator,
    cache: GenerationCache,
    profile: Option<crate::personalize::UserProfile>,
    /// The ability advertised at connect time — what fallback restores.
    ability: GenAbility,
    retry: RetryPolicy,
    fallback_enabled: bool,
}

impl<T: AsyncRead + AsyncWrite + Unpin> GenerativeClient<T> {
    /// Connect over an established stream, advertising `ability`, with
    /// generation running on `device`. The media generator is configured
    /// from the *negotiated* model levels (§7 model negotiation): both
    /// peers must support a model generation for it to be used, so the
    /// client and any server-side fallback render identical content.
    pub async fn connect(
        io: T,
        ability: GenAbility,
        device: DeviceProfile,
    ) -> Result<GenerativeClient<T>, H2Error> {
        let conn = ClientConnection::handshake(io, ability).await?;
        let (image_model, text_model) = crate::negotiate::select_models(conn.negotiated_ability());
        Ok(GenerativeClient {
            conn,
            generator: MediaGenerator::with_models(device, image_model, text_model),
            cache: GenerationCache::new(DEFAULT_CACHE_PIXELS),
            profile: None,
            ability,
            retry: RetryPolicy::default(),
            fallback_enabled: true,
        })
    }

    /// Replace the retry policy (default: [`RetryPolicy::default`]).
    /// [`RetryPolicy::no_retries`] restores the pre-resilience
    /// fail-on-first-error behaviour.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Enable or disable the traditional-content fallback on terminal
    /// generation failure (default: enabled).
    pub fn set_fallback(&mut self, enabled: bool) {
        self.fallback_enabled = enabled;
    }

    /// Opt in to personalized generation (§2.3): image prompts are
    /// adjusted with the user's interests *after* delivery, on-device —
    /// the profile never leaves the client. Pass `None` to opt out.
    pub fn set_profile(&mut self, profile: Option<crate::personalize::UserProfile>) {
        self.profile = profile;
    }

    /// Cache observability (hits/misses across fetches).
    pub fn cache(&self) -> &GenerationCache {
        &self.cache
    }

    /// The ability the server advertised.
    pub fn server_ability(&self) -> GenAbility {
        self.conn.server_ability()
    }

    /// The negotiated (shared) ability.
    pub fn negotiated_ability(&self) -> GenAbility {
        self.conn.negotiated_ability()
    }

    /// Direct access to the media generator (e.g. to change step count).
    pub fn generator_mut(&mut self) -> &mut MediaGenerator {
        &mut self.generator
    }

    /// Fetch and fully resolve a page: request, parse, generate, fetch
    /// unique assets, rewrite — returning the rendered page and its
    /// accounting. Transport failures arrive as [`SwwError::Transport`],
    /// non-200 answers as [`SwwError::UpstreamStatus`].
    ///
    /// Retryable failures are retried under the configured
    /// [`RetryPolicy`]; terminal generation failures degrade to the
    /// traditional fallback (see the module docs). Only errors that
    /// survive both mechanisms reach the caller.
    pub async fn fetch_page(&mut self, path: &str) -> Result<(RenderedPage, PageStats), SwwError> {
        let mut schedule = self.retry.schedule();
        loop {
            match self.fetch_page_once(path).await {
                Ok((page, mut stats)) => {
                    stats.retries = schedule.retries();
                    return Ok((page, stats));
                }
                Err(err) => {
                    let can_fall_back = self.fallback_enabled && err.is_generation_failure();
                    if err.is_retryable() {
                        if let Some(delay) = schedule.next_delay_with_hint(err.retry_after()) {
                            sww_obs::counter("sww_client_retries_total", &[]).inc();
                            tokio::time::sleep(delay).await;
                            continue;
                        }
                    }
                    // Retries exhausted (or the error was terminal).
                    if can_fall_back {
                        return self.fallback_fetch(path, schedule.retries()).await;
                    }
                    return Err(err);
                }
            }
        }
    }

    /// Graceful degradation: withdraw the generative ability over HTTP/2
    /// SETTINGS so the server materializes traditional content, re-fetch
    /// (with retries but no further fallback), and restore the original
    /// ability. `prior_retries` carries the retries already spent on the
    /// generative attempt into the returned [`PageStats`].
    async fn fallback_fetch(
        &mut self,
        path: &str,
        prior_retries: u32,
    ) -> Result<(RenderedPage, PageStats), SwwError> {
        sww_obs::counter("sww_client_fallbacks_total", &[]).inc();
        self.conn.update_ability(GenAbility::none()).await?;
        let mut schedule = self.retry.schedule();
        let result = loop {
            match self.fetch_page_once(path).await {
                Ok(ok) => break Ok(ok),
                Err(err) if err.is_retryable() => {
                    match schedule.next_delay_with_hint(err.retry_after()) {
                        Some(delay) => {
                            sww_obs::counter("sww_client_retries_total", &[]).inc();
                            tokio::time::sleep(delay).await;
                        }
                        None => break Err(err),
                    }
                }
                Err(err) => break Err(err),
            }
        };
        // Restore the advertised ability even when the fallback failed,
        // so a later fetch negotiates generatively again.
        let restored = self.conn.update_ability(self.ability).await;
        let (page, mut stats) = result?;
        restored?;
        stats.retries = prior_retries + schedule.retries();
        stats.fell_back = true;
        Ok((page, stats))
    }

    /// Issue one request, subject to the `h2.read` failpoint
    /// ([`crate::faults`]): injected errors surface as retryable
    /// [`SwwError::Transport`], latency delays the read, and truncation
    /// corrupts the received body (caught by the ETag integrity check).
    async fn send(&mut self, req: &Request) -> Result<Response, SwwError> {
        let action = faults::at(FaultSite::H2Read);
        if let Some(FaultAction::Error) = action {
            return Err(SwwError::Transport(H2Error::protocol(
                "injected fault at h2.read",
            )));
        }
        if let Some(FaultAction::Latency(d)) = action {
            tokio::time::sleep(d).await;
        }
        let mut resp = self.conn.send_request(req).await?;
        if let Some(FaultAction::TruncateKeepPct(pct)) = action {
            let keep = resp.body.len() * usize::from(pct) / 100;
            resp.body = resp.body.slice(..keep);
        }
        Ok(resp)
    }

    /// Generate one item, subject to the `engine.generate` failpoint:
    /// injected errors surface as retryable [`SwwError::Generation`].
    fn generate_item(
        &mut self,
        item: &gencontent::GeneratedContent,
    ) -> Result<(GeneratedMedia, crate::mediagen::GenerationCost), SwwError> {
        match faults::at(FaultSite::EngineGenerate) {
            Some(FaultAction::Error) | Some(FaultAction::TruncateKeepPct(_)) => {
                return Err(SwwError::Generation {
                    reason: "injected fault at engine.generate".into(),
                });
            }
            Some(FaultAction::Latency(d)) => std::thread::sleep(d),
            None => {}
        }
        self.generator.try_generate(item)
    }

    /// One non-retrying fetch attempt (the pre-resilience `fetch_page`).
    async fn fetch_page_once(&mut self, path: &str) -> Result<(RenderedPage, PageStats), SwwError> {
        let mut stats = PageStats::default();
        let resp = self.send(&Request::get(path)).await?;
        if resp.status != 200 {
            return Err(SwwError::UpstreamStatus {
                path: path.to_owned(),
                status: resp.status,
                retry_after_s: resp.headers.get("retry-after").and_then(|v| v.parse().ok()),
            });
        }
        // The page body is content-addressed (the server's ETag is a
        // sha-256 prefix of the body), so a truncated or corrupted
        // payload is detectable — and retryable — right here.
        if let Some(etag) = resp.headers.get("etag") {
            let expect = format!("\"{}\"", &to_hex(&sha256(&resp.body))[..16]);
            if etag != expect {
                return Err(SwwError::IntegrityFailure {
                    path: path.to_owned(),
                });
            }
        }
        let html_bytes = resp.body.len() as u64;
        stats.wire_bytes += html_bytes;
        stats.traditional_bytes += html_bytes;
        let html = String::from_utf8_lossy(&resp.body).into_owned();
        let mut doc = parse(&html);
        let mut page = RenderedPage::default();

        // 1. Generate declared content if we negotiated the capability.
        if self.negotiated_ability().can_generate() {
            for mut item in gencontent::extract(&doc) {
                stats.metadata_bytes += item.metadata_size() as u64;
                // Opt-in personalization (§2.3): adjust the prompt locally.
                if let Some(profile) = &self.profile {
                    if item.content_type == gencontent::ContentType::Img {
                        let adjusted = crate::personalize::personalize(item.prompt(), profile, 2);
                        if adjusted.modified {
                            if let Some(map) = item.metadata.as_object_mut() {
                                map.insert("prompt".into(), adjusted.prompt.into());
                            }
                        }
                    }
                }
                // Cache lookup first: generation is deterministic in the
                // recipe, so a hit costs no generation time or energy.
                let recipe = (item.content_type == gencontent::ContentType::Img).then(|| Recipe {
                    prompt: item.prompt().to_owned(),
                    model: self.generator.image_model(),
                    width: item.width(),
                    height: item.height(),
                    steps: self.generator.inference_steps(),
                });
                let cached = recipe.as_ref().and_then(|r| self.cache.get(r));
                let (media, cost) = match cached {
                    Some(image) => {
                        stats.items_cached += 1;
                        sww_obs::counter("sww_client_items_total", &[("source", "cache")]).inc();
                        let encoded = codec::encode(&image, crate::mediagen::DEFAULT_CODEC_QUALITY);
                        (
                            GeneratedMedia::Image {
                                name: item.name().to_owned(),
                                image,
                                encoded,
                            },
                            crate::mediagen::GenerationCost {
                                time_s: 0.0,
                                energy: sww_energy::Energy::ZERO,
                            },
                        )
                    }
                    None => {
                        sww_obs::counter("sww_client_items_total", &[("source", "generated")])
                            .inc();
                        let span = sww_obs::Span::begin("sww_client_generate", "page_item");
                        let (media, cost) = self.generate_item(&item)?;
                        span.finish_with_virtual(cost.time_s);
                        if let (Some(r), GeneratedMedia::Image { image, .. }) = (recipe, &media) {
                            self.cache.put(r, image.clone());
                        }
                        (media, cost)
                    }
                };
                stats.items_generated += 1;
                stats.generation_time_s += cost.time_s;
                stats.generation_energy = stats.generation_energy + cost.energy;
                let media_bytes = media.media_bytes() as u64;
                stats.generated_media_bytes += media_bytes;
                // Traditionally those bytes would have crossed the wire
                // instead of the metadata (already counted inside the HTML).
                stats.traditional_bytes += media_bytes;
                stats.traditional_bytes = stats
                    .traditional_bytes
                    .saturating_sub(item.metadata_size() as u64);
                match media {
                    GeneratedMedia::Image {
                        name,
                        image,
                        encoded,
                    } => {
                        let path = format!("generated/{name}");
                        gencontent::replace_with_image(
                            &mut doc,
                            item.node,
                            &path,
                            image.width(),
                            image.height(),
                        );
                        page.resources.push(RenderedResource {
                            path,
                            image,
                            encoded_bytes: encoded.len(),
                            generated: true,
                        });
                    }
                    GeneratedMedia::Text { text } => {
                        gencontent::replace_with_text(&mut doc, item.node, &text);
                        page.expanded_texts.push(text);
                    }
                }
            }
        }

        // 2. Fetch remaining referenced images (unique content and, for
        //    naive negotiation, server-materialized media).
        for img in query::by_tag(&doc, doc.root(), "img") {
            let Some(src) = doc.attr(img, "src") else {
                continue;
            };
            if src.starts_with("generated/") {
                continue; // produced locally above
            }
            let src = src.to_owned();
            let resp = self.send(&Request::get(src.clone())).await?;
            if resp.status != 200 {
                continue;
            }
            let n = resp.body.len() as u64;
            stats.wire_bytes += n;
            stats.traditional_bytes += n;
            stats.items_fetched += 1;
            sww_obs::counter("sww_client_items_total", &[("source", "fetched")]).inc();
            let decoded = codec::decode(&resp.body).ok();
            page.resources.push(RenderedResource {
                path: src,
                image: decoded.unwrap_or_else(|| sww_genai::ImageBuffer::new(1, 1)),
                encoded_bytes: resp.body.len(),
                generated: false,
            });
        }

        page.html = serialize(&doc);
        sww_obs::counter("sww_client_pages_total", &[]).inc();
        Ok((page, stats))
    }

    /// Liveness check.
    pub async fn ping(&mut self) -> Result<(), H2Error> {
        self.conn.ping().await
    }

    /// Graceful shutdown.
    pub async fn close(&mut self) -> Result<(), H2Error> {
        self.conn.close().await
    }
}
