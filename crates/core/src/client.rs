//! The generative client (paper §5.2): connect, exchange settings
//! (advertising generation ability), request a page, parse it, generate
//! the content, fetch unique assets, and produce the rendered page with
//! full byte/time/energy accounting.

use crate::cache::{GenerationCache, Recipe};
use crate::error::SwwError;
use crate::mediagen::{GeneratedMedia, MediaGenerator};
use crate::render::{RenderedPage, RenderedResource};
use crate::stats::PageStats;
use sww_energy::device::DeviceProfile;
use sww_genai::image::codec;
use sww_html::{gencontent, parse, query, serialize};
use sww_http2::{ClientConnection, GenAbility, H2Error, Request};
use tokio::io::{AsyncRead, AsyncWrite};

/// Default generation-cache budget: 64 megapixels (≈ a few hundred
/// thumbnails or a handful of large images).
pub const DEFAULT_CACHE_PIXELS: u64 = 64_000_000;

/// The generative client.
pub struct GenerativeClient<T> {
    conn: ClientConnection<T>,
    generator: MediaGenerator,
    cache: GenerationCache,
    profile: Option<crate::personalize::UserProfile>,
}

impl<T: AsyncRead + AsyncWrite + Unpin> GenerativeClient<T> {
    /// Connect over an established stream, advertising `ability`, with
    /// generation running on `device`. The media generator is configured
    /// from the *negotiated* model levels (§7 model negotiation): both
    /// peers must support a model generation for it to be used, so the
    /// client and any server-side fallback render identical content.
    pub async fn connect(
        io: T,
        ability: GenAbility,
        device: DeviceProfile,
    ) -> Result<GenerativeClient<T>, H2Error> {
        let conn = ClientConnection::handshake(io, ability).await?;
        let (image_model, text_model) = crate::negotiate::select_models(conn.negotiated_ability());
        Ok(GenerativeClient {
            conn,
            generator: MediaGenerator::with_models(device, image_model, text_model),
            cache: GenerationCache::new(DEFAULT_CACHE_PIXELS),
            profile: None,
        })
    }

    /// Opt in to personalized generation (§2.3): image prompts are
    /// adjusted with the user's interests *after* delivery, on-device —
    /// the profile never leaves the client. Pass `None` to opt out.
    pub fn set_profile(&mut self, profile: Option<crate::personalize::UserProfile>) {
        self.profile = profile;
    }

    /// Cache observability (hits/misses across fetches).
    pub fn cache(&self) -> &GenerationCache {
        &self.cache
    }

    /// The ability the server advertised.
    pub fn server_ability(&self) -> GenAbility {
        self.conn.server_ability()
    }

    /// The negotiated (shared) ability.
    pub fn negotiated_ability(&self) -> GenAbility {
        self.conn.negotiated_ability()
    }

    /// Direct access to the media generator (e.g. to change step count).
    pub fn generator_mut(&mut self) -> &mut MediaGenerator {
        &mut self.generator
    }

    /// Fetch and fully resolve a page: request, parse, generate, fetch
    /// unique assets, rewrite — returning the rendered page and its
    /// accounting. Transport failures arrive as [`SwwError::Transport`],
    /// non-200 answers as [`SwwError::UpstreamStatus`].
    pub async fn fetch_page(&mut self, path: &str) -> Result<(RenderedPage, PageStats), SwwError> {
        let mut stats = PageStats::default();
        let resp = self.conn.send_request(&Request::get(path)).await?;
        if resp.status != 200 {
            return Err(SwwError::UpstreamStatus {
                path: path.to_owned(),
                status: resp.status,
            });
        }
        let html_bytes = resp.body.len() as u64;
        stats.wire_bytes += html_bytes;
        stats.traditional_bytes += html_bytes;
        let html = String::from_utf8_lossy(&resp.body).into_owned();
        let mut doc = parse(&html);
        let mut page = RenderedPage::default();

        // 1. Generate declared content if we negotiated the capability.
        if self.negotiated_ability().can_generate() {
            for mut item in gencontent::extract(&doc) {
                stats.metadata_bytes += item.metadata_size() as u64;
                // Opt-in personalization (§2.3): adjust the prompt locally.
                if let Some(profile) = &self.profile {
                    if item.content_type == gencontent::ContentType::Img {
                        let adjusted = crate::personalize::personalize(item.prompt(), profile, 2);
                        if adjusted.modified {
                            if let Some(map) = item.metadata.as_object_mut() {
                                map.insert("prompt".into(), adjusted.prompt.into());
                            }
                        }
                    }
                }
                // Cache lookup first: generation is deterministic in the
                // recipe, so a hit costs no generation time or energy.
                let recipe = (item.content_type == gencontent::ContentType::Img).then(|| Recipe {
                    prompt: item.prompt().to_owned(),
                    model: self.generator.image_model(),
                    width: item.width(),
                    height: item.height(),
                    steps: self.generator.inference_steps(),
                });
                let cached = recipe.as_ref().and_then(|r| self.cache.get(r));
                let (media, cost) = match cached {
                    Some(image) => {
                        stats.items_cached += 1;
                        sww_obs::counter("sww_client_items_total", &[("source", "cache")]).inc();
                        let encoded = codec::encode(&image, crate::mediagen::DEFAULT_CODEC_QUALITY);
                        (
                            GeneratedMedia::Image {
                                name: item.name().to_owned(),
                                image,
                                encoded,
                            },
                            crate::mediagen::GenerationCost {
                                time_s: 0.0,
                                energy: sww_energy::Energy::ZERO,
                            },
                        )
                    }
                    None => {
                        sww_obs::counter("sww_client_items_total", &[("source", "generated")])
                            .inc();
                        let span = sww_obs::Span::begin("sww_client_generate", "page_item");
                        let (media, cost) = self.generator.try_generate(&item)?;
                        span.finish_with_virtual(cost.time_s);
                        if let (Some(r), GeneratedMedia::Image { image, .. }) = (recipe, &media) {
                            self.cache.put(r, image.clone());
                        }
                        (media, cost)
                    }
                };
                stats.items_generated += 1;
                stats.generation_time_s += cost.time_s;
                stats.generation_energy = stats.generation_energy + cost.energy;
                let media_bytes = media.media_bytes() as u64;
                stats.generated_media_bytes += media_bytes;
                // Traditionally those bytes would have crossed the wire
                // instead of the metadata (already counted inside the HTML).
                stats.traditional_bytes += media_bytes;
                stats.traditional_bytes = stats
                    .traditional_bytes
                    .saturating_sub(item.metadata_size() as u64);
                match media {
                    GeneratedMedia::Image {
                        name,
                        image,
                        encoded,
                    } => {
                        let path = format!("generated/{name}");
                        gencontent::replace_with_image(
                            &mut doc,
                            item.node,
                            &path,
                            image.width(),
                            image.height(),
                        );
                        page.resources.push(RenderedResource {
                            path,
                            image,
                            encoded_bytes: encoded.len(),
                            generated: true,
                        });
                    }
                    GeneratedMedia::Text { text } => {
                        gencontent::replace_with_text(&mut doc, item.node, &text);
                        page.expanded_texts.push(text);
                    }
                }
            }
        }

        // 2. Fetch remaining referenced images (unique content and, for
        //    naive negotiation, server-materialized media).
        for img in query::by_tag(&doc, doc.root(), "img") {
            let Some(src) = doc.attr(img, "src") else {
                continue;
            };
            if src.starts_with("generated/") {
                continue; // produced locally above
            }
            let src = src.to_owned();
            let resp = self.conn.send_request(&Request::get(src.clone())).await?;
            if resp.status != 200 {
                continue;
            }
            let n = resp.body.len() as u64;
            stats.wire_bytes += n;
            stats.traditional_bytes += n;
            stats.items_fetched += 1;
            sww_obs::counter("sww_client_items_total", &[("source", "fetched")]).inc();
            let decoded = codec::decode(&resp.body).ok();
            page.resources.push(RenderedResource {
                path: src,
                image: decoded.unwrap_or_else(|| sww_genai::ImageBuffer::new(1, 1)),
                encoded_bytes: resp.body.len(),
                generated: false,
            });
        }

        page.html = serialize(&doc);
        sww_obs::counter("sww_client_pages_total", &[]).inc();
        Ok((page, stats))
    }

    /// Liveness check.
    pub async fn ping(&mut self) -> Result<(), H2Error> {
        self.conn.ping().await
    }

    /// Graceful shutdown.
    pub async fn close(&mut self) -> Result<(), H2Error> {
        self.conn.close().await
    }
}
