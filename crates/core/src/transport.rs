//! Transport identity for the serving core.
//!
//! The dispatch path (admission, negotiation, engine, the single
//! `error_response` choke point) is transport-agnostic; what varies per
//! transport is the framing adapter that feeds it and the label the
//! request lands under in `/metrics`. [`TransportKind`] is that label.

/// Which framing adapter delivered a request to the serving core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// HTTP/2 over a byte stream (`sww-http2`'s `serve_connection_until`).
    H2,
    /// HTTP/3 over the QUIC-lite shim (`sww-http3`'s concurrent driver).
    H3,
    /// No wire at all: a [`Session`](crate::Session) driven in-process
    /// (tests, benches, library embedding).
    Inproc,
    /// A dispatch driven by the cluster tier's
    /// [`EdgeRouter`](crate::edge::EdgeRouter) — either served at the
    /// entry edge or proxied to the owning node for peer cache-fill.
    Edge,
}

impl TransportKind {
    /// The `transport` metric-label value (OBSERVABILITY.md).
    pub fn label(self) -> &'static str {
        match self {
            TransportKind::H2 => "h2",
            TransportKind::H3 => "h3",
            TransportKind::Inproc => "inproc",
            TransportKind::Edge => "edge",
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        // These strings are a metrics contract: dashboards and the E18
        // reconciliation key on them.
        assert_eq!(TransportKind::H2.label(), "h2");
        assert_eq!(TransportKind::H3.label(), "h3");
        assert_eq!(TransportKind::Inproc.label(), "inproc");
        assert_eq!(TransportKind::Edge.label(), "edge");
        assert_eq!(TransportKind::H3.to_string(), "h3");
    }
}
