//! Continuous batching for the generation engine.
//!
//! Real diffusion backends amortize per-step cost by advancing many
//! latents through one denoising schedule. The [`BatchScheduler`] sits
//! between the single-flight [`GenerationEngine`] and the synthesizer:
//! flight leaders submit their recipe here, compatible pending jobs
//! (same model profile, resolution and step schedule — the [`BatchKey`])
//! rendezvous into one group, and the group's leader runs a single
//! [`generate_batch`] pass whose per-image output is **bit-identical**
//! to the unbatched path.
//!
//! # Closing policy
//!
//! A group closes — and its batch executes — at the first of:
//!
//! 1. **Full**: the group reached `max_batch` members.
//! 2. **Drained**: no other request is inside [`submit`] still looking
//!    for a group (a shared rendezvous counter tracks this), so waiting
//!    longer cannot grow the batch. A lone request therefore closes
//!    immediately: batching adds *no* latency without concurrency.
//! 3. **Deadline**: `max_wait` elapsed since the group opened. This is
//!    the hard bound on added wait — backpressure can keep condition 2
//!    false, but never extends a batch past its deadline.
//!
//! # Composition with single flight and faults
//!
//! The engine coalesces duplicate recipes *before* they reach the
//! scheduler, so a batch never contains the same recipe twice; batching
//! amortizes *distinct* recipes the way single flight amortizes
//! identical ones. The `engine.generate` failpoint fires on the flight
//! leader before it submits, so an injected fault removes one job from
//! the rendezvous without touching batch-mates. A batch leader that
//! panics poisons its group: members fail with a retryable
//! [`SwwError::Generation`] instead of hanging.
//!
//! # Cancellation
//!
//! [`submit_ctx`] threads each member's [`StepCancel`] probe into the
//! group. The denoising pass is handed a *group* probe that fires only
//! when **every** member's probe has fired — a batch aborts as a unit,
//! never because one member gave up. A member whose own probe fires
//! while waiting detaches with [`SwwError::DeadlineExceeded`]
//! (`sww_cancelled_total{site="batch.wait"}`); an abandoned pass counts
//! under `site="denoise"` and is excluded from the batching tallies.
//!
//! [`submit_ctx`]: BatchScheduler::submit_ctx
//!
//! [`GenerationEngine`]: crate::engine::GenerationEngine
//! [`generate_batch`]: sww_genai::diffusion::DiffusionModel::generate_batch
//! [`submit`]: BatchScheduler::submit

use crate::cache::Recipe;
use crate::error::SwwError;
use crate::lifecycle::{record_cancelled, RequestCtx};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use sww_genai::diffusion::{DiffusionModel, ImageModelKind, StepCancel, TileRunner, Tiling};
use sww_genai::prompt::PromptFeatures;
use sww_genai::ImageBuffer;

/// Buckets for the achieved-batch-size histogram.
const BATCH_SIZE_BUCKETS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// How often a batch member re-polls its cancellation probe while
/// blocked on the group outcome.
const MEMBER_TICK: Duration = Duration::from_millis(5);

/// The compatibility key: jobs batch together only when they share the
/// model profile, output resolution and step schedule (everything the
/// shared denoising pass fixes; the prompt is per-image state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchKey {
    /// Image model (determines profile and seed salt).
    pub model: ImageModelKind,
    /// Output width in pixels.
    pub width: u32,
    /// Output height in pixels.
    pub height: u32,
    /// Inference steps (the shared schedule length).
    pub steps: u32,
}

impl BatchKey {
    /// The key a recipe batches under.
    pub fn of(recipe: &Recipe) -> BatchKey {
        BatchKey {
            model: recipe.model,
            width: recipe.width,
            height: recipe.height,
            steps: recipe.steps,
        }
    }
}

/// Batching policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Most jobs one denoising pass may carry (clamped to at least 1).
    pub max_batch: usize,
    /// Hard deadline on how long an open group may wait for company.
    pub max_wait: Duration,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// What one [`BatchScheduler::submit`] call came back with.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// The generated image (bit-identical to the unbatched path).
    pub image: ImageBuffer,
    /// How many jobs shared the denoising pass (≥ 1).
    pub batch_size: usize,
    /// Time this job spent waiting for its group to close.
    pub waited: Duration,
}

/// Snapshot of a scheduler's lifetime tallies (per-scheduler, so bench
/// sweep points that build a fresh server read per-sample numbers).
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    /// Jobs that went through the scheduler.
    pub jobs: u64,
    /// Denoising passes executed.
    pub batches: u64,
    /// Mean achieved batch size (0 when no batch ran yet).
    pub mean_batch: f64,
    /// Largest batch executed.
    pub max_batch: usize,
    /// 99th-percentile job wait for its group to close, in seconds.
    pub p99_wait_s: f64,
}

/// Runs a closed group: produces one image per prompt, in order, or
/// `None` when the pass was abandoned via the cancellation probe (only
/// possible once every member's waiters are gone — batches cancel as a
/// unit, never per-member). Injectable so tests can count passes or
/// misbehave deliberately.
type Executor = dyn Fn(&BatchKey, &[String], &StepCancel) -> Option<Vec<ImageBuffer>> + Send + Sync;

#[derive(Debug)]
enum GroupOutcome {
    /// Executor finished; one image per member, in join order.
    Done(Vec<ImageBuffer>),
    /// The pass was abandoned mid-denoise: every member's cancellation
    /// probe had fired, so nobody is owed an image.
    Cancelled,
    /// The leader unwound before publishing; members must fail (the
    /// engine flight above them poisons too, so callers retry cleanly).
    Poisoned,
}

#[derive(Debug)]
struct GroupState {
    prompts: Vec<String>,
    /// One cancellation probe per member, in join order. The group's own
    /// probe (handed to the executor) fires only when **all** of these
    /// fire: one cancelled member never aborts its batch-mates' pass.
    cancels: Vec<StepCancel>,
    /// Set once the leader stops admitting members.
    closed: bool,
    /// How long the group stayed open collecting members (the added
    /// wait every member paid, set by the leader at close time).
    waited: Duration,
    outcome: Option<GroupOutcome>,
}

#[derive(Debug)]
struct Group {
    state: Mutex<GroupState>,
    changed: Condvar,
    opened: Instant,
}

impl Group {
    fn new(first_prompt: String, first_cancel: StepCancel) -> Group {
        Group {
            state: Mutex::new(GroupState {
                prompts: vec![first_prompt],
                cancels: vec![first_cancel],
                closed: false,
                waited: Duration::ZERO,
                outcome: None,
            }),
            changed: Condvar::new(),
            opened: Instant::now(),
        }
    }
}

#[derive(Default)]
struct Tallies {
    jobs: u64,
    batches: u64,
    size_sum: u64,
    max_batch: usize,
    waits_s: Vec<f64>,
}

/// Groups compatible in-flight generation jobs into shared denoising
/// passes. See the module docs for the policy and guarantees.
pub struct BatchScheduler {
    config: BatchConfig,
    groups: Mutex<HashMap<BatchKey, Arc<Group>>>,
    /// Requests inside [`submit`] that have not attached to a group yet
    /// — the "someone is still on their way" signal leaders poll before
    /// closing early.
    ///
    /// [`submit`]: BatchScheduler::submit
    rendezvous: AtomicUsize,
    executor: Box<Executor>,
    tallies: Mutex<Tallies>,
}

impl std::fmt::Debug for BatchScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchScheduler")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

/// Poisons the group if the leader unwinds before publishing a result.
struct BatchLeaderGuard<'a> {
    group: &'a Group,
    armed: bool,
}

impl Drop for BatchLeaderGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut st = self.group.state.lock().unwrap_or_else(|e| e.into_inner());
            st.outcome = Some(GroupOutcome::Poisoned);
            self.group.changed.notify_all();
        }
    }
}

/// RAII backpressure hint: while held, open groups treat one more
/// submission as "on its way" and will not close early for drain.
/// Created by [`BatchScheduler::announce`]; dropping it withdraws the
/// hint. The deadline still applies, so a stale hint cannot hold a
/// group open past `max_wait`.
#[must_use = "the hint is withdrawn when the guard drops"]
#[derive(Debug)]
pub struct ArrivalGuard<'a> {
    scheduler: &'a BatchScheduler,
}

impl Drop for ArrivalGuard<'_> {
    fn drop(&mut self) {
        self.scheduler.rendezvous.fetch_sub(1, Ordering::SeqCst);
    }
}

impl BatchScheduler {
    /// A scheduler running the real diffusion synthesizer: a closed
    /// group becomes one cancellable
    /// [`DiffusionModel::try_generate_batch`] call, with the group's
    /// all-members-gone probe checked every shared denoise step.
    pub fn new(config: BatchConfig) -> BatchScheduler {
        BatchScheduler::with_executor(
            config,
            Box::new(|key: &BatchKey, prompts: &[String], cancel: &StepCancel| {
                let features: Vec<PromptFeatures> =
                    prompts.iter().map(|p| PromptFeatures::analyze(p)).collect();
                DiffusionModel::new(key.model)
                    .try_generate_batch(&features, key.width, key.height, key.steps, cancel)
            }),
        )
    }

    /// A scheduler whose closed groups run the **data-parallel** kernel:
    /// the batch is split into at most `kernel_tiles` tiles and each tile
    /// — prepare, denoise, decode — runs as one task on `runner`
    /// ([`DiffusionModel::try_generate_batch_on`]). Per-image output is
    /// bit-identical to [`BatchScheduler::new`] for every tile count and
    /// runner (the per-latent-RNG invariant; see PERFORMANCE.md), so
    /// tiling is purely a wall-clock decision.
    ///
    /// With `kernel_tiles <= 1` this *is* [`BatchScheduler::new`] — the
    /// scalar step-major kernel, no runner involved.
    pub fn new_tiled(
        config: BatchConfig,
        kernel_tiles: usize,
        runner: Arc<dyn TileRunner>,
    ) -> BatchScheduler {
        if kernel_tiles <= 1 {
            return BatchScheduler::new(config);
        }
        BatchScheduler::with_executor(
            config,
            Box::new(
                move |key: &BatchKey, prompts: &[String], cancel: &StepCancel| {
                    let features: Vec<PromptFeatures> =
                        prompts.iter().map(|p| PromptFeatures::analyze(p)).collect();
                    DiffusionModel::new(key.model).try_generate_batch_on(
                        &features,
                        key.width,
                        key.height,
                        key.steps,
                        cancel,
                        Tiling::new(runner.as_ref(), kernel_tiles),
                    )
                },
            ),
        )
    }

    /// A scheduler with an injected executor (tests, instrumentation).
    pub fn with_executor(config: BatchConfig, executor: Box<Executor>) -> BatchScheduler {
        BatchScheduler {
            config: BatchConfig {
                max_batch: config.max_batch.max(1),
                max_wait: config.max_wait,
            },
            groups: Mutex::new(HashMap::new()),
            rendezvous: AtomicUsize::new(0),
            executor,
            tallies: Mutex::new(Tallies::default()),
        }
    }

    /// The active policy.
    pub fn config(&self) -> BatchConfig {
        self.config
    }

    /// Announce that a submission is imminent. Queueing layers that
    /// already hold a compatible job — and tests that need a
    /// deterministic batch composition — use this to keep open groups
    /// from closing for drain before the submitter reaches
    /// [`submit`](BatchScheduler::submit).
    pub fn announce(&self) -> ArrivalGuard<'_> {
        self.rendezvous.fetch_add(1, Ordering::SeqCst);
        ArrivalGuard { scheduler: self }
    }

    /// Lifetime tallies of this scheduler instance.
    pub fn stats(&self) -> BatchStats {
        let t = self.tallies.lock().unwrap_or_else(|e| e.into_inner());
        let mut waits = t.waits_s.clone();
        waits.sort_by(|a, b| a.total_cmp(b));
        let p99 = if waits.is_empty() {
            0.0
        } else {
            waits[((waits.len() as f64 * 0.99).ceil() as usize).min(waits.len()) - 1]
        };
        BatchStats {
            jobs: t.jobs,
            batches: t.batches,
            mean_batch: if t.batches == 0 {
                0.0
            } else {
                t.size_sum as f64 / t.batches as f64
            },
            max_batch: t.max_batch,
            p99_wait_s: p99,
        }
    }

    /// Submit one job and block until its image is ready.
    ///
    /// The call joins an open group for the recipe's [`BatchKey`] or
    /// opens one and leads it; the group closes per the module-level
    /// policy, the leader runs the executor once, and every member gets
    /// its own image. Errors only when the group's leader died
    /// mid-execution (a retryable [`SwwError::Generation`]).
    pub fn submit(&self, recipe: &Recipe) -> Result<BatchOutcome, SwwError> {
        self.submit_ctx(recipe, &RequestCtx::unbounded(), &StepCancel::never())
    }

    /// Lifecycle-aware [`submit`](BatchScheduler::submit): `cancel` is
    /// this member's own abandonment probe (for an engine flight leader,
    /// "my flight has no waiters left and my request is finished"), and
    /// `ctx` supplies the error a detaching member unwinds with.
    ///
    /// Cancellation composes conservatively:
    ///
    /// * The pass handed to the executor aborts only when **every**
    ///   member's probe fires — one cancelled member never costs its
    ///   batch-mates their images.
    /// * A member whose own probe fires while it waits for the group
    ///   outcome detaches with [`SwwError::DeadlineExceeded`]; its slot
    ///   still computes (the marginal cost of a batch slot is one
    ///   latent's worth of arithmetic), but nobody blocks on it.
    pub fn submit_ctx(
        &self,
        recipe: &Recipe,
        ctx: &RequestCtx,
        cancel: &StepCancel,
    ) -> Result<BatchOutcome, SwwError> {
        let key = BatchKey::of(recipe);
        self.rendezvous.fetch_add(1, Ordering::SeqCst);

        // Attach: join an open, non-full group or open a new one.
        let (group, index, leads) = {
            let mut groups = self.groups.lock().unwrap_or_else(|e| e.into_inner());
            let attach = groups.get(&key).and_then(|g| {
                let mut st = g.state.lock().unwrap_or_else(|e| e.into_inner());
                if !st.closed && st.prompts.len() < self.config.max_batch {
                    st.prompts.push(recipe.prompt.clone());
                    st.cancels.push(cancel.clone());
                    let idx = st.prompts.len() - 1;
                    g.changed.notify_all();
                    Some((Arc::clone(g), idx))
                } else {
                    None
                }
            });
            match attach {
                Some((g, idx)) => (g, idx, false),
                None => {
                    let g = Arc::new(Group::new(recipe.prompt.clone(), cancel.clone()));
                    groups.insert(key, Arc::clone(&g));
                    (g, 0, true)
                }
            }
        };
        // Attached: no longer part of the rendezvous either way.
        self.rendezvous.fetch_sub(1, Ordering::SeqCst);

        if leads {
            self.lead(&key, &group);
        }
        let (image, waited, batch_size) = self.await_outcome(&group, index, ctx, cancel)?;
        Ok(BatchOutcome {
            image,
            batch_size,
            waited,
        })
    }

    /// Leader path: wait for the group to fill, drain or time out, then
    /// close it, run the batch, and publish one image per member.
    fn lead(&self, key: &BatchKey, group: &Arc<Group>) {
        let deadline = group.opened + self.config.max_wait;
        let mut st = group.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if st.prompts.len() >= self.config.max_batch {
                break;
            }
            if self.rendezvous.load(Ordering::SeqCst) == 0 {
                break; // Nobody else is on their way: waiting is pure delay.
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            // Short poll: joiners notify the condvar, but rendezvous
            // draining elsewhere does not, so re-check on a tick.
            let tick = (deadline - now).min(Duration::from_millis(1));
            let (guard, _) = group
                .changed
                .wait_timeout(st, tick)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
        st.closed = true;
        let wait = group.opened.elapsed();
        st.waited = wait;
        let prompts = st.prompts.clone();
        let cancels = st.cancels.clone();
        drop(st);

        // Unregister so the next submitter for this key opens a fresh
        // group (only if the slot still holds *this* group — a full
        // group may already have been displaced by a newcomer).
        {
            let mut groups = self.groups.lock().unwrap_or_else(|e| e.into_inner());
            if groups.get(key).is_some_and(|g| Arc::ptr_eq(g, group)) {
                groups.remove(key);
            }
        }

        // The group aborts only as a unit: the pass dies when *every*
        // member's probe has fired, never while anyone still wants an
        // image from it.
        let group_cancel =
            StepCancel::from_fn(move || cancels.iter().all(StepCancel::is_cancelled));

        let mut guard = BatchLeaderGuard { group, armed: true };
        let started = Instant::now();
        let images = (self.executor)(key, &prompts, &group_cancel);
        let outcome = match images {
            Some(images) => {
                debug_assert_eq!(images.len(), prompts.len(), "executor contract");
                let elapsed = started.elapsed().as_secs_f64();
                self.record(prompts.len(), wait, elapsed);
                GroupOutcome::Done(images)
            }
            None => {
                // Abandoned mid-denoise: everyone already left, so this
                // never surfaces to a caller — count it where it happened.
                record_cancelled("denoise");
                GroupOutcome::Cancelled
            }
        };

        let mut st = group.state.lock().unwrap_or_else(|e| e.into_inner());
        st.outcome = Some(outcome);
        drop(st);
        guard.armed = false;
        group.changed.notify_all();
    }

    /// Member path: block until the leader publishes, then take our
    /// image — or detach early when our own cancellation probe fires.
    fn await_outcome(
        &self,
        group: &Group,
        index: usize,
        ctx: &RequestCtx,
        cancel: &StepCancel,
    ) -> Result<(ImageBuffer, Duration, usize), SwwError> {
        let mut st = group.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match &st.outcome {
                Some(GroupOutcome::Done(images)) => {
                    let size = images.len();
                    let image = images
                        .get(index)
                        .cloned()
                        .ok_or_else(|| SwwError::Generation {
                            reason: "batch executor returned too few images".into(),
                        })?;
                    return Ok((image, st.waited, size));
                }
                Some(GroupOutcome::Cancelled) => {
                    // Only reachable when every member's probe fired, so
                    // unwinding with the deadline error is truthful.
                    return Err(ctx.deadline_error());
                }
                Some(GroupOutcome::Poisoned) => {
                    return Err(SwwError::Generation {
                        reason: "batch leader failed before publishing".into(),
                    });
                }
                None => {
                    if cancel.is_cancelled() {
                        record_cancelled("batch.wait");
                        return Err(ctx.deadline_error());
                    }
                    let (guard, _) = group
                        .changed
                        .wait_timeout(st, MEMBER_TICK)
                        .unwrap_or_else(|e| e.into_inner());
                    st = guard;
                }
            }
        }
    }

    fn record(&self, size: usize, wait: Duration, exec_s: f64) {
        {
            let mut t = self.tallies.lock().unwrap_or_else(|e| e.into_inner());
            t.jobs += size as u64;
            t.batches += 1;
            t.size_sum += size as u64;
            t.max_batch = t.max_batch.max(size);
            for _ in 0..size {
                t.waits_s.push(wait.as_secs_f64());
            }
        }
        sww_obs::counter("sww_batch_jobs_total", &[]).add(size as u64);
        sww_obs::counter("sww_batch_batches_total", &[]).inc();
        sww_obs::histogram("sww_batch_size_jobs", &[], BATCH_SIZE_BUCKETS).observe(size as f64);
        sww_obs::histogram("sww_batch_wait_seconds", &[], sww_obs::DURATION_BUCKETS)
            .observe(wait.as_secs_f64());
        sww_obs::histogram("sww_batch_image_seconds", &[], sww_obs::DURATION_BUCKETS)
            .observe(exec_s / size as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    fn recipe(prompt: &str) -> Recipe {
        Recipe {
            prompt: prompt.into(),
            model: ImageModelKind::Sd3Medium,
            width: 32,
            height: 32,
            steps: 15,
        }
    }

    fn counting_scheduler(config: BatchConfig) -> (Arc<BatchScheduler>, Arc<AtomicUsize>) {
        let passes = Arc::new(AtomicUsize::new(0));
        let p = Arc::clone(&passes);
        let sched = Arc::new(BatchScheduler::with_executor(
            config,
            Box::new(move |key, prompts, cancel| {
                p.fetch_add(1, Ordering::SeqCst);
                let features: Vec<PromptFeatures> =
                    prompts.iter().map(|s| PromptFeatures::analyze(s)).collect();
                DiffusionModel::new(key.model)
                    .try_generate_batch(&features, key.width, key.height, key.steps, cancel)
            }),
        ));
        (sched, passes)
    }

    #[test]
    fn lone_submit_closes_immediately() {
        let sched = BatchScheduler::new(BatchConfig {
            max_batch: 8,
            max_wait: Duration::from_secs(10),
        });
        let start = Instant::now();
        let out = sched.submit(&recipe("solo prompt")).unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "lone request must not wait out the deadline"
        );
        assert_eq!(out.batch_size, 1);
        let expected =
            DiffusionModel::new(ImageModelKind::Sd3Medium).generate("solo prompt", 32, 32, 15);
        assert_eq!(out.image, expected);
    }

    #[test]
    fn concurrent_submits_share_one_pass_and_stay_bit_identical() {
        let (sched, passes) = counting_scheduler(BatchConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(250),
        });
        // The announce hint keeps the group from closing for drain in
        // the gap between a thread passing the barrier and reaching
        // submit, so exactly one full batch forms deterministically.
        let hint = sched.announce();
        let barrier = Arc::new(Barrier::new(4));
        let outs: Vec<BatchOutcome> = std::thread::scope(|scope| {
            (0..4)
                .map(|i| {
                    let sched = Arc::clone(&sched);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        sched
                            .submit(&recipe(&format!("prompt number {i}")))
                            .unwrap()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        drop(hint);
        assert_eq!(passes.load(Ordering::SeqCst), 1, "one shared pass");
        let model = DiffusionModel::new(ImageModelKind::Sd3Medium);
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(out.batch_size, 4);
            assert_eq!(
                out.image,
                model.generate(&format!("prompt number {i}"), 32, 32, 15),
                "member {i} diverged"
            );
        }
        let stats = sched.stats();
        assert_eq!(stats.jobs, 4);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.max_batch, 4);
    }

    #[test]
    fn incompatible_keys_never_share_a_batch() {
        let (sched, passes) = counting_scheduler(BatchConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(100),
        });
        let barrier = Arc::new(Barrier::new(2));
        std::thread::scope(|scope| {
            let s1 = Arc::clone(&sched);
            let b1 = Arc::clone(&barrier);
            let a = scope.spawn(move || {
                b1.wait();
                s1.submit(&recipe("same prompt")).unwrap()
            });
            let s2 = Arc::clone(&sched);
            let b2 = Arc::clone(&barrier);
            let b = scope.spawn(move || {
                b2.wait();
                let mut r = recipe("same prompt");
                r.steps = 30; // different schedule: must not batch
                s2.submit(&r).unwrap()
            });
            let (oa, ob) = (a.join().unwrap(), b.join().unwrap());
            assert_eq!(oa.batch_size, 1);
            assert_eq!(ob.batch_size, 1);
        });
        assert_eq!(passes.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn group_overflow_opens_a_second_batch() {
        let (sched, passes) = counting_scheduler(BatchConfig {
            max_batch: 2,
            max_wait: Duration::from_millis(250),
        });
        let barrier = Arc::new(Barrier::new(4));
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let sched = Arc::clone(&sched);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        sched.submit(&recipe(&format!("overflow {i}"))).unwrap()
                    })
                })
                .collect();
            for h in handles {
                let out = h.join().unwrap();
                assert!(out.batch_size <= 2, "cap respected: {}", out.batch_size);
            }
        });
        assert!(passes.load(Ordering::SeqCst) >= 2);
        assert_eq!(sched.stats().jobs, 4);
    }

    #[test]
    fn deadline_bounds_wait_even_with_rendezvous_pressure() {
        // A member that joins and a stream of unrelated-key submitters
        // cannot hold a group open past max_wait.
        let sched = Arc::new(BatchScheduler::new(BatchConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(50),
        }));
        let start = Instant::now();
        let out = sched.submit(&recipe("deadline probe")).unwrap();
        // Drained-rendezvous fires long before the deadline here; the
        // invariant that matters is the hard upper bound.
        assert!(start.elapsed() < Duration::from_secs(2));
        assert!(out.waited <= Duration::from_millis(50) + Duration::from_millis(20));
    }

    #[test]
    fn cancelled_member_never_aborts_its_batchmates() {
        use std::sync::atomic::AtomicBool;
        // Two members share a group; one's probe fires while it waits.
        // The pass must still complete (the group probe needs *all*
        // members gone) and the survivor must get its image.
        let (sched, passes) = counting_scheduler(BatchConfig {
            max_batch: 2,
            max_wait: Duration::from_millis(250),
        });
        let doomed = Arc::new(AtomicBool::new(false));
        let probe = {
            let doomed = Arc::clone(&doomed);
            StepCancel::from_fn(move || doomed.load(Ordering::SeqCst))
        };
        // Keep the group open until both threads attach (same trick as
        // the bit-identical test: without it the first arrival can close
        // for drain before the second reaches submit).
        let hint = sched.announce();
        let barrier = Arc::new(Barrier::new(2));
        std::thread::scope(|scope| {
            let s1 = Arc::clone(&sched);
            let b1 = Arc::clone(&barrier);
            let d = Arc::clone(&doomed);
            let a = scope.spawn(move || {
                b1.wait();
                let ctx = RequestCtx::unbounded();
                d.store(true, Ordering::SeqCst);
                s1.submit_ctx(&recipe("cancelled member"), &ctx, &probe)
            });
            let s2 = Arc::clone(&sched);
            let b2 = Arc::clone(&barrier);
            let b = scope.spawn(move || {
                b2.wait();
                s2.submit(&recipe("surviving member"))
            });
            let (ra, rb) = (a.join().unwrap(), b.join().unwrap());
            // The cancelled member either detached in time (deadline
            // error) or the pass finished first and it got its image —
            // both are legal; what is *illegal* is the survivor losing.
            if let Err(e) = ra {
                assert!(matches!(e, SwwError::DeadlineExceeded { .. }), "{e:?}");
            }
            let out = rb.expect("survivor must get its image");
            let expected = DiffusionModel::new(ImageModelKind::Sd3Medium).generate(
                "surviving member",
                32,
                32,
                15,
            );
            assert_eq!(out.image, expected);
        });
        drop(hint);
        assert_eq!(passes.load(Ordering::SeqCst), 1, "one shared pass ran");
    }

    #[test]
    fn fully_abandoned_group_cancels_the_pass() {
        // A lone member whose probe is already fired: the group probe is
        // satisfied immediately, the executor abandons the pass, and the
        // member unwinds with the deadline error instead of an image.
        let (sched, passes) = counting_scheduler(BatchConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(50),
        });
        let ctx = RequestCtx::unbounded();
        ctx.cancel();
        let probe = StepCancel::from_fn(|| true);
        let err = sched
            .submit_ctx(&recipe("abandoned"), &ctx, &probe)
            .unwrap_err();
        assert!(matches!(err, SwwError::DeadlineExceeded { budget_ms: 0 }));
        assert_eq!(
            passes.load(Ordering::SeqCst),
            1,
            "pass started then aborted"
        );
        assert_eq!(sched.stats().batches, 0, "abandoned pass is not tallied");
    }

    /// The tiled scheduler is a drop-in for the scalar one: same images,
    /// bit for bit, with the pass fanned out across worker-pool tiles.
    #[test]
    fn tiled_scheduler_is_bit_identical_to_scalar() {
        let config = BatchConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(250),
        };
        let runner = Arc::new(crate::workpool::WorkerPool::new(3, 16));
        let sched = Arc::new(BatchScheduler::new_tiled(config, 4, runner));
        let hint = sched.announce();
        let barrier = Arc::new(Barrier::new(4));
        let outs: Vec<BatchOutcome> = std::thread::scope(|scope| {
            (0..4)
                .map(|i| {
                    let sched = Arc::clone(&sched);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        sched.submit(&recipe(&format!("tiled prompt {i}"))).unwrap()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        drop(hint);
        let model = DiffusionModel::new(ImageModelKind::Sd3Medium);
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(
                out.image,
                model.generate(&format!("tiled prompt {i}"), 32, 32, 15),
                "member {i} diverged under tiling"
            );
        }
        assert_eq!(sched.stats().batches, 1, "one shared tiled pass");
    }

    #[test]
    fn new_tiled_with_one_tile_is_the_scalar_scheduler() {
        let runner = Arc::new(crate::workpool::WorkerPool::new(1, 4));
        let sched = BatchScheduler::new_tiled(BatchConfig::default(), 1, runner);
        let out = sched.submit(&recipe("single tile fallback")).unwrap();
        let expected = DiffusionModel::new(ImageModelKind::Sd3Medium).generate(
            "single tile fallback",
            32,
            32,
            15,
        );
        assert_eq!(out.image, expected);
    }

    #[test]
    fn poisoned_leader_fails_members_without_hanging() {
        let sched = Arc::new(BatchScheduler::with_executor(
            BatchConfig {
                max_batch: 2,
                max_wait: Duration::from_millis(200),
            },
            Box::new(|_, _, _| panic!("executor dies")),
        ));
        let barrier = Arc::new(Barrier::new(2));
        let results: Vec<Result<BatchOutcome, SwwError>> = std::thread::scope(|scope| {
            (0..2)
                .map(|i| {
                    let sched = Arc::clone(&sched);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            sched.submit(&recipe(&format!("doomed {i}")))
                        }));
                        match r {
                            Ok(inner) => inner,
                            Err(_) => Err(SwwError::Generation {
                                reason: "leader panicked".into(),
                            }),
                        }
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        // Both resolve (no hang): the leader panicked, the member saw the
        // poisoned group and got a retryable error.
        assert!(results.iter().all(|r| r.is_err()));
    }
}
