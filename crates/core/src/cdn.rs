//! CDN deployment simulation (paper §2.2).
//!
//! CDNs replicate content across many edge sites, so prompt-form storage
//! multiplies its savings by the replica count. The intermediate mode —
//! prompts at the edge, generation at the edge on request — "maintains
//! the storage benefits, but loses data transmission benefits", and
//! trades network energy for edge generation energy.

use crate::stats::PageStats;
use std::collections::HashMap;
use sww_energy::device::{profile, DeviceKind};
use sww_energy::{cost, network, Energy};
use sww_genai::diffusion::ImageModelKind;

/// What the edge stores and does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeMode {
    /// Classic CDN: media files replicated to every edge.
    StoreMedia,
    /// SWW edge: prompts replicated; media generated at the edge per
    /// request (and optionally cached).
    StorePrompts {
        /// Cache generated media for subsequent hits.
        cache_generated: bool,
    },
    /// Full SWW: prompts pass through the edge to generating clients.
    PassPrompts,
}

/// One media object in the catalog.
#[derive(Debug, Clone)]
pub struct CatalogItem {
    /// Identifier.
    pub id: String,
    /// Media bytes in traditional form.
    pub media_bytes: u64,
    /// Metadata (prompt dictionary) bytes in SWW form.
    pub metadata_bytes: u64,
    /// Image side in pixels (drives edge generation cost).
    pub side: u32,
}

/// The simulated CDN: one origin, `edge_count` identical edges.
#[derive(Debug)]
pub struct CdnSimulation {
    catalog: Vec<CatalogItem>,
    edge_count: u32,
    mode: EdgeMode,
    /// Per-edge cache of generated media ids.
    generated_cache: HashMap<(u32, String), u64>,
    /// Octets sent from edges to users.
    pub edge_to_user_bytes: u64,
    /// Octets pulled from the origin to fill edges.
    pub origin_to_edge_bytes: u64,
    /// Modelled seconds of edge generation.
    pub edge_generation_time_s: f64,
    /// Modelled energy of edge generation.
    pub edge_generation_energy: Energy,
    /// Requests served.
    pub requests: u64,
    /// Generated-media cache hits at edges.
    pub cache_hits: u64,
}

impl CdnSimulation {
    /// Build a CDN over a catalog.
    pub fn new(catalog: Vec<CatalogItem>, edge_count: u32, mode: EdgeMode) -> CdnSimulation {
        CdnSimulation {
            catalog,
            edge_count: edge_count.max(1),
            mode,
            generated_cache: HashMap::new(),
            edge_to_user_bytes: 0,
            origin_to_edge_bytes: 0,
            edge_generation_time_s: 0.0,
            edge_generation_energy: Energy::ZERO,
            requests: 0,
            cache_hits: 0,
        }
    }

    /// Total storage across all edges in the current mode.
    pub fn edge_storage_bytes(&self) -> u64 {
        let per_edge: u64 = match self.mode {
            EdgeMode::StoreMedia => self.catalog.iter().map(|c| c.media_bytes).sum(),
            EdgeMode::StorePrompts { .. } | EdgeMode::PassPrompts => {
                self.catalog.iter().map(|c| c.metadata_bytes).sum()
            }
        };
        per_edge * u64::from(self.edge_count)
    }

    /// Storage the same catalog needs under classic replication — the
    /// baseline the paper's storage claim compares against.
    pub fn baseline_storage_bytes(&self) -> u64 {
        let per_edge: u64 = self.catalog.iter().map(|c| c.media_bytes).sum();
        per_edge * u64::from(self.edge_count)
    }

    /// Serve one request for `item_id` at `edge`. Returns bytes sent to
    /// the user.
    pub fn request(&mut self, edge: u32, item_id: &str) -> u64 {
        self.requests += 1;
        let edge = edge % self.edge_count;
        let item = self
            .catalog
            .iter()
            .find(|c| c.id == item_id)
            .cloned()
            .expect("item in catalog");
        match self.mode {
            EdgeMode::StoreMedia => {
                // Replicated media: edge hit, send the file.
                self.edge_to_user_bytes += item.media_bytes;
                item.media_bytes
            }
            EdgeMode::PassPrompts => {
                // The client generates: only metadata travels.
                self.edge_to_user_bytes += item.metadata_bytes;
                item.metadata_bytes
            }
            EdgeMode::StorePrompts { cache_generated } => {
                let key = (edge, item.id.clone());
                let cached = cache_generated && self.generated_cache.contains_key(&key);
                if cached {
                    self.cache_hits += 1;
                } else {
                    // Generate at the edge (workstation-class hardware).
                    let ws = profile(DeviceKind::Workstation);
                    let t = cost::image_generation_time(
                        ImageModelKind::Sd3Medium,
                        &ws,
                        item.side,
                        item.side,
                        15,
                    )
                    .expect("edge model is local");
                    self.edge_generation_time_s += t;
                    self.edge_generation_energy =
                        self.edge_generation_energy + Energy::from_power(ws.image_power_w, t);
                    if cache_generated {
                        self.generated_cache.insert(key, item.media_bytes);
                    }
                }
                // Media still crosses the edge→user link.
                self.edge_to_user_bytes += item.media_bytes;
                item.media_bytes
            }
        }
    }

    /// Network energy spent on edge→user traffic so far.
    pub fn transmission_energy(&self) -> Energy {
        network::transmission_energy(self.edge_to_user_bytes)
    }

    /// Aggregate stats snapshot.
    pub fn stats(&self) -> PageStats {
        PageStats {
            wire_bytes: self.edge_to_user_bytes,
            traditional_bytes: self.requests
                * (self.catalog.iter().map(|c| c.media_bytes).sum::<u64>()
                    / self.catalog.len().max(1) as u64),
            generation_time_s: self.edge_generation_time_s,
            generation_energy: self.edge_generation_energy,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Vec<CatalogItem> {
        (0..10)
            .map(|i| CatalogItem {
                id: format!("img{i}"),
                media_bytes: 131_072,
                metadata_bytes: 428,
                side: 1024,
            })
            .collect()
    }

    #[test]
    fn prompt_storage_shrinks_by_media_ratio() {
        let media = CdnSimulation::new(catalog(), 100, EdgeMode::StoreMedia);
        let prompts = CdnSimulation::new(
            catalog(),
            100,
            EdgeMode::StorePrompts {
                cache_generated: false,
            },
        );
        let ratio = media.edge_storage_bytes() as f64 / prompts.edge_storage_bytes() as f64;
        // 131072 / 428 ≈ 306× per object (the Table 2 large-image ratio).
        assert!((300.0..315.0).contains(&ratio), "ratio={ratio:.1}");
        assert_eq!(media.edge_storage_bytes(), media.baseline_storage_bytes());
    }

    #[test]
    fn edge_generation_keeps_storage_wins_but_not_transmission() {
        // Paper §2.2: "This approach maintains the storage benefits, but
        // loses data transmission benefits."
        let mut edge_gen = CdnSimulation::new(
            catalog(),
            10,
            EdgeMode::StorePrompts {
                cache_generated: false,
            },
        );
        let mut classic = CdnSimulation::new(catalog(), 10, EdgeMode::StoreMedia);
        for r in 0..50 {
            edge_gen.request(r % 10, &format!("img{}", r % 10));
            classic.request(r % 10, &format!("img{}", r % 10));
        }
        assert!(edge_gen.edge_storage_bytes() < classic.edge_storage_bytes() / 100);
        assert_eq!(edge_gen.edge_to_user_bytes, classic.edge_to_user_bytes);
        assert!(edge_gen.edge_generation_time_s > 0.0);
        assert_eq!(classic.edge_generation_time_s, 0.0);
    }

    #[test]
    fn pass_prompts_saves_transmission_too() {
        let mut sww = CdnSimulation::new(catalog(), 10, EdgeMode::PassPrompts);
        let mut classic = CdnSimulation::new(catalog(), 10, EdgeMode::StoreMedia);
        for r in 0..20 {
            sww.request(0, &format!("img{}", r % 10));
            classic.request(0, &format!("img{}", r % 10));
        }
        let ratio = classic.edge_to_user_bytes as f64 / sww.edge_to_user_bytes as f64;
        assert!(ratio > 100.0, "transmission ratio {ratio:.0}");
        assert!(sww.transmission_energy() < classic.transmission_energy());
    }

    #[test]
    fn generated_cache_avoids_regeneration() {
        let mut cdn = CdnSimulation::new(
            catalog(),
            2,
            EdgeMode::StorePrompts {
                cache_generated: true,
            },
        );
        cdn.request(0, "img0");
        let t_first = cdn.edge_generation_time_s;
        cdn.request(0, "img0");
        assert_eq!(cdn.edge_generation_time_s, t_first, "second hit cached");
        assert_eq!(cdn.cache_hits, 1);
        // A different edge must generate its own copy.
        cdn.request(1, "img0");
        assert!(cdn.edge_generation_time_s > t_first);
    }

    #[test]
    fn energy_tradeoff_visible() {
        // Edge generation energy dwarfs the transmission energy it could
        // ever save — the paper's "not encouraging" present-day result.
        let mut cdn = CdnSimulation::new(
            catalog(),
            1,
            EdgeMode::StorePrompts {
                cache_generated: false,
            },
        );
        for _ in 0..10 {
            cdn.request(0, "img0");
        }
        assert!(cdn.edge_generation_energy.wh() > cdn.transmission_energy().wh() * 10.0);
    }
}
