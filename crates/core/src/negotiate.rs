//! Capability negotiation outcomes (paper §3, §5.1, §6.2).
//!
//! "In any case other than both server and client having
//! SETTINGS_GEN_ABILITY set to 1, default (unsupported) behavior will be
//! assumed." A server may also *choose* traditional service despite a
//! capable client ("for example to provide higher performance or based on
//! the availability of renewable energy"), and when the client cannot
//! generate, the server can expand prompts itself before sending ("this
//! saves storage space, and avoids saving two copies of content").

use crate::error::SwwError;
use crate::policy::ServerPolicy;
use sww_genai::diffusion::ImageModelKind;
use sww_genai::text::TextModelKind;
use sww_http2::GenAbility;

/// How the server will serve a page after negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Prompts travel; the client generates (both peers opted in).
    Generative,
    /// Reduced media travels; the client upscales.
    UpscaleAssisted,
    /// The server generates from its stored prompts, then sends media
    /// (client lacks ability; storage savings only).
    ServerGenerated,
    /// Fully traditional HTTP/2 service (server lacks prompts or policy
    /// forbids generation).
    Traditional,
}

/// Decide the serve mode from both advertised abilities and the server's
/// policy. The paper's §6.2 functionality matrix falls out of this table.
pub fn decide(server: GenAbility, client: GenAbility, policy: &ServerPolicy) -> ServeMode {
    let shared = server.intersect(client);
    if !server.supported() {
        // A non-participating server has no prompts to serve.
        return ServeMode::Traditional;
    }
    if !policy.allow_client_generation {
        return if policy.expand_prompts_server_side {
            ServeMode::ServerGenerated
        } else {
            ServeMode::Traditional
        };
    }
    if shared.can_generate() {
        ServeMode::Generative
    } else if shared.can_upscale() {
        ServeMode::UpscaleAssisted
    } else if policy.expand_prompts_server_side {
        ServeMode::ServerGenerated
    } else {
        ServeMode::Traditional
    }
}

/// One session's negotiation state: both advertisements plus their
/// intersection, computed in exactly one place.
///
/// Both transports funnel through [`session`] on **every request**, with
/// whatever the peer most recently advertised — h2 re-reads the
/// connection's live SETTINGS, h3 re-reads the latest control-stream
/// update. Withdraw/restore therefore needs no extra machinery: a client
/// that re-announces `GenAbility::none()` mid-connection simply produces
/// a different `client` input on its next request, and the min
/// (intersection) semantics degrade the session to the PR 3 fallback
/// path; re-announcing the old ability restores it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionAbilities {
    /// What the server advertised.
    pub server: GenAbility,
    /// What the client most recently advertised.
    pub client: GenAbility,
    /// The shared capability: bitwise min of the flags and the lower of
    /// each model level.
    pub negotiated: GenAbility,
}

impl SessionAbilities {
    /// The serve mode this session's abilities produce under `policy` —
    /// the §6.2 functionality matrix, looked up through the one shared
    /// negotiation record.
    pub fn mode(&self, policy: &ServerPolicy) -> ServeMode {
        decide(self.server, self.client, policy)
    }
}

/// The single h2/h3 negotiation entry point: fold both advertisements
/// into a [`SessionAbilities`]. `SETTINGS_GEN_ABILITY` semantics (min,
/// withdraw, restore) live here and nowhere else — transport adapters
/// only deliver the peer's latest advertisement.
pub fn session(server: GenAbility, client: GenAbility) -> SessionAbilities {
    SessionAbilities {
        server,
        client,
        negotiated: server.intersect(client),
    }
}

/// Ordinal image-model generations for the §7 model negotiation: higher
/// level = newer model generation. Level 0 means "unspecified", which
/// resolves to the paper's default (SD 3 Medium).
pub fn image_model_for_level(level: u8) -> ImageModelKind {
    match level {
        0 => ImageModelKind::Sd3Medium, // unspecified → prototype default
        1 => ImageModelKind::Sd21Base,
        2 => ImageModelKind::Sd3Medium,
        3 => ImageModelKind::Sd35Medium,
        _ => ImageModelKind::FluxFast, // 4+: future fast generation
    }
}

/// The advertised level for a given image model (inverse of
/// [`image_model_for_level`] for concrete models).
pub fn level_for_image_model(kind: ImageModelKind) -> u8 {
    match kind {
        ImageModelKind::Sd21Base => 1,
        ImageModelKind::Sd3Medium => 2,
        ImageModelKind::Sd35Medium => 3,
        ImageModelKind::Dalle3 => 3, // server-class quality, same wire level
        ImageModelKind::FluxFast => 4,
    }
}

/// Ordinal text-model generations.
pub fn text_model_for_level(level: u8) -> TextModelKind {
    match level {
        0 => TextModelKind::DeepSeekR1_8B, // unspecified → paper's choice
        1 => TextModelKind::DeepSeekR1_1_5B,
        2 => TextModelKind::Llama32,
        3 => TextModelKind::DeepSeekR1_8B,
        _ => TextModelKind::DeepSeekR1_14B,
    }
}

/// Resolve the model pair implied by a negotiated ability's level fields.
pub fn select_models(shared: GenAbility) -> (ImageModelKind, TextModelKind) {
    (
        image_model_for_level(shared.image_model_level()),
        text_model_for_level(shared.text_model_level()),
    )
}

/// Strict variant of [`select_models`]: resolve the model pair only when
/// the negotiated ability actually permits client-side generation,
/// failing with [`SwwError::Negotiation`] otherwise. Callers that need a
/// lenient default (e.g. a client whose generator may simply go unused)
/// should keep using [`select_models`].
pub fn models_for(shared: GenAbility) -> Result<(ImageModelKind, TextModelKind), SwwError> {
    if !shared.can_generate() {
        return Err(SwwError::Negotiation {
            reason: "negotiated ability does not permit generation".into(),
        });
    }
    Ok(select_models(shared))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_policy() -> ServerPolicy {
        ServerPolicy::default()
    }

    #[test]
    fn model_negotiation_picks_common_generation() {
        // A new client meeting an older server settles on the older
        // model generation, so both sides render identical content.
        let client = GenAbility::full()
            .with_image_model_level(4)
            .with_text_model_level(4);
        let server = GenAbility::full()
            .with_image_model_level(2)
            .with_text_model_level(3);
        let shared = client.intersect(server);
        let (img, txt) = select_models(shared);
        assert_eq!(img, ImageModelKind::Sd3Medium);
        assert_eq!(txt, TextModelKind::DeepSeekR1_8B);
    }

    #[test]
    fn unspecified_levels_resolve_to_paper_defaults() {
        let (img, txt) = select_models(GenAbility::full());
        assert_eq!(img, ImageModelKind::Sd3Medium);
        assert_eq!(txt, TextModelKind::DeepSeekR1_8B);
    }

    #[test]
    fn strict_model_resolution_requires_generation() {
        assert!(models_for(GenAbility::full()).is_ok());
        let err = models_for(GenAbility::none()).unwrap_err();
        assert!(matches!(err, SwwError::Negotiation { .. }), "{err}");
        // Upscale-only sessions have no shared generation models either.
        assert!(models_for(GenAbility::upscale_only()).is_err());
    }

    #[test]
    fn level_mapping_is_monotone_in_quality() {
        use sww_genai::diffusion::models::profile;
        let q1 = profile(image_model_for_level(1)).quality;
        let q2 = profile(image_model_for_level(2)).quality;
        let q3 = profile(image_model_for_level(3)).quality;
        let q4 = profile(image_model_for_level(4)).quality;
        assert!(q1 < q2 && q2 < q3 && q3 < q4);
    }

    #[test]
    fn level_roundtrip_for_local_models() {
        for kind in [
            ImageModelKind::Sd21Base,
            ImageModelKind::Sd3Medium,
            ImageModelKind::Sd35Medium,
            ImageModelKind::FluxFast,
        ] {
            assert_eq!(image_model_for_level(level_for_image_model(kind)), kind);
        }
    }

    #[test]
    fn session_entry_point_computes_min_and_mode() {
        let s = session(
            GenAbility::full().with_image_model_level(2),
            GenAbility::full().with_image_model_level(4),
        );
        assert!(s.negotiated.can_generate());
        assert_eq!(s.negotiated.image_model_level(), 2, "min of model levels");
        assert_eq!(s.mode(&default_policy()), ServeMode::Generative);
    }

    #[test]
    fn session_withdraw_and_restore_through_reinvocation() {
        // The withdraw/restore contract: the entry point is pure, so the
        // transport re-invokes it with the latest advertisement and the
        // outcome tracks the wire state.
        let server = GenAbility::full();
        assert!(session(server, GenAbility::full())
            .negotiated
            .can_generate());
        let withdrawn = session(server, GenAbility::none());
        assert!(!withdrawn.negotiated.supported());
        assert_eq!(
            withdrawn.mode(&default_policy()),
            ServeMode::ServerGenerated,
            "withdraw degrades to the PR 3 fallback path"
        );
        assert!(session(server, GenAbility::full())
            .negotiated
            .can_generate());
    }

    #[test]
    fn functionality_matrix() {
        // The four §6.2 scenarios.
        let p = default_policy();
        assert_eq!(
            decide(GenAbility::full(), GenAbility::full(), &p),
            ServeMode::Generative
        );
        assert_eq!(
            decide(GenAbility::full(), GenAbility::none(), &p),
            ServeMode::ServerGenerated
        );
        assert_eq!(
            decide(GenAbility::none(), GenAbility::full(), &p),
            ServeMode::Traditional
        );
        assert_eq!(
            decide(GenAbility::none(), GenAbility::none(), &p),
            ServeMode::Traditional
        );
    }

    #[test]
    fn upscale_only_client() {
        let p = default_policy();
        let server = GenAbility::from_bits(GenAbility::GENERATE | GenAbility::UPSCALE);
        assert_eq!(
            decide(server, GenAbility::upscale_only(), &p),
            ServeMode::UpscaleAssisted
        );
    }

    #[test]
    fn policy_can_force_traditional() {
        // §5.1: "A server can choose to serve traditional content even if
        // the client supports generative ability."
        let p = ServerPolicy {
            allow_client_generation: false,
            expand_prompts_server_side: false,
            ..ServerPolicy::default()
        };
        assert_eq!(
            decide(GenAbility::full(), GenAbility::full(), &p),
            ServeMode::Traditional
        );
    }

    #[test]
    fn policy_can_force_server_generation() {
        let p = ServerPolicy {
            allow_client_generation: false,
            expand_prompts_server_side: true,
            ..ServerPolicy::default()
        };
        assert_eq!(
            decide(GenAbility::full(), GenAbility::full(), &p),
            ServeMode::ServerGenerated
        );
    }

    #[test]
    fn naive_client_without_server_expansion_gets_traditional() {
        let p = ServerPolicy {
            expand_prompts_server_side: false,
            ..ServerPolicy::default()
        };
        assert_eq!(
            decide(GenAbility::full(), GenAbility::none(), &p),
            ServeMode::Traditional
        );
    }
}
