//! Client retry policy: exponential backoff with deterministic jitter.
//!
//! PR 2 taught the server to answer `503` + `Retry-After` under load, and
//! the fault layer ([`crate::faults`]) can now make any layer fail on
//! demand — so the client needs a principled answer to "what do I do with
//! a transient failure". [`RetryPolicy`] is that answer: exponential
//! backoff from a base delay, capped, jittered by a **seeded** PRNG (so
//! chaos runs replay bit-for-bit), honoring server `Retry-After` hints,
//! bounded by both an attempt count and a total-backoff deadline.
//!
//! The delay sequence is monotonically non-decreasing by construction,
//! never exceeds the cap (hints excepted — an explicit server hint is
//! authoritative), and stops when either bound is reached; these are the
//! invariants `crates/core/tests/proptest_retry.rs` checks for arbitrary
//! configurations.

use std::time::Duration;

/// How a client retries transient failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (clamped to at least 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_delay: Duration,
    /// Upper bound on any computed backoff delay.
    pub max_delay: Duration,
    /// Budget for the *sum* of backoff delays; a retry whose delay would
    /// cross it is not attempted.
    pub deadline: Duration,
    /// Jitter PRNG seed; identical seeds yield identical delay sequences.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// Four attempts, 50 ms base, 2 s cap, 10 s total backoff budget.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            deadline: Duration::from_secs(10),
            seed: 0x5e77_1e5d,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (the pre-resilience client behaviour).
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Start a fresh schedule (one per request).
    pub fn schedule(&self) -> BackoffSchedule {
        BackoffSchedule {
            policy: *self,
            retries_planned: 0,
            spent: Duration::ZERO,
            last: Duration::ZERO,
            rng: self.seed,
        }
    }
}

/// The per-request backoff iterator produced by [`RetryPolicy::schedule`].
#[derive(Debug, Clone)]
pub struct BackoffSchedule {
    policy: RetryPolicy,
    retries_planned: u32,
    spent: Duration,
    last: Duration,
    rng: u64,
}

impl BackoffSchedule {
    /// The delay to sleep before the next retry, or `None` when the
    /// attempt budget or the deadline is exhausted.
    pub fn next_delay(&mut self) -> Option<Duration> {
        self.next_delay_with_hint(None)
    }

    /// Like [`next_delay`], honoring a server `Retry-After` hint: the
    /// returned delay is at least the hint (even past the cap — an
    /// explicit hint is authoritative), but the deadline still binds.
    ///
    /// [`next_delay`]: BackoffSchedule::next_delay
    pub fn next_delay_with_hint(&mut self, hint: Option<Duration>) -> Option<Duration> {
        if self.retries_planned + 1 >= self.policy.max_attempts.max(1) {
            return None;
        }
        let raw = self
            .policy
            .base_delay
            .saturating_mul(1u32.checked_shl(self.retries_planned).unwrap_or(u32::MAX))
            .min(self.policy.max_delay);
        // Jitter in [0, raw/4], then re-cap; taking the max with the
        // previous delay keeps the sequence monotone without ever
        // exceeding the cap (both operands are ≤ cap).
        self.rng = splitmix64(self.rng);
        let jitter = raw.mul_f64(0.25 * unit(self.rng));
        let mut delay = (raw + jitter).min(self.policy.max_delay).max(self.last);
        if let Some(hint) = hint {
            delay = delay.max(hint);
        }
        if self.spent + delay > self.policy.deadline {
            return None;
        }
        self.spent += delay;
        self.last = delay.min(self.policy.max_delay);
        self.retries_planned += 1;
        Some(delay)
    }

    /// Retries handed out so far.
    pub fn retries(&self) -> u32 {
        self.retries_planned
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(450),
            deadline: Duration::from_secs(10),
            seed: 7,
        }
    }

    fn drain(policy: &RetryPolicy) -> Vec<Duration> {
        let mut schedule = policy.schedule();
        std::iter::from_fn(|| schedule.next_delay()).collect()
    }

    #[test]
    fn backoff_grows_and_caps() {
        let delays = drain(&policy());
        assert_eq!(delays.len(), 4, "5 attempts = 4 retries");
        assert!(delays.windows(2).all(|w| w[0] <= w[1]), "{delays:?}");
        assert!(delays.iter().all(|d| *d <= Duration::from_millis(450)));
        assert!(delays[0] >= Duration::from_millis(100));
    }

    #[test]
    fn identical_seeds_replay() {
        assert_eq!(drain(&policy()), drain(&policy()));
        let mut other = policy();
        other.seed = 8;
        assert_ne!(drain(&policy()), drain(&other), "jitter ignores the seed");
    }

    #[test]
    fn deadline_stops_the_schedule() {
        let tight = RetryPolicy {
            deadline: Duration::from_millis(250),
            ..policy()
        };
        let delays = drain(&tight);
        let total: Duration = delays.iter().sum();
        assert!(total <= tight.deadline, "{delays:?}");
        assert!(delays.len() < 4, "deadline must cut attempts short");
    }

    #[test]
    fn hint_overrides_computed_delay() {
        let mut schedule = policy().schedule();
        let hinted = schedule
            .next_delay_with_hint(Some(Duration::from_secs(3)))
            .unwrap();
        assert_eq!(hinted, Duration::from_secs(3), "hint is authoritative");
        // But the deadline still binds: a hint past it ends the schedule.
        let mut schedule = policy().schedule();
        assert_eq!(
            schedule.next_delay_with_hint(Some(Duration::from_secs(11))),
            None
        );
    }

    #[test]
    fn no_retries_policy_never_delays() {
        assert!(drain(&RetryPolicy::no_retries()).is_empty());
        let zero = RetryPolicy {
            max_attempts: 0,
            ..policy()
        };
        assert!(drain(&zero).is_empty(), "0 attempts clamps to 1");
    }
}
