//! A fixed-size worker pool with a bounded queue and explicit
//! backpressure, built on `std::thread` only.
//!
//! This is the execution substrate of the concurrent serving engine: the
//! server front ends hand each request to the pool and block for the
//! response, so at most `workers` requests execute at once and at most
//! `queue_capacity` wait. When the queue is full, [`WorkerPool::run`]
//! fails fast with [`SwwError::Saturated`] — the server maps that to
//! `503` + `Retry-After` instead of letting latency grow without bound.
//!
//! Observability: `sww_pool_queue_depth` (gauge) tracks waiting jobs,
//! `sww_pool_jobs_total{result=executed|rejected}` counts admissions,
//! and `sww_pool_worker_utilization` (histogram) records the busy-worker
//! fraction sampled at each job start.

use crate::error::SwwError;
use crate::faults::{self, FaultAction, FaultSite};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use sww_genai::diffusion::{TileRunner, TileTask};

/// EWMA smoothing factor for the per-job service-time estimate: each
/// completed job contributes 20% of the new estimate.
const SERVICE_EWMA_ALPHA: f64 = 0.2;

/// Default starting guess for per-job service time until real samples
/// arrive. This cold-start prior drives both `Retry-After` advice and
/// deadline-aware admission control before the first job completes, so
/// deployments whose jobs are far from 1 s should override it via
/// [`WorkerPool::with_service_prior`] (surfaced as
/// `GenerativeServerBuilder::service_time_prior`). A deliberately
/// pessimistic prior sheds deadline-bounded work aggressively while the
/// pool is cold; a tiny prior admits everything until the EWMA learns
/// better.
pub const SERVICE_TIME_PRIOR_S: f64 = 1.0;

/// Buckets for the busy-worker fraction (0..=1].
const UTILIZATION_BUCKETS: &[f64] = &[0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0];

type Job = Box<dyn FnOnce() + Send + 'static>;

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<QueueState>,
    job_ready: Condvar,
    queue_capacity: usize,
    workers: usize,
    active: AtomicUsize,
    /// EWMA of observed per-job service time, stored as `f64` bits so
    /// workers can update it without a lock.
    service_ewma_bits: AtomicU64,
}

impl PoolShared {
    fn set_depth_gauge(&self, depth: usize) {
        sww_obs::gauge("sww_pool_queue_depth", &[]).set(depth as f64);
    }

    fn service_estimate_s(&self) -> f64 {
        f64::from_bits(self.service_ewma_bits.load(Ordering::Relaxed))
    }

    fn record_service_time(&self, seconds: f64) {
        // Racy read-modify-write is fine: this is a smoothed estimate,
        // and a lost update only delays convergence by one sample.
        let prev = self.service_estimate_s();
        let next = prev * (1.0 - SERVICE_EWMA_ALPHA) + seconds * SERVICE_EWMA_ALPHA;
        self.service_ewma_bits
            .store(next.to_bits(), Ordering::Relaxed);
    }
}

/// Restores the active-worker count even if a job panics.
struct ActiveGuard<'a>(&'a PoolShared);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A fixed set of worker threads draining a bounded job queue.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.shared.workers)
            .field("queue_capacity", &self.shared.queue_capacity)
            .field("queue_depth", &self.queue_depth())
            .finish()
    }
}

impl WorkerPool {
    /// Spawn `workers` threads (clamped to at least 1) sharing a queue
    /// that holds at most `queue_capacity` waiting jobs, with the default
    /// [`SERVICE_TIME_PRIOR_S`] cold-start service-time estimate.
    pub fn new(workers: usize, queue_capacity: usize) -> WorkerPool {
        WorkerPool::with_service_prior(workers, queue_capacity, SERVICE_TIME_PRIOR_S)
    }

    /// [`new`](WorkerPool::new) with an explicit cold-start service-time
    /// prior (seconds per job, clamped to a sane positive range). The
    /// prior seeds the EWMA that backs [`retry_after_estimate`] and
    /// [`predicted_wait`]; real samples take over as jobs complete.
    ///
    /// [`retry_after_estimate`]: WorkerPool::retry_after_estimate
    /// [`predicted_wait`]: WorkerPool::predicted_wait
    pub fn with_service_prior(workers: usize, queue_capacity: usize, prior_s: f64) -> WorkerPool {
        let workers = workers.max(1);
        let prior_s = if prior_s.is_finite() {
            prior_s.clamp(1e-6, 3600.0)
        } else {
            SERVICE_TIME_PRIOR_S
        };
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            queue_capacity,
            workers,
            active: AtomicUsize::new(0),
            service_ewma_bits: AtomicU64::new(prior_s.to_bits()),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sww-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.shared.workers
    }

    /// Jobs currently waiting (not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .jobs
            .len()
    }

    /// Seconds a rejected client should wait before retrying, derived
    /// from live pool state: the backlog (`waiting` queued jobs plus the
    /// one being rejected, plus currently busy workers) divided across
    /// the workers, scaled by the EWMA of observed per-job service time.
    /// Clamped to `1..=30` so advice stays sane under estimate noise.
    pub fn retry_after_estimate(&self, waiting: usize) -> u32 {
        let backlog = waiting + 1 + self.shared.active.load(Ordering::Relaxed);
        let drain_s =
            (backlog as f64 / self.shared.workers.max(1) as f64) * self.shared.service_estimate_s();
        (drain_s.ceil() as u64).clamp(1, 30) as u32
    }

    /// Predicted wait before a job submitted *now* would start: the
    /// current backlog (queued + busy) divided across workers, scaled by
    /// the EWMA service-time estimate. Unlike [`retry_after_estimate`]
    /// this is unclamped and sub-second precise — it is compared against
    /// a request's remaining deadline budget for admission control, where
    /// rounding up to 1 s would shed every sub-second deadline.
    ///
    /// [`retry_after_estimate`]: WorkerPool::retry_after_estimate
    pub fn predicted_wait(&self) -> Duration {
        let backlog = self.queue_depth() + self.shared.active.load(Ordering::Relaxed);
        let wait_s =
            (backlog as f64 / self.shared.workers.max(1) as f64) * self.shared.service_estimate_s();
        Duration::from_secs_f64(wait_s.max(0.0))
    }

    /// Enqueue a fire-and-forget job, failing fast when the queue is
    /// full instead of blocking the caller.
    ///
    /// The `pool.enqueue` failpoint ([`crate::faults`]) can force a
    /// rejection (indistinguishable from real saturation, including the
    /// `Retry-After` estimate) or delay admission.
    pub fn try_execute(&self, job: Job) -> Result<(), SwwError> {
        match faults::at(FaultSite::PoolEnqueue) {
            Some(FaultAction::Error) | Some(FaultAction::TruncateKeepPct(_)) => {
                sww_obs::counter("sww_pool_jobs_total", &[("result", "rejected")]).inc();
                let retry_after_s = self.retry_after_estimate(self.queue_depth());
                return Err(SwwError::Saturated { retry_after_s });
            }
            Some(FaultAction::Latency(d)) => std::thread::sleep(d),
            None => {}
        }
        let depth = {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            // A stopping pool rejects instead of accepting a job no
            // worker will ever pick up (which would strand a `run()`
            // caller on its result slot forever).
            if q.shutdown {
                sww_obs::counter("sww_pool_jobs_total", &[("result", "rejected")]).inc();
                return Err(SwwError::Saturated { retry_after_s: 1 });
            }
            if q.jobs.len() >= self.shared.queue_capacity {
                sww_obs::counter("sww_pool_jobs_total", &[("result", "rejected")]).inc();
                return Err(SwwError::Saturated {
                    retry_after_s: self.retry_after_estimate(q.jobs.len()),
                });
            }
            q.jobs.push_back(job);
            q.jobs.len()
        };
        self.shared.set_depth_gauge(depth);
        sww_obs::counter("sww_pool_jobs_total", &[("result", "executed")]).inc();
        self.shared.job_ready.notify_one();
        Ok(())
    }

    /// Run `f` on a worker and block until its result is available.
    /// Returns [`SwwError::Saturated`] without running anything when the
    /// queue is full, and [`SwwError::Internal`] if `f` panics.
    pub fn run<R, F>(&self, f: F) -> Result<R, SwwError>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        type Outcome<R> = std::thread::Result<R>;
        let slot: Arc<(Mutex<Option<Outcome<R>>>, Condvar)> =
            Arc::new((Mutex::new(None), Condvar::new()));
        let publish = Arc::clone(&slot);
        self.try_execute(Box::new(move || {
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            *publish.0.lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
            publish.1.notify_all();
        }))?;
        let (lock, ready) = &*slot;
        let mut result = lock.lock().unwrap_or_else(|e| e.into_inner());
        while result.is_none() {
            result = ready.wait(result).unwrap_or_else(|e| e.into_inner());
        }
        result
            .take()
            .expect("slot filled")
            .map_err(|_| SwwError::Internal {
                reason: "request handler panicked on a pool worker".into(),
            })
    }
}

impl WorkerPool {
    /// Stop the pool: **drain, then join**. Explicit semantics:
    ///
    /// * Jobs already queued when `stop` is called are **completed** —
    ///   each was admitted with a success return from
    ///   [`try_execute`](WorkerPool::try_execute)/[`run`](WorkerPool::run),
    ///   and that admission is a promise. Workers drain the queue to
    ///   empty before exiting.
    /// * Jobs submitted *after* `stop` are **rejected** with
    ///   [`SwwError::Saturated`] — never silently dropped, and never
    ///   accepted into a queue no worker will drain (the pre-stop race
    ///   that could strand a `run()` caller forever).
    /// * `stop` blocks until every worker thread has exited, and is
    ///   idempotent (`Drop` calls it too).
    pub fn stop(&mut self) {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shutdown = true;
        self.shared.job_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Shared state of one [`TileRunner::run_all`] fan-out: unclaimed tiles
/// plus the number of tiles currently executing somewhere.
struct TileWork {
    state: Mutex<(VecDeque<TileTask>, usize)>,
    idle: Condvar,
}

/// Decrements the running count even if a tile panics, so the caller's
/// idle wait terminates and surfaces the loss (the kernel panics on the
/// unfilled result slot) instead of hanging.
struct TileRunGuard<'a>(&'a TileWork);

impl Drop for TileRunGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
        st.1 -= 1;
        drop(st);
        self.0.idle.notify_all();
    }
}

impl TileWork {
    fn new(tasks: Vec<TileTask>) -> TileWork {
        TileWork {
            state: Mutex::new((tasks.into(), 0)),
            idle: Condvar::new(),
        }
    }

    /// Claim-and-run tiles until none are left unclaimed.
    fn drain(&self) {
        loop {
            let task = {
                let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                match st.0.pop_front() {
                    Some(task) => {
                        st.1 += 1;
                        task
                    }
                    None => return,
                }
            };
            let guard = TileRunGuard(self);
            task();
            drop(guard);
        }
    }

    /// Block until every tile has been claimed and finished running.
    fn wait_idle(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while !st.0.is_empty() || st.1 > 0 {
            st = self.idle.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Kernel tiles on the worker pool — the data-parallel denoise substrate
/// (PERFORMANCE.md "Kernel & memory model").
///
/// The design is *caller-drains*: the tasks go into a shared claim queue,
/// up to `tasks - 1` helper jobs are enqueued on the pool, and the
/// calling thread then drains the queue itself before waiting for tiles
/// that helpers have already claimed. Every tile is therefore executed
/// exactly once by *someone*, and the call makes progress even when
///
/// * the pool is saturated or stopping (helper enqueue rejects — the
///   caller simply runs every tile inline, sequential-kernel behaviour),
/// * helpers are stuck behind a long queue (whatever they have not
///   claimed by the time the caller gets to it, the caller runs).
///
/// The result is a hard no-deadlock guarantee: the caller never blocks
/// on work that is not actively executing on some thread.
impl TileRunner for WorkerPool {
    fn run_all(&self, tasks: Vec<TileTask>) {
        if tasks.is_empty() {
            return;
        }
        let helpers = tasks.len().saturating_sub(1).min(self.worker_count());
        let work = Arc::new(TileWork::new(tasks));
        for _ in 0..helpers {
            let w = Arc::clone(&work);
            if self.try_execute(Box::new(move || w.drain())).is_err() {
                break; // saturated or stopping: the caller drains alone
            }
        }
        work.drain();
        work.wait_idle();
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    shared.set_depth_gauge(q.jobs.len());
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.job_ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let busy = shared.active.fetch_add(1, Ordering::Relaxed) + 1;
        let guard = ActiveGuard(shared);
        sww_obs::histogram("sww_pool_worker_utilization", &[], UTILIZATION_BUCKETS)
            .observe(busy as f64 / shared.workers as f64);
        // A panicking job must not take the worker thread down with it;
        // `run` observes the panic through its result slot.
        let started = Instant::now();
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
            sww_obs::counter("sww_pool_jobs_total", &[("result", "panicked")]).inc();
        }
        shared.record_service_time(started.elapsed().as_secs_f64());
        drop(guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Barrier;

    #[test]
    fn runs_jobs_and_returns_results() {
        let pool = WorkerPool::new(2, 16);
        assert_eq!(pool.worker_count(), 2);
        let doubled = pool.run(|| 21 * 2).unwrap();
        assert_eq!(doubled, 42);
    }

    #[test]
    fn parallel_submissions_all_complete() {
        let pool = Arc::new(WorkerPool::new(4, 64));
        let total = Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for i in 0..10u64 {
                        let got = pool.run(move || i).unwrap();
                        total.fetch_add(got, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 8 * 45);
    }

    #[test]
    fn saturation_rejects_with_retry_after() {
        let pool = WorkerPool::new(1, 1);
        // Occupy the only worker until released.
        let gate = Arc::new(Barrier::new(2));
        let g = Arc::clone(&gate);
        pool.try_execute(Box::new(move || {
            g.wait();
        }))
        .unwrap();
        // Give the worker a moment to pick the blocking job up, then fill
        // the single queue slot.
        while pool.queue_depth() > 0 {
            std::thread::yield_now();
        }
        pool.try_execute(Box::new(|| {})).unwrap();
        // Queue full: the next submission must be rejected, not queued.
        let err = pool.run(|| ()).unwrap_err();
        match err {
            SwwError::Saturated { retry_after_s } => assert!(retry_after_s >= 1),
            other => panic!("expected Saturated, got {other:?}"),
        }
        gate.wait();
    }

    #[test]
    fn retry_after_scales_with_queue_depth() {
        let pool = WorkerPool::new(2, 64);
        // Pin the estimate so the test is about the depth scaling, not
        // the EWMA convergence.
        pool.shared
            .service_ewma_bits
            .store(1.0f64.to_bits(), Ordering::Relaxed);
        let shallow = pool.retry_after_estimate(0);
        let deep = pool.retry_after_estimate(40);
        assert!(shallow >= 1);
        assert!(
            deep > shallow,
            "deeper queue must advise a longer wait ({shallow} vs {deep})"
        );
        assert!(deep <= 30, "advice is clamped");
    }

    #[test]
    fn service_estimate_tracks_observed_jobs() {
        let pool = WorkerPool::new(1, 8);
        // Fast jobs should pull the 1 s prior down substantially.
        for _ in 0..32 {
            pool.run(|| ()).unwrap();
        }
        assert!(
            pool.shared.service_estimate_s() < SERVICE_TIME_PRIOR_S / 2.0,
            "estimate {} never converged",
            pool.shared.service_estimate_s()
        );
    }

    /// Regression for the shutdown race: a job submitted after `stop()`
    /// used to be accepted into a queue no worker would ever drain,
    /// stranding its `run()` caller on the result slot forever. It must
    /// be rejected instead — and jobs queued *before* the stop must all
    /// complete (drain-then-join).
    #[test]
    fn stop_drains_queued_jobs_and_rejects_late_submissions() {
        let mut pool = WorkerPool::new(1, 16);
        let completed = Arc::new(AtomicU64::new(0));
        // Park the single worker so follow-up jobs genuinely queue.
        let gate = Arc::new(Barrier::new(2));
        let g = Arc::clone(&gate);
        pool.try_execute(Box::new(move || {
            g.wait();
        }))
        .unwrap();
        for _ in 0..5 {
            let completed = Arc::clone(&completed);
            pool.try_execute(Box::new(move || {
                completed.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        // Release the worker and stop: the 5 queued jobs are a promise.
        gate.wait();
        pool.stop();
        assert_eq!(completed.load(Ordering::SeqCst), 5, "queued jobs complete");
        // Post-stop submissions reject fast instead of hanging.
        let err = pool.run(|| ()).unwrap_err();
        assert!(matches!(err, SwwError::Saturated { .. }), "{err:?}");
        let err = pool.try_execute(Box::new(|| ())).unwrap_err();
        assert!(matches!(err, SwwError::Saturated { .. }), "{err:?}");
        // stop() is idempotent; Drop will call it again harmlessly.
        pool.stop();
    }

    #[test]
    fn service_prior_knob_seeds_the_estimate() {
        let slow = WorkerPool::with_service_prior(2, 8, 10.0);
        assert_eq!(slow.shared.service_estimate_s(), 10.0);
        // The estimate feeds retry advice: a 10 s prior with one busy
        // backlog slot advises ~5 s, not the default-prior ~1 s.
        assert!(slow.retry_after_estimate(8) > WorkerPool::new(2, 8).retry_after_estimate(8));
        // Degenerate priors are clamped, not honoured.
        let weird = WorkerPool::with_service_prior(1, 4, f64::NAN);
        assert_eq!(weird.shared.service_estimate_s(), SERVICE_TIME_PRIOR_S);
    }

    #[test]
    fn predicted_wait_scales_with_backlog_and_estimate() {
        let pool = WorkerPool::with_service_prior(2, 64, 2.0);
        // Idle pool: nothing queued, nothing active — zero wait.
        assert_eq!(pool.predicted_wait(), Duration::ZERO);
        // Park both workers and queue two more: backlog 4 over 2 workers
        // at 2 s each predicts ~4 s (active count may lag admission, so
        // accept the 2 s floor from the queued jobs alone).
        let gate = Arc::new(Barrier::new(3));
        for _ in 0..2 {
            let g = Arc::clone(&gate);
            pool.try_execute(Box::new(move || {
                g.wait();
            }))
            .unwrap();
        }
        while pool.shared.active.load(Ordering::Relaxed) < 2 {
            std::thread::yield_now();
        }
        for _ in 0..2 {
            pool.try_execute(Box::new(|| {})).unwrap();
        }
        let predicted = pool.predicted_wait();
        assert!(
            predicted >= Duration::from_secs(2),
            "backlog of 4 at 2s prior predicted only {predicted:?}"
        );
        gate.wait();
    }

    fn tile_tasks(n: usize, hits: &Arc<AtomicU64>) -> Vec<TileTask> {
        (0..n)
            .map(|_| {
                let hits = Arc::clone(hits);
                Box::new(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                }) as TileTask
            })
            .collect()
    }

    #[test]
    fn pool_runner_executes_every_tile() {
        let pool = WorkerPool::new(4, 64);
        let hits = Arc::new(AtomicU64::new(0));
        TileRunner::run_all(&pool, tile_tasks(16, &hits));
        assert_eq!(hits.load(Ordering::SeqCst), 16);
        // And again: the runner is reusable across batches.
        TileRunner::run_all(&pool, tile_tasks(3, &hits));
        assert_eq!(hits.load(Ordering::SeqCst), 19);
    }

    #[test]
    fn saturated_pool_degrades_to_inline_tiles() {
        // One worker, parked; queue full. Helper enqueue rejects, so the
        // caller must drain every tile itself — no deadlock, no loss.
        let pool = WorkerPool::new(1, 1);
        let gate = Arc::new(Barrier::new(2));
        let g = Arc::clone(&gate);
        pool.try_execute(Box::new(move || {
            g.wait();
        }))
        .unwrap();
        while pool.queue_depth() > 0 {
            std::thread::yield_now();
        }
        pool.try_execute(Box::new(|| {})).unwrap();
        let hits = Arc::new(AtomicU64::new(0));
        TileRunner::run_all(&pool, tile_tasks(8, &hits));
        assert_eq!(hits.load(Ordering::SeqCst), 8, "caller drained alone");
        gate.wait();
    }

    #[test]
    fn stopped_pool_still_runs_tiles_inline() {
        let mut pool = WorkerPool::new(2, 8);
        pool.stop();
        let hits = Arc::new(AtomicU64::new(0));
        TileRunner::run_all(&pool, tile_tasks(5, &hits));
        assert_eq!(hits.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn empty_tile_batch_is_a_no_op() {
        let pool = WorkerPool::new(1, 4);
        TileRunner::run_all(&pool, Vec::new());
    }

    #[test]
    fn worker_survives_a_panicking_job() {
        let pool = WorkerPool::new(1, 8);
        let err = pool.run(|| panic!("job dies")).unwrap_err();
        assert!(matches!(err, SwwError::Internal { .. }), "{err:?}");
        // The single worker survived the panic and still executes jobs.
        assert_eq!(pool.run(|| 7).unwrap(), 7);
    }
}
