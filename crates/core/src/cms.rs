//! CMS tagging (paper §4.2): "The feature would tag every content item as
//! generatable or unique. This one-bit flag will be associated with every
//! linked file. Text blocks can be similarly tagged. Webpage templates can
//! have different default values for conversion tags."

use std::collections::HashMap;

/// The one-bit conversion flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentTag {
    /// Safe to convert to a prompt and regenerate.
    Generatable,
    /// Must be preserved byte-exact (news photos, user uploads, …).
    Unique,
}

/// A content item registered with the CMS.
#[derive(Debug, Clone)]
pub struct CmsItem {
    /// Path or identifier of the linked file / text block.
    pub path: String,
    /// The conversion flag.
    pub tag: ContentTag,
}

/// Site templates with different conversion defaults (§4.2: company sites
/// and blogs are mostly generatable; news sites are mostly unique).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Template {
    /// Travel blogs, company sites: media defaults to generatable.
    Blog,
    /// News: content defaults to unique (frequent updates, factual media).
    News,
    /// Stock-photo style galleries: everything generatable.
    Gallery,
}

impl Template {
    /// The default tag this template assigns to a new item.
    pub fn default_tag(self, path: &str) -> ContentTag {
        let looks_unique =
            path.contains("upload") || path.contains("photo") || path.contains("user");
        match self {
            Template::Gallery => ContentTag::Generatable,
            Template::Blog => {
                if looks_unique {
                    ContentTag::Unique
                } else {
                    ContentTag::Generatable
                }
            }
            Template::News => {
                if path.ends_with(".css") || path.contains("stock") {
                    ContentTag::Generatable
                } else {
                    ContentTag::Unique
                }
            }
        }
    }
}

/// A minimal content management system: items with tags, created from a
/// template's defaults, overridable by an editor.
#[derive(Debug, Default)]
pub struct Cms {
    items: HashMap<String, CmsItem>,
}

impl Cms {
    /// An empty CMS.
    pub fn new() -> Cms {
        Cms::default()
    }

    /// Register an item using the template default.
    pub fn register(&mut self, template: Template, path: impl Into<String>) -> ContentTag {
        let path = path.into();
        let tag = template.default_tag(&path);
        self.items.insert(path.clone(), CmsItem { path, tag });
        tag
    }

    /// Editor override (§4.2: "human intervention may be required to audit
    /// conversion results — a webpage editor").
    pub fn set_tag(&mut self, path: &str, tag: ContentTag) -> bool {
        match self.items.get_mut(path) {
            Some(item) => {
                item.tag = tag;
                true
            }
            None => false,
        }
    }

    /// Look up an item's tag.
    pub fn tag(&self, path: &str) -> Option<ContentTag> {
        self.items.get(path).map(|i| i.tag)
    }

    /// All generatable items.
    pub fn generatable(&self) -> Vec<&CmsItem> {
        let mut v: Vec<&CmsItem> = self
            .items
            .values()
            .filter(|i| i.tag == ContentTag::Generatable)
            .collect();
        v.sort_by(|a, b| a.path.cmp(&b.path));
        v
    }

    /// Number of registered items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the CMS is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_defaults() {
        assert_eq!(
            Template::Blog.default_tag("img/banner.jpg"),
            ContentTag::Generatable
        );
        assert_eq!(
            Template::Blog.default_tag("uploads/hike-photo.jpg"),
            ContentTag::Unique
        );
        assert_eq!(
            Template::News.default_tag("img/event.jpg"),
            ContentTag::Unique
        );
        assert_eq!(
            Template::News.default_tag("img/stock-banner.jpg"),
            ContentTag::Generatable
        );
        assert_eq!(
            Template::Gallery.default_tag("uploads/whatever.jpg"),
            ContentTag::Generatable
        );
    }

    #[test]
    fn register_and_override() {
        let mut cms = Cms::new();
        let tag = cms.register(Template::Blog, "img/banner.jpg");
        assert_eq!(tag, ContentTag::Generatable);
        assert!(cms.set_tag("img/banner.jpg", ContentTag::Unique));
        assert_eq!(cms.tag("img/banner.jpg"), Some(ContentTag::Unique));
        assert!(!cms.set_tag("nope", ContentTag::Unique));
    }

    #[test]
    fn generatable_listing_is_sorted() {
        let mut cms = Cms::new();
        cms.register(Template::Gallery, "b.jpg");
        cms.register(Template::Gallery, "a.jpg");
        cms.register(Template::News, "news/event.jpg");
        let generatable: Vec<&str> = cms.generatable().iter().map(|i| i.path.as_str()).collect();
        assert_eq!(generatable, ["a.jpg", "b.jpg"]);
        assert_eq!(cms.len(), 3);
    }
}
