//! `sww` — command-line front end to the SWW stack.
//!
//! ```text
//! sww serve  [--addr 127.0.0.1:0] [--site blog|wikimedia] [--naive]
//!            [--transport h2|h3|both] [--h3-addr 127.0.0.1:0]
//!            [--cluster N] [--replicas N] [--replication N]
//!            [--gossip-interval-ms MS]
//!            [--workers N] [--shards N] [--queue N] [--chaos SPEC]
//!            [--batch-max N] [--batch-wait MS] [--kernel-tiles N]
//!            [--deadline-ms MS]
//!            [--breaker-threshold N] [--breaker-cooldown-ms MS]
//!            [--drain-after SECONDS]
//! sww fetch  <addr> <path> [--device laptop|workstation|mobile] [--naive] [--render] [--out DIR]
//! sww generate <prompt...> [--model sd21|sd3|sd35|dalle3|flux] [--steps N] [--out FILE]
//! sww expand <bullet;bullet;...> [--model llama|r1-1.5b|r1-8b|r1-14b]
//! sww convert <html-file> [--out FILE]
//! sww stock [category]
//! sww stats [addr] [--device laptop|workstation|mobile]
//! sww bench-concurrent [--threads 8] [--requests 100] [--prompts 10] [--workers 1,2,4,8]
//!                      [--batch-max N] [--batch-wait MS] [--kernel-tiles N]
//!                      [--chaos SPEC]
//!                      [--deadline-ms MS] [--breaker-threshold N]
//!                      [--breaker-cooldown-ms MS]
//! sww bench-pr6 [--tiles 1,2,4,8] [--out FILE]
//! sww bench-transport [--pages 5] [--recipes 4] [--gen-latency-ms 25]
//!                     [--chaos SPEC]
//! sww bench-cluster [--nodes 1,2,4] [--threads 2] [--requests 10]
//!                   [--prompts 10] [--replicas 64] [--chaos SPEC]
//!                   [--replication N]
//! sww bench-workload [--betas 0.02,0.2,1.0] [--pages 192] [--k 8]
//!                    [--requests 1000000] [--live-requests 600]
//!                    [--transport h2|h3] [--cluster 4] [--cache 32]
//!                    [--deadline-ms 2500] [--threads 4] [--seed 42]
//!                    [--chaos SPEC]
//! sww bench-compare <baseline.json> <current.json> [--tolerance 0.10]
//! ```
//!
//! `--batch-max N` (N > 1) turns on continuous batching: compatible
//! concurrent generations share one denoising pass, bit-identical per
//! image to the unbatched path, with `--batch-wait` bounding how long an
//! open batch may wait for company (milliseconds, default 2).
//! `--kernel-tiles N` (N > 1) additionally tiles each batched pass across
//! N data-parallel kernel lanes on a dedicated worker pool — still
//! bit-identical per image (see DESIGN.md "Kernel & memory model").
//!
//! `bench-pr6` runs the E17 tiled-kernel sweeps, the E18 transport
//! shoot-out, the E19 edge-cluster sweep, the E20 small-world workload
//! sweep, and the E21 edge-resilience scenarios, and emits the
//! machine-readable `BENCH_PR6.json` report (schema `sww-bench-pr6/5`,
//! documented in PERFORMANCE.md); tables go to stderr so `--out -`-less
//! stdout stays parseable. `bench-compare` gates a fresh report against
//! a checked-in baseline and exits non-zero on a modelled-throughput
//! regression, a missing record, a headline speedup under 1.5x, any
//! steady-state pool allocation, a non-increasing E19 hit rate, a lossy
//! E19 node-kill, a non-monotone E20 hit-rate-vs-clustering curve, an
//! E20 modelled p99 over its deadline, an E20 replay-determinism
//! failure, an E21 replicated failover that lost a response or paid a
//! regeneration (or an unreplicated control that did not), or an E21
//! gossip partition that failed to heal within its round bound.
//!
//! `--deadline-ms MS` gives every request that carries no
//! `x-sww-deadline-ms` header a deadline budget: expiry answers `504`,
//! and a request whose predicted queue wait already exceeds its budget is
//! shed `503` at admission. `--breaker-threshold N` enables the per-model
//! circuit breaker (open after N consecutive generation failures,
//! half-open probe after `--breaker-cooldown-ms`, default 30000).
//! `--drain-after SECONDS` makes `sww serve` drain gracefully after that
//! long: stop admitting, finish in-flight requests, GOAWAY connections,
//! then exit — the knob that makes graceful shutdown scriptable.
//!
//! `sww stats` scrapes the Prometheus-text `/metrics` endpoint of a
//! running server when given an address; with no address it runs a small
//! in-process demo fetch and dumps this process's own metrics registry.
//! Every series it prints is documented in OBSERVABILITY.md.
//!
//! `--cluster N` turns `sww serve` into an N-node generative edge
//! cluster behind one listener: each node wraps a full server over the
//! same prompt-form site, recipes consistent-hash onto owner nodes
//! (`--replicas` vnodes each), and connections round-robin across entry
//! nodes with peer cache-fill on miss (DESIGN.md "Edge tier").
//! `--replication N` (N ≥ 2) turns on hot-key replication: each owner
//! pushes entries that cross the hot threshold to its N−1 ring
//! successors, so an owner death serves hot keys from replicas with
//! zero regeneration. `--gossip-interval-ms MS` sets the cadence of the
//! SWIM failure-detector rounds the cluster ticks in the background
//! (default 200; membership health feeds the successor walk).
//! `bench-cluster` is the E19 harness: aggregate throughput and global
//! hit rate vs node count, plus a chaos node-kill scenario that must
//! lose zero responses; with `--replication N` it also runs the E21
//! failover scenario and gates zero regenerations at N against at least
//! one in the unreplicated control, plus the gossip partition-heal
//! bound.
//!
//! `bench-workload` is the E20 harness: it generates one seeded
//! Watts–Strogatz workload per `--betas` entry (Zipf popularity,
//! random-walk sessions with restart, diurnal arrivals, the E14 device
//! mix), runs the modelled discrete-event simulator over each at
//! `--requests` scale, and replays a `--live-requests` trace through the
//! real stack — in-process single node, HTTP/3, and a `--cluster N` edge
//! ring (or just the one target named by `--transport`). It exits
//! non-zero when the cache hit rate fails to rise monotonically with
//! graph clustering, the modelled p99 exceeds `--deadline-ms`, or two
//! independent replays of the same seed diverge — response digests
//! included, chaos installed or not: every server draws faults from its
//! own seeded scope, so the schedule replays per instance.
//!
//! `--transport h3` serves over the HTTP/3 framing (QUIC-lite stream
//! mux) instead of HTTP/2; `--transport both` binds two listeners (the
//! h3 one on `--h3-addr`, default ephemeral). Both transports drive the
//! same request core, so responses are byte-identical — h3 additionally
//! avoids head-of-line blocking across a page's generation streams (see
//! DESIGN.md "Transports" and experiment E18).
//!
//! `--chaos SPEC` installs the deterministic fault-injection layer
//! (`sww_core::faults`) for the lifetime of the process. The spec grammar
//! is `seed=<u64>,<site>=<kind>:<prob>[:<param>],…` — e.g.
//! `seed=42,engine.generate=error:0.1,pool.enqueue=error:0.05` — and is
//! documented in DESIGN.md ("Failure model").

mod args;

use args::Args;
use sww_core::cms::Cms;
use sww_core::convert::Converter;
use sww_core::{GenAbility, GenerativeClient, GenerativeServer, ServerConfig, SiteContent};
use sww_energy::device::{profile, DeviceKind};
use sww_genai::diffusion::{DiffusionModel, ImageModelKind};
use sww_genai::image::codec;
use sww_genai::text::{TextModel, TextModelKind};

fn device_from(name: &str) -> DeviceKind {
    match name {
        "workstation" | "ws" => DeviceKind::Workstation,
        "mobile" => DeviceKind::Mobile,
        _ => DeviceKind::Laptop,
    }
}

fn image_model_from(name: &str) -> ImageModelKind {
    match name {
        "sd21" => ImageModelKind::Sd21Base,
        "sd35" => ImageModelKind::Sd35Medium,
        "dalle3" => ImageModelKind::Dalle3,
        "flux" => ImageModelKind::FluxFast,
        _ => ImageModelKind::Sd3Medium,
    }
}

fn text_model_from(name: &str) -> TextModelKind {
    match name {
        "llama" => TextModelKind::Llama32,
        "r1-1.5b" => TextModelKind::DeepSeekR1_1_5B,
        "r1-14b" => TextModelKind::DeepSeekR1_14B,
        _ => TextModelKind::DeepSeekR1_8B,
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: sww <serve|fetch|generate|expand|convert|stock|stats> [options]\n\
         see crate docs for the full option list"
    );
    std::process::exit(2)
}

/// Install the chaos spec from `--chaos`, if given. Exits with status 2
/// on a malformed spec (before any server or bench work starts).
fn install_chaos(args: &Args) {
    let Some(spec) = args.options.get("chaos") else {
        return;
    };
    match sww_core::ChaosSpec::parse(spec) {
        Ok(spec) => {
            println!(
                "chaos: seed={} rules={} (deterministic; same seed replays the run)",
                spec.seed,
                spec.rules.len()
            );
            sww_core::faults::install(&spec);
        }
        Err(err) => {
            eprintln!("bad --chaos spec: {err}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(2)
        .enable_all()
        .build()
        .expect("tokio runtime");
    match args.command.as_str() {
        "serve" => rt.block_on(cmd_serve(&args)),
        "fetch" => rt.block_on(cmd_fetch(&args)),
        "generate" => cmd_generate(&args),
        "expand" => cmd_expand(&args),
        "convert" => cmd_convert(&args),
        "stock" => cmd_stock(&args),
        "stats" => rt.block_on(cmd_stats(&args)),
        "bench-concurrent" => cmd_bench_concurrent(&args),
        "bench-pr6" => cmd_bench_pr6(&args),
        "bench-cluster" => cmd_bench_cluster(&args),
        "bench-transport" => cmd_bench_transport(&args),
        "bench-workload" => cmd_bench_workload(&args),
        "bench-compare" => cmd_bench_compare(&args),
        _ => usage(),
    }
}

/// Translate `sww serve` / `bench-concurrent` flags into the library's
/// [`ServerConfig`] — the CLI builds the exact struct the library
/// consumes, so the two can never drift apart.
fn server_config_from(args: &Args) -> ServerConfig {
    let site: SiteContent = match args.opt("site", "blog") {
        "wikimedia" => {
            eprintln!("building the 49-image Wikimedia workload …");
            let page = sww_workload::wikimedia::landscape_search_page();
            let mut s = SiteContent::new();
            s.add_page("/wiki/landscape", page.sww_html);
            s
        }
        _ => sww_workload::blog::travel_blog(),
    };
    let (batch_max, batch_wait_ms) = batch_options(args);
    ServerConfig {
        site,
        ability: if args.has_flag("naive") {
            GenAbility::none()
        } else {
            GenAbility::full()
        },
        workers: args.opt("workers", "0").parse().unwrap_or(0),
        cache_shards: args.opt("shards", "8").parse().unwrap_or(8),
        queue_capacity: args.opt("queue", "64").parse().unwrap_or(64),
        batch_max,
        batch_wait: std::time::Duration::from_millis(batch_wait_ms),
        kernel_tiles: kernel_tiles_option(args),
        default_deadline: deadline_option(args),
        breaker: breaker_option(args),
        ..ServerConfig::default()
    }
}

async fn cmd_serve(args: &Args) {
    install_chaos(args);
    if let Some(nodes) = args.options.get("cluster").and_then(|s| s.parse().ok()) {
        return cmd_serve_cluster(args, nodes).await;
    }
    let config = server_config_from(args);
    let ability = config.ability;
    let (batch_max, batch_wait_ms) = (config.batch_max, config.batch_wait.as_millis());
    let (kernel_tiles, queue, shards) = (
        config.kernel_tiles,
        config.queue_capacity,
        config.cache_shards,
    );
    if let Some(deadline) = config.default_deadline {
        println!("default deadline: {} ms", deadline.as_millis());
    }
    if let Some(cfg) = config.breaker {
        println!(
            "circuit breaker: open after {} consecutive failures, {} ms cooldown",
            cfg.failure_threshold,
            cfg.cooldown.as_millis()
        );
    }
    let server = GenerativeServer::from_config(config);
    let transport = args.opt("transport", "h2");
    let addr_opt = args.opt("addr", "127.0.0.1:0");
    match transport {
        "h3" => {
            let addr = server.spawn_tcp_h3(addr_opt).await.expect("bind h3");
            println!("serving h3 on {addr} (ability: {:?})", ability.bits());
        }
        "both" => {
            let h2 = server.spawn_tcp(addr_opt).await.expect("bind h2");
            let h3 = server
                .spawn_tcp_h3(args.opt("h3-addr", "127.0.0.1:0"))
                .await
                .expect("bind h3");
            println!(
                "serving h2 on {h2}, h3 on {h3} (ability: {:?})",
                ability.bits()
            );
        }
        "h2" => {
            let addr = server.spawn_tcp(addr_opt).await.expect("bind h2");
            println!("serving h2 on {addr} (ability: {:?})", ability.bits());
        }
        other => {
            eprintln!("bad --transport {other:?}: expected h2, h3 or both");
            std::process::exit(2);
        }
    }
    match server.worker_count() {
        Some(n) => println!("worker pool: {n} workers, queue {queue}, {shards} cache shards"),
        None => println!("inline handling (no worker pool), {shards} cache shards"),
    }
    if batch_max > 1 {
        println!("continuous batching: up to {batch_max} per pass, {batch_wait_ms} ms deadline");
        if kernel_tiles > 1 {
            println!("tiled kernel: {kernel_tiles} data-parallel lanes per batched pass");
        }
    }
    println!("stored {} B (prompt form)", server.stored_bytes());
    // Serve until interrupted — or until --drain-after fires a graceful
    // shutdown (stop admitting, finish in-flight, GOAWAY, exit 0).
    if let Some(secs) = args.options.get("drain-after").and_then(|s| s.parse().ok()) {
        tokio::time::sleep(std::time::Duration::from_secs(secs)).await;
        println!("draining …");
        let report = server.drain();
        println!(
            "drained: {} in-flight at start, waited {:.3} s",
            report.inflight_at_start,
            report.waited.as_secs_f64()
        );
        return;
    }
    loop {
        tokio::time::sleep(std::time::Duration::from_secs(3600)).await;
    }
}

/// `sww serve --cluster N`: one listener in front of an N-node edge
/// cluster. Every per-node knob (`--workers`, `--batch-max`, …) applies
/// to each node; connections round-robin across entry nodes.
async fn cmd_serve_cluster(args: &Args, nodes: usize) {
    let nodes = nodes.max(1);
    let replicas: usize = args
        .opt("replicas", "64")
        .parse()
        .unwrap_or(sww_core::edge::DEFAULT_VNODES)
        .max(1);
    let replication: usize = args.opt("replication", "1").parse().unwrap_or(1).max(1);
    let gossip_interval_ms: u64 = args
        .opt("gossip-interval-ms", "200")
        .parse()
        .unwrap_or(200)
        .max(1);
    // Freeze the per-node knobs out of the template config: ServerConfig
    // itself is not Clone (it owns the site), so the factory rebuilds it
    // per node from these plain values.
    let template = server_config_from(args);
    let site = template.site.clone();
    let ability = template.ability;
    let (workers, queue_capacity, cache_shards) = (
        template.workers,
        template.queue_capacity,
        template.cache_shards,
    );
    let (batch_max, batch_wait, kernel_tiles) = (
        template.batch_max,
        template.batch_wait,
        template.kernel_tiles,
    );
    let (default_deadline, breaker) = (template.default_deadline, template.breaker);
    let router = sww_core::EdgeRouter::new(
        sww_core::EdgeConfig {
            nodes,
            replicas,
            replication,
            gossip: sww_core::GossipConfig {
                interval_ms: gossip_interval_ms,
                ..sww_core::GossipConfig::default()
            },
            ..sww_core::EdgeConfig::default()
        },
        site,
        move |site| {
            GenerativeServer::from_config(ServerConfig {
                site,
                ability,
                workers,
                queue_capacity,
                cache_shards,
                batch_max,
                batch_wait,
                kernel_tiles,
                default_deadline,
                breaker,
                ..ServerConfig::default()
            })
        },
    );
    let addr = router
        .spawn_tcp(args.opt("addr", "127.0.0.1:0"))
        .await
        .expect("bind cluster");
    println!(
        "serving edge cluster on {addr}: {} nodes [{}], {replicas} vnodes each (ability: {:?})",
        router.node_count(),
        router.node_ids().join(", "),
        ability.bits()
    );
    if replication > 1 {
        println!("hot-key replication: {replication} copies per hot key (owner included)");
    }
    println!("gossip: SWIM rounds every {gossip_interval_ms} ms");
    // Background failure detector: one virtual-clock round per interval.
    // Membership health feeds the successor walk (suspect/dead peers are
    // skipped proactively) and delivers parked hinted-handoff pushes
    // when a replica rejoins.
    let ticker = router.clone();
    tokio::spawn(async move {
        loop {
            tokio::time::sleep(std::time::Duration::from_millis(gossip_interval_ms)).await;
            ticker.tick_gossip(1);
        }
    });
    loop {
        tokio::time::sleep(std::time::Duration::from_secs(3600)).await;
    }
}

async fn cmd_fetch(args: &Args) {
    let (Some(addr), Some(path)) = (args.positionals.first(), args.positionals.get(1)) else {
        usage();
    };
    let ability = if args.has_flag("naive") {
        GenAbility::none()
    } else {
        GenAbility::full()
    };
    let device = profile(device_from(args.opt("device", "laptop")));
    let sock = tokio::net::TcpStream::connect(addr).await.expect("connect");
    let mut client = GenerativeClient::connect(sock, ability, device)
        .await
        .expect("handshake");
    println!(
        "negotiated: generate={}",
        client.negotiated_ability().can_generate()
    );
    let (page, stats) = client.fetch_page(path).await.expect("fetch");
    println!(
        "generated {} items, fetched {}, wire {} B, traditional {} B ({:.1}x)",
        stats.items_generated,
        stats.items_fetched,
        stats.wire_bytes,
        stats.traditional_bytes,
        stats.compression_ratio()
    );
    println!(
        "modelled generation: {:.1} s, {:.3} Wh",
        stats.generation_time_s,
        stats.generation_energy.wh()
    );
    if args.has_flag("render") {
        println!("\n{}\n", page.to_text());
    }
    if let Some(dir) = args.options.get("out") {
        let files = page.dump_ppm(std::path::Path::new(dir)).expect("dump");
        println!("wrote {} PPM files to {dir}", files.len());
    }
    let _ = client.close().await;
}

async fn cmd_stats(args: &Args) {
    match args.positionals.first() {
        // Remote: scrape a running server's /metrics route over HTTP/2.
        Some(addr) => {
            let sock = tokio::net::TcpStream::connect(addr).await.expect("connect");
            let mut conn = sww_http2::ClientConnection::handshake(sock, GenAbility::none())
                .await
                .expect("handshake");
            let resp = conn
                .send_request(&sww_http2::Request::get("/metrics"))
                .await
                .expect("GET /metrics");
            if resp.status != 200 {
                eprintln!("GET /metrics returned status {}", resp.status);
                std::process::exit(1);
            }
            print!("{}", String::from_utf8_lossy(&resp.body));
            let _ = conn.close().await;
        }
        // Local: run a demo fetch in-process (server and client share this
        // process's registry), then dump every series it produced.
        None => {
            let server = GenerativeServer::builder()
                .site(sww_workload::blog::travel_blog())
                .ability(GenAbility::full())
                .build();
            let (a, b) = tokio::io::duplex(1 << 20);
            tokio::spawn(async move {
                let _ = server.serve_stream(b).await;
            });
            let device = profile(device_from(args.opt("device", "laptop")));
            let mut client = GenerativeClient::connect(a, GenAbility::full(), device)
                .await
                .expect("handshake");
            let (_page, stats) = client
                .fetch_page("/blog/gherdeina-ridge")
                .await
                .expect("fetch");
            let _ = client.close().await;
            eprintln!(
                "demo fetch: {} generated, {} fetched, {} B wire\n",
                stats.items_generated, stats.items_fetched, stats.wire_bytes
            );
            print!("{}", sww_obs::render());
        }
    }
}

fn cmd_generate(args: &Args) {
    if args.positionals.is_empty() {
        usage();
    }
    let prompt = args.positionals.join(" ");
    let model = DiffusionModel::new(image_model_from(args.opt("model", "sd3")));
    let steps: u32 = args.opt("steps", "15").parse().unwrap_or(15);
    let img = model.generate(&prompt, 256, 256, steps);
    let encoded = codec::encode(&img, 55);
    println!(
        "generated 256x256 with {} at {steps} steps: {} B encoded",
        model.profile().name,
        encoded.len()
    );
    let out = args.opt("out", "generated.ppm").to_string();
    std::fs::write(&out, img.to_ppm()).expect("write output");
    println!("wrote {out}");
}

fn cmd_expand(args: &Args) {
    let Some(joined) = args.positionals.first() else {
        usage();
    };
    let bullets: Vec<String> = joined.split(';').map(|s| s.trim().to_string()).collect();
    let model = TextModel::new(text_model_from(args.opt("model", "r1-8b")));
    let text = model.expand(&bullets, 150);
    println!("{text}");
}

fn cmd_convert(args: &Args) {
    let Some(file) = args.positionals.first() else {
        usage();
    };
    let html = std::fs::read_to_string(file).expect("read input html");
    let cms = Cms::new();
    let report = Converter::new(&cms).convert_page(&html, |_| None);
    println!(
        "converted {} items (skipped {}), {:.1}x over converted items",
        report.items.len(),
        report.skipped,
        report.compression_ratio()
    );
    let out = args.opt("out", "converted.html").to_string();
    std::fs::write(&out, report.html).expect("write output");
    println!("wrote {out}");
}

fn cmd_stock(args: &Args) {
    let items: Vec<_> = match args.positionals.first() {
        Some(cat) => sww_workload::stock::by_category(cat),
        None => sww_workload::stock::CATALOG.iter().collect(),
    };
    for p in items {
        println!(
            "{:<14} [{:?}] {}x{}  {}",
            p.id, p.licence, p.size.0, p.size.1, p.prompt
        );
    }
}

/// `--batch-max` / `--batch-wait` (shared by `serve` and
/// `bench-concurrent`).
fn batch_options(args: &Args) -> (usize, u64) {
    let batch_max: usize = args.opt("batch-max", "1").parse().unwrap_or(1);
    let batch_wait_ms: u64 = args.opt("batch-wait", "2").parse().unwrap_or(2);
    (batch_max, batch_wait_ms)
}

/// `--kernel-tiles` (shared by `serve` and `bench-concurrent`): data-
/// parallel lanes per batched denoise pass, 1 = scalar kernel.
fn kernel_tiles_option(args: &Args) -> usize {
    args.opt("kernel-tiles", "1").parse().unwrap_or(1).max(1)
}

/// `--deadline-ms` (shared by `serve` and `bench-concurrent`).
fn deadline_option(args: &Args) -> Option<std::time::Duration> {
    args.options
        .get("deadline-ms")
        .and_then(|s| s.parse().ok())
        .map(std::time::Duration::from_millis)
}

/// `--breaker-threshold` / `--breaker-cooldown-ms` (shared by `serve`
/// and `bench-concurrent`). The breaker stays off unless a threshold is
/// given; the cooldown defaults to the library's 30 s.
fn breaker_option(args: &Args) -> Option<sww_core::BreakerConfig> {
    let threshold: u32 = args.options.get("breaker-threshold")?.parse().ok()?;
    let mut cfg = sww_core::BreakerConfig {
        failure_threshold: threshold.max(1),
        ..sww_core::BreakerConfig::default()
    };
    if let Some(ms) = args
        .options
        .get("breaker-cooldown-ms")
        .and_then(|s| s.parse().ok())
    {
        cfg.cooldown = std::time::Duration::from_millis(ms);
    }
    Some(cfg)
}

/// Stress the concurrent serving engine in-process: naive sessions drive
/// server-side generation from many threads, sweeping the worker count.
///
/// This is the E15 harness (`sww_bench::experiments::concurrency`)
/// behind a CLI: the sweep loop lives in one place, so the command and
/// `bench-report` cannot drift apart — in particular both inherit the
/// per-sample (delta, never cumulative) counter accounting.
fn cmd_bench_concurrent(args: &Args) {
    use sww_bench::experiments::concurrency;
    install_chaos(args);
    let (batch_max, batch_wait_ms) = batch_options(args);
    let cfg = concurrency::ConcurrencyConfig {
        threads: args.opt("threads", "8").parse().unwrap_or(8),
        requests: args.opt("requests", "100").parse().unwrap_or(100),
        prompts: args
            .opt("prompts", "10")
            .parse::<usize>()
            .unwrap_or(10)
            .max(1),
        batch_max,
        batch_wait_ms,
        deadline_ms: args.options.get("deadline-ms").and_then(|s| s.parse().ok()),
        breaker: breaker_option(args).map(|c| (c.failure_threshold, c.cooldown.as_millis() as u64)),
        kernel_tiles: kernel_tiles_option(args),
    };
    let worker_counts: Vec<usize> = args
        .opt("workers", "1,2,4,8")
        .split(',')
        .filter_map(|w| w.trim().parse().ok())
        .collect();
    let samples = concurrency::run(cfg, &worker_counts);
    println!("{}", concurrency::table(cfg, &samples).render());
}

/// Run the E17 tiled-kernel sweeps and emit the `BENCH_PR6.json` report.
///
/// Human-readable tables go to **stderr**; the JSON report goes to
/// stdout, or to `--out FILE` so `ci.sh` can archive and gate it.
fn cmd_bench_pr6(args: &Args) {
    use sww_bench::experiments::{edge, kernel, resilience, transport, workload};
    use sww_bench::report;
    let tiles: Vec<usize> = args
        .opt("tiles", "1,2,4,8")
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    let widest = tiles.iter().copied().max().unwrap_or(1);
    let kcfg = kernel::KernelConfig::default();
    let kernel_samples = kernel::kernel_sweep(kcfg, &tiles);
    eprintln!("{}", kernel::kernel_table(kcfg, &kernel_samples).render());
    // The serving sweep is the expensive end-to-end pass, so it compares
    // just the scalar kernel against the widest requested lane count.
    let scfg = kernel::ServingConfig::default();
    let serving_tiles: Vec<usize> = if widest > 1 { vec![1, widest] } else { vec![1] };
    let serving_samples = kernel::serving_sweep(scfg, &serving_tiles);
    eprintln!("{}", kernel::serving_table(scfg, &serving_samples).render());
    // E18 last: its latency chaos spec is process-global, so it must not
    // overlap the kernel sweeps (run_with_latency installs and clears it).
    let tcfg = transport::TransportConfig::default();
    let trun = transport::run_with_latency(tcfg);
    eprintln!("{}", transport::table(tcfg, &trun).render());
    // E19: the edge-cluster sweep (no chaos — the gated numbers are the
    // deterministic modelled ones), then the chaos node-kill under a
    // deterministic generation latency that widens the kill window.
    let ecfg = edge::EdgeClusterConfig::default();
    let edge_samples = edge::run(&ecfg);
    eprintln!("{}", edge::table(&ecfg, &edge_samples).render());
    let chaos_spec = sww_core::ChaosSpec::parse("seed=7,engine.generate=latency:1.0:10")
        .expect("E19 chaos spec");
    sww_core::faults::install(&chaos_spec);
    let chaos = edge::chaos_kill(&ecfg);
    sww_core::faults::clear();
    eprintln!("{}", edge::chaos_table(&chaos).render());
    // E20: the small-world workload sweep — modelled rows at full scale,
    // live replays through single node / h3 / the edge ring, and the
    // replay-determinism witness.
    let wcfg = workload::E20Config::default();
    let workload_rows = workload::modelled_sweep(&wcfg);
    eprintln!(
        "{}",
        workload::modelled_table(&wcfg, &workload_rows).render()
    );
    let workload_live = workload::live_sweep(&wcfg, &workload::live_targets(&wcfg));
    eprintln!("{}", workload::live_table(&wcfg, &workload_live).render());
    let determinism = workload::determinism_check(&wcfg, &workload_live);
    let live_clustering = wcfg
        .workload(wcfg.live_beta, wcfg.live_requests)
        .site_graph()
        .clustering_coefficient();
    // E21: the owner-kill failover at every replication level, then the
    // gossip partition-heal witness — fully deterministic, no chaos spec
    // needed (the kill and the partition are the faults).
    let rcfg = resilience::ResilienceConfig::default();
    let failover = resilience::failover_sweep(&rcfg);
    eprintln!("{}", resilience::failover_table(&rcfg, &failover).render());
    let partition = resilience::partition_heal(&rcfg);
    eprintln!("{}", resilience::partition_table(&partition).render());
    let text = report::render(&report::pr6_report(
        kcfg,
        &kernel_samples,
        scfg,
        &serving_samples,
        tcfg,
        &[trun.h2, trun.h3],
        report::EdgeSection {
            cfg: &ecfg,
            sweep: &edge_samples,
            chaos: &chaos,
        },
        report::WorkloadSection {
            cfg: &wcfg,
            modelled: &workload_rows,
            live: &workload_live,
            live_clustering,
            determinism: &determinism,
        },
        report::ResilienceSection {
            failover: &failover,
            partition: &partition,
        },
    ));
    match args.options.get("out") {
        Some(path) => {
            std::fs::write(path, &text).expect("write report");
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
}

/// Run the E19 edge-cluster sweep on its own: aggregate throughput and
/// global hit rate vs node count, then the chaos node-kill scenario.
/// With `--chaos` the caller's spec drives the fault layer for the whole
/// run; otherwise the kill scenario installs its own deterministic
/// generation latency. With `--replication N` (N ≥ 2) the E21 failover
/// and partition scenarios run too. Exits non-zero when the node-kill
/// loses a response, diverges from the 1-node baseline byte-wise, the
/// global hit rate fails to strictly increase with node count, the
/// replicated failover pays a regeneration (or the unreplicated control
/// pays none), or the gossip partition misses its heal bound.
fn cmd_bench_cluster(args: &Args) {
    use sww_bench::experiments::{edge, resilience};
    let cfg = edge::EdgeClusterConfig {
        node_counts: args
            .opt("nodes", "1,2,4")
            .split(',')
            .filter_map(|n| n.trim().parse().ok())
            .collect(),
        threads_per_node: args.opt("threads", "2").parse().unwrap_or(2).max(1),
        requests_per_thread: args.opt("requests", "10").parse().unwrap_or(10).max(1),
        prompts: args.opt("prompts", "10").parse().unwrap_or(10).max(1),
        replicas: args.opt("replicas", "64").parse().unwrap_or(64).max(1),
    };
    let caller_chaos = args.options.contains_key("chaos");
    if caller_chaos {
        install_chaos(args);
    }
    let samples = edge::run(&cfg);
    println!("{}", edge::table(&cfg, &samples).render());
    println!("{}", edge::modelled_table(&cfg).render());
    if !caller_chaos {
        let spec = sww_core::ChaosSpec::parse("seed=7,engine.generate=latency:1.0:10")
            .expect("E19 chaos spec");
        sww_core::faults::install(&spec);
    }
    let chaos = edge::chaos_kill(&cfg);
    sww_core::faults::clear();
    println!("{}", edge::chaos_table(&chaos).render());
    let mut failed = false;
    for pair in samples.windows(2) {
        if pair[1].hit_rate <= pair[0].hit_rate {
            eprintln!(
                "FAIL: hit rate must strictly increase with nodes ({} -> {})",
                pair[0].nodes, pair[1].nodes
            );
            failed = true;
        }
    }
    if chaos.lost != 0 {
        eprintln!("FAIL: node-kill lost {} responses", chaos.lost);
        failed = true;
    }
    if !chaos.byte_identical {
        eprintln!("FAIL: failover payloads diverged from the 1-node baseline");
        failed = true;
    }
    // E21, opt-in via --replication N (N ≥ 2): hot-key replication
    // failover at 1 and N copies, plus the gossip partition heal.
    let replication: usize = args.opt("replication", "1").parse().unwrap_or(1).max(1);
    if replication > 1 {
        let rcfg = resilience::ResilienceConfig {
            prompts: cfg.prompts,
            replicas: cfg.replicas,
            replication_levels: vec![1, replication],
            ..resilience::ResilienceConfig::default()
        };
        let failover = resilience::failover_sweep(&rcfg);
        println!("{}", resilience::failover_table(&rcfg, &failover).render());
        for o in &failover {
            if o.lost != 0 || !o.byte_identical {
                eprintln!(
                    "FAIL: replication {} failover lost {} responses (byte-identical: {})",
                    o.replication, o.lost, o.byte_identical
                );
                failed = true;
            }
            if o.replication >= 2 && (o.regenerations != 0 || o.replica_hits == 0) {
                eprintln!(
                    "FAIL: replication {} failover cost {} regenerations, {} replica hits \
                     (replicas must absorb the kill)",
                    o.replication, o.regenerations, o.replica_hits
                );
                failed = true;
            }
            if o.replication == 1 && o.regenerations == 0 {
                eprintln!("FAIL: the unreplicated control did not re-render — vacuous contrast");
                failed = true;
            }
        }
        let partition = resilience::partition_heal(&rcfg);
        println!("{}", resilience::partition_table(&partition).render());
        if !partition.diverged
            || !partition.converged
            || !partition.deterministic
            || partition.rounds_to_heal > partition.bound
        {
            eprintln!(
                "FAIL: gossip partition heal (diverged: {}, converged: {}, deterministic: {}, \
                 {}/{} rounds)",
                partition.diverged,
                partition.converged,
                partition.deterministic,
                partition.rounds_to_heal,
                partition.bound
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "node-kill ({}): {} failovers, {} retries, zero lost, payloads byte-identical",
        chaos.killed, chaos.failovers, chaos.retries
    );
    if replication > 1 {
        println!(
            "replication {replication}: owner kill served from replicas with zero \
             regenerations; partition healed deterministically in bound"
        );
    }
}

/// Run the E18 transport shoot-out on its own: h2 vs h3 page loads with
/// a slow generation behind every recipe. With `--chaos` the caller's
/// spec drives the slowness; otherwise the experiment installs its own
/// deterministic `engine.generate` latency. Exits non-zero if the h3
/// payloads are not byte-identical to the h2 ones.
fn cmd_bench_transport(args: &Args) {
    use sww_bench::experiments::transport;
    let cfg = transport::TransportConfig {
        pages: args.opt("pages", "5").parse().unwrap_or(5).max(1),
        recipes: args.opt("recipes", "4").parse().unwrap_or(4).max(1),
        gen_latency_ms: args.opt("gen-latency-ms", "25").parse().unwrap_or(25),
        ..transport::TransportConfig::default()
    };
    let run = if args.options.contains_key("chaos") {
        install_chaos(args);
        transport::run(cfg)
    } else {
        println!("chaos: {} (default E18 spec)", transport::latency_spec(cfg));
        transport::run_with_latency(cfg)
    };
    println!("{}", transport::table(cfg, &run).render());
    println!(
        "modelled h3 speedup: {:.2}x, measured p99 speedup: {:.2}x",
        run.modelled_speedup(),
        run.measured_p99_speedup()
    );
    if !run.byte_identical {
        eprintln!("FAIL: per-recipe payloads differ between h2 and h3");
        std::process::exit(1);
    }
    println!("payloads byte-identical across transports");
}

/// Translate `bench-workload` flags into an E20 sweep config.
fn e20_config_from(args: &Args) -> sww_bench::experiments::workload::E20Config {
    use sww_bench::experiments::workload::E20Config;
    let d = E20Config::default();
    E20Config {
        betas: args
            .opt("betas", "0.02,0.2,1.0")
            .split(',')
            .filter_map(|b| b.trim().parse().ok())
            .collect(),
        graph_nodes: args.opt("pages", "192").parse().unwrap_or(d.graph_nodes),
        k: args.opt("k", "8").parse().unwrap_or(d.k),
        cache_capacity: args.opt("cache", "32").parse().unwrap_or(d.cache_capacity),
        cluster_nodes: args
            .opt("cluster", "4")
            .parse()
            .unwrap_or(d.cluster_nodes)
            .max(1),
        deadline_ms: args
            .opt("deadline-ms", "2500")
            .parse()
            .unwrap_or(d.deadline_ms),
        modelled_requests: args
            .opt("requests", "1000000")
            .parse()
            .unwrap_or(d.modelled_requests),
        live_requests: args
            .opt("live-requests", "600")
            .parse()
            .unwrap_or(d.live_requests),
        threads: args.opt("threads", "4").parse().unwrap_or(d.threads).max(1),
        seed: args.opt("seed", "42").parse().unwrap_or(d.seed),
        ..d
    }
}

/// Run the E20 small-world workload harness: the modelled sweep over
/// every `--betas` entry, the live trace replays, and the
/// replay-determinism check. Exits non-zero when `slo_failures` reports
/// any gate violation (non-monotone hit rate vs clustering, modelled
/// p99 over the deadline, or replay nondeterminism).
fn cmd_bench_workload(args: &Args) {
    use sww_bench::experiments::workload;
    use sww_workload::replay::ReplayTarget;
    let chaos = args.options.contains_key("chaos");
    if chaos {
        install_chaos(args);
    }
    let cfg = e20_config_from(args);
    let rows = workload::modelled_sweep(&cfg);
    println!("{}", workload::modelled_table(&cfg, &rows).render());
    // --transport narrows the live run to one framing path; --cluster
    // always adds the edge ring unless a single transport was asked for.
    let targets = match args.options.get("transport").map(String::as_str) {
        Some("h2") => vec![ReplayTarget::H2],
        Some("h3") => vec![ReplayTarget::H3],
        Some("single") => vec![ReplayTarget::Single],
        Some(other) => {
            eprintln!("bad --transport {other:?}: expected single, h2 or h3");
            std::process::exit(2);
        }
        None => workload::live_targets(&cfg),
    };
    let live = workload::live_sweep(&cfg, &targets);
    println!("{}", workload::live_table(&cfg, &live).render());
    let det = workload::determinism_check(&cfg, &live);
    println!(
        "replay determinism: trace {}, responses {}, cross-topology {}",
        if det.trace_match { "match" } else { "DIVERGED" },
        if det.response_match {
            "match"
        } else {
            "DIVERGED"
        },
        if det.cross_target_identical {
            "identical"
        } else {
            "DIVERGED"
        }
    );
    let failures = workload::slo_failures(&cfg, &rows, &det);
    if !failures.is_empty() {
        for line in &failures {
            eprintln!("FAIL: {line}");
        }
        std::process::exit(1);
    }
    println!(
        "workload SLO gates passed ({} modelled rows, {} live replays)",
        rows.len(),
        live.len()
    );
}

/// Gate a fresh `BENCH_PR6.json` against the checked-in baseline; exits
/// non-zero when `sww_bench::report::compare` reports failures.
fn cmd_bench_compare(args: &Args) {
    let (Some(base_path), Some(cur_path)) = (args.positionals.first(), args.positionals.get(1))
    else {
        usage();
    };
    let tolerance: f64 = args.opt("tolerance", "0.10").parse().unwrap_or(0.10);
    let load = |path: &str| -> sww_json::Value {
        let text = std::fs::read_to_string(path).unwrap_or_else(|err| panic!("read {path}: {err}"));
        sww_json::parse(&text).unwrap_or_else(|err| panic!("parse {path}: {err:?}"))
    };
    match sww_bench::report::compare(&load(base_path), &load(cur_path), tolerance) {
        Ok(checks) => {
            for line in checks {
                println!("ok: {line}");
            }
            println!("bench gate passed ({cur_path} vs {base_path})");
        }
        Err(failures) => {
            for line in failures {
                eprintln!("FAIL: {line}");
            }
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_names_map() {
        assert_eq!(device_from("laptop"), DeviceKind::Laptop);
        assert_eq!(device_from("workstation"), DeviceKind::Workstation);
        assert_eq!(device_from("ws"), DeviceKind::Workstation);
        assert_eq!(device_from("mobile"), DeviceKind::Mobile);
        assert_eq!(device_from("unknown"), DeviceKind::Laptop, "default");
    }

    #[test]
    fn image_model_names_map() {
        assert_eq!(image_model_from("sd21"), ImageModelKind::Sd21Base);
        assert_eq!(image_model_from("sd3"), ImageModelKind::Sd3Medium);
        assert_eq!(image_model_from("sd35"), ImageModelKind::Sd35Medium);
        assert_eq!(image_model_from("dalle3"), ImageModelKind::Dalle3);
        assert_eq!(image_model_from("flux"), ImageModelKind::FluxFast);
        assert_eq!(image_model_from("?"), ImageModelKind::Sd3Medium, "default");
    }

    #[test]
    fn text_model_names_map() {
        assert_eq!(text_model_from("llama"), TextModelKind::Llama32);
        assert_eq!(text_model_from("r1-1.5b"), TextModelKind::DeepSeekR1_1_5B);
        assert_eq!(text_model_from("r1-8b"), TextModelKind::DeepSeekR1_8B);
        assert_eq!(text_model_from("r1-14b"), TextModelKind::DeepSeekR1_14B);
        assert_eq!(
            text_model_from("?"),
            TextModelKind::DeepSeekR1_8B,
            "default"
        );
    }
}
