//! Tiny argument parser for the `sww` binary (flags + positionals, no
//! external dependency).

use std::collections::HashMap;

/// Parsed command line: subcommand, positionals, `--key value` options and
/// `--flag` switches.
#[derive(Debug, Default, Clone)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positionals: Vec<String>,
    /// `--key value` options.
    pub options: HashMap<String, String>,
    /// Bare `--flag` switches.
    pub flags: Vec<String>,
}

/// Option keys that take a value (everything else after `--` is a switch).
const VALUE_KEYS: [&str; 38] = [
    "betas",
    "cache",
    "k",
    "live-requests",
    "seed",
    "cluster",
    "nodes",
    "replicas",
    "replication",
    "gossip-interval-ms",
    "addr",
    "h3-addr",
    "transport",
    "pages",
    "recipes",
    "gen-latency-ms",
    "device",
    "model",
    "steps",
    "out",
    "ability",
    "site",
    "workers",
    "shards",
    "queue",
    "threads",
    "requests",
    "prompts",
    "chaos",
    "batch-max",
    "batch-wait",
    "deadline-ms",
    "breaker-threshold",
    "breaker-cooldown-ms",
    "drain-after",
    "kernel-tiles",
    "tiles",
    "tolerance",
];

impl Args {
    /// Parse from an iterator of arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Args {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if VALUE_KEYS.contains(&key) {
                    if let Some(value) = iter.next() {
                        out.options.insert(key.to_string(), value);
                    }
                } else {
                    out.flags.push(key.to_string());
                }
            } else if out.command.is_empty() {
                out.command = arg;
            } else {
                out.positionals.push(arg);
            }
        }
        out
    }

    /// Option lookup with a default.
    pub fn opt<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(String::as_str).unwrap_or(default)
    }

    /// Whether a switch was given.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_string))
    }

    #[test]
    fn subcommand_and_positionals() {
        let a = parse("fetch http://x/page other");
        assert_eq!(a.command, "fetch");
        assert_eq!(a.positionals, ["http://x/page", "other"]);
    }

    #[test]
    fn options_and_flags() {
        let a = parse("serve --addr 127.0.0.1:8443 --naive --device laptop");
        assert_eq!(a.opt("addr", ""), "127.0.0.1:8443");
        assert_eq!(a.opt("device", "x"), "laptop");
        assert!(a.has_flag("naive"));
        assert!(!a.has_flag("verbose"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("generate prompt-here");
        assert_eq!(a.opt("steps", "15"), "15");
        assert_eq!(a.opt("model", "sd3"), "sd3");
    }

    #[test]
    fn missing_value_is_ignored() {
        let a = parse("serve --addr");
        assert!(!a.options.contains_key("addr"));
    }

    #[test]
    fn empty_input() {
        let a = parse("");
        assert!(a.command.is_empty());
    }

    #[test]
    fn workload_options_take_values() {
        let a = parse(
            "bench-workload --betas 0.02,0.2,1.0 --k 8 --cache 32 --live-requests 150 --seed 42",
        );
        assert_eq!(a.opt("betas", ""), "0.02,0.2,1.0");
        assert_eq!(a.opt("k", ""), "8");
        assert_eq!(a.opt("cache", ""), "32");
        assert_eq!(a.opt("live-requests", ""), "150");
        assert_eq!(a.opt("seed", ""), "42");
        assert!(a.positionals.is_empty());
    }

    #[test]
    fn cluster_options_take_values() {
        let a = parse("serve --cluster 4 --replicas 128 --replication 2 --gossip-interval-ms 100");
        assert_eq!(a.opt("cluster", ""), "4");
        assert_eq!(a.opt("replicas", ""), "128");
        assert_eq!(a.opt("replication", ""), "2");
        assert_eq!(a.opt("gossip-interval-ms", ""), "100");
        let b = parse("bench-cluster --nodes 1,2,4 --chaos seed=7 --replication 2");
        assert_eq!(b.opt("nodes", ""), "1,2,4");
        assert_eq!(b.opt("chaos", ""), "seed=7");
        assert_eq!(b.opt("replication", ""), "2");
    }
}
