//! E5 bench: generation compute as a function of inference steps — the
//! real cost grows linearly with steps, matching the modelled latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use sww_genai::diffusion::{DiffusionModel, ImageModelKind};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_step_sweep");
    g.sample_size(10);
    let model = DiffusionModel::new(ImageModelKind::Sd3Medium);
    for steps in [10u32, 20, 40, 60] {
        g.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, &steps| {
            b.iter(|| black_box(model.generate("a quiet forest", 224, 224, steps)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
