//! E13 bench: CDN simulation throughput (requests served per mode).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sww_core::cdn::{CatalogItem, CdnSimulation, EdgeMode};

fn catalog() -> Vec<CatalogItem> {
    (0..100)
        .map(|i| CatalogItem {
            id: format!("obj{i}"),
            media_bytes: 131_072,
            metadata_bytes: 428,
            side: 1024,
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_cdn");
    for (label, mode) in [
        ("store_media", EdgeMode::StoreMedia),
        (
            "edge_generate",
            EdgeMode::StorePrompts {
                cache_generated: true,
            },
        ),
        ("pass_prompts", EdgeMode::PassPrompts),
    ] {
        g.bench_function(format!("serve_1000_requests_{label}"), |b| {
            b.iter(|| {
                let mut sim = CdnSimulation::new(catalog(), 10, mode);
                for r in 0..1000u64 {
                    sim.request((r % 10) as u32, &format!("obj{}", r % 100));
                }
                black_box(sim.edge_to_user_bytes)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
