//! E2 bench: the real compute behind the Figure 2 experiment — per-image
//! prompt-to-pixels generation at thumbnail size, metadata extraction from
//! the 49-item page, and image encoding.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sww_genai::diffusion::{DiffusionModel, ImageModelKind};
use sww_genai::image::codec;
use sww_html::gencontent;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_fig2");
    g.sample_size(10);
    let model = DiffusionModel::new(ImageModelKind::Sd3Medium);
    g.bench_function("generate_thumbnail_256", |b| {
        b.iter(|| black_box(model.generate("a wide alpine landscape", 256, 256, 15)))
    });
    let page = sww_workload::wikimedia::landscape_search_page();
    g.bench_function("extract_49_items", |b| {
        b.iter(|| {
            let doc = sww_html::parse(&page.sww_html);
            black_box(gencontent::extract(&doc).len())
        })
    });
    let img = model.generate("a wide alpine landscape", 256, 256, 15);
    g.bench_function("encode_thumbnail", |b| {
        b.iter(|| black_box(codec::encode(&img, 60).len()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
