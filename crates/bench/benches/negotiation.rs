//! E1 bench: the real cost of the SWW handshake (preface + SETTINGS with
//! GEN_ABILITY + ack) and a full request/response over an in-memory
//! connection, for each negotiation outcome.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sww_core::{GenAbility, GenerativeServer, SiteContent};
use sww_html::gencontent;

fn site() -> SiteContent {
    let mut s = SiteContent::new();
    s.add_page(
        "/p",
        format!(
            "<html><body>{}</body></html>",
            gencontent::image_div("a lake", "l.jpg", 64, 64)
        ),
    );
    s
}

fn bench(c: &mut Criterion) {
    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(2)
        .enable_all()
        .build()
        .unwrap();
    let mut g = c.benchmark_group("e1_negotiation");
    g.sample_size(20);
    for (label, client_ability) in [
        ("generative", GenAbility::full()),
        ("naive", GenAbility::none()),
    ] {
        g.bench_function(format!("handshake_and_get_{label}"), |b| {
            b.iter(|| {
                rt.block_on(async {
                    let server = GenerativeServer::builder()
                        .site(site())
                        .ability(GenAbility::full())
                        .build();
                    let (a, bio) = tokio::io::duplex(1 << 20);
                    tokio::spawn(async move {
                        let _ = server.serve_stream(bio).await;
                    });
                    let mut client = sww_http2::ClientConnection::handshake(a, client_ability)
                        .await
                        .unwrap();
                    let resp = client
                        .send_request(&sww_http2::Request::get("/p"))
                        .await
                        .unwrap();
                    black_box(resp.body.len())
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
