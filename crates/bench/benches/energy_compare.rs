//! E9/E10/E12 bench: the cost-model and accounting hot paths (these are
//! evaluated per request in the server policy loop, so they must be cheap).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sww_energy::device::{profile, DeviceKind};
use sww_energy::{carbon, cost, network};
use sww_genai::diffusion::ImageModelKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_energy");
    let ws = profile(DeviceKind::Workstation);
    g.bench_function("image_generation_time", |b| {
        b.iter(|| {
            black_box(cost::image_generation_time(
                ImageModelKind::Sd3Medium,
                &ws,
                1024,
                1024,
                15,
            ))
        })
    });
    g.bench_function("transmission_energy", |b| {
        b.iter(|| black_box(network::transmission_energy(131_072).wh()))
    });
    g.bench_function("carbon_savings", |b| {
        b.iter(|| black_box(carbon::storage_savings_kg_co2e(1e18, 157.0)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
