//! E11 bench: video negotiation decision cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sww_core::video::{negotiate, Resolution, StreamRequest};
use sww_core::GenAbility;

fn bench(c: &mut Criterion) {
    let req = StreamRequest {
        resolution: Resolution::Uhd4K,
        fps: 60,
        duration_s: 3600,
        segment_s: 6,
    };
    let ability = GenAbility::from_bits(GenAbility::VIDEO);
    c.bench_function("e11_video_negotiate", |b| {
        b.iter(|| black_box(negotiate(req, ability, ability).wire_bytes))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
