//! E7 bench: expansion compute per text model and the SBERT measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sww_genai::metrics::sbert;
use sww_genai::text::{TextModel, TextModelKind};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_text_models");
    g.sample_size(20);
    let bullets = vec![
        "trail climbs forest pines".to_string(),
        "ridge view valley peaks".to_string(),
    ];
    for kind in TextModelKind::all() {
        let model = TextModel::new(kind);
        g.bench_function(
            format!("expand_{}", model.profile().name.replace([' ', '.'], "_")),
            |b| b.iter(|| black_box(model.expand(&bullets, 150).len())),
        );
    }
    let model = TextModel::new(TextModelKind::DeepSeekR1_8B);
    let text = model.expand(&bullets, 150);
    g.bench_function("sbert_score", |b| {
        b.iter(|| black_box(sbert::sbert_score(&bullets, &text)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
