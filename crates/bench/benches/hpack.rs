//! Micro-bench: HPACK encode/decode and Huffman coding on SWW-typical
//! header blocks (the protocol-overhead component of every request).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sww_http2::hpack::{huffman, Decoder, Encoder, HeaderField};

fn headers() -> Vec<HeaderField> {
    vec![
        HeaderField::new(":method", "GET"),
        HeaderField::new(":scheme", "https"),
        HeaderField::new(":authority", "sww.example.org"),
        HeaderField::new(":path", "/wiki/landscape?page=2"),
        HeaderField::new("accept", "text/html,application/xhtml+xml"),
        HeaderField::new("user-agent", "sww-generative-client/0.1"),
    ]
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("hpack");
    g.bench_function("encode_block", |b| {
        let h = headers();
        let mut enc = Encoder::new();
        b.iter(|| black_box(enc.encode(&h).len()))
    });
    g.bench_function("encode_decode_roundtrip", |b| {
        let h = headers();
        b.iter(|| {
            let mut enc = Encoder::new();
            let mut dec = Decoder::new();
            let block = enc.encode(&h);
            black_box(dec.decode(&block).unwrap().len())
        })
    });
    let text = b"cache-control: max-age=3600, stale-while-revalidate=60";
    g.bench_function("huffman_encode", |b| {
        b.iter(|| black_box(huffman::encode(text).len()))
    });
    let enc = huffman::encode(text);
    g.bench_function("huffman_decode", |b| {
        b.iter(|| black_box(huffman::decode(&enc).unwrap().len()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
