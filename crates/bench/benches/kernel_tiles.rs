//! E17 bench: one batch-8 denoise+decode pass, tiled across 1–8 kernel
//! lanes on a worker-pool runner. Wall-clock here is host-shaped (it
//! tracks the modelled curve only up to the core count); the
//! machine-independent numbers live in BENCH_PR6.json via `sww-cli
//! bench-pr6`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use sww_core::WorkerPool;
use sww_genai::diffusion::{DiffusionModel, ImageModelKind, StepCancel, Tiling};
use sww_genai::prompt::PromptFeatures;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e17_kernel_tiles");
    g.sample_size(10);
    let model = DiffusionModel::new(ImageModelKind::Sd3Medium);
    let features: Vec<PromptFeatures> = (0..8)
        .map(|i| PromptFeatures::analyze(&format!("bench tile {i} evening square")))
        .collect();
    let runner = WorkerPool::new(7, 32);
    for tiles in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(tiles), &tiles, |b, &tiles| {
            b.iter(|| {
                black_box(model.try_generate_batch_on(
                    &features,
                    64,
                    64,
                    15,
                    &StepCancel::never(),
                    Tiling::new(&runner, tiles),
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
