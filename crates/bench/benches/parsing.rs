//! Micro-bench: the parsing substrates on every request's hot path —
//! JSON metadata, HTML pages, and SHA-256 for the trust layer.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("parsing");
    let metadata = r#"{"prompt":"a wide mountain landscape at golden hour, snow capped peaks above a green valley","name":"landscape_00.jpg","width":256,"height":256}"#;
    g.bench_function("json_metadata_parse", |b| {
        b.iter(|| black_box(sww_json::parse(metadata).unwrap()))
    });
    let v = sww_json::parse(metadata).unwrap();
    g.bench_function("json_metadata_serialize", |b| {
        b.iter(|| black_box(sww_json::to_string(&v).len()))
    });
    let page = sww_workload::wikimedia::landscape_search_page().sww_html;
    g.bench_function("html_parse_49_item_page", |b| {
        b.iter(|| black_box(sww_html::parse(&page).len()))
    });
    let doc = sww_html::parse(&page);
    g.bench_function("gencontent_extract_49", |b| {
        b.iter(|| black_box(sww_html::gencontent::extract(&doc).len()))
    });
    g.bench_function("sha256_128k", |b| {
        let data = vec![0xa5u8; 128 * 1024];
        b.iter(|| black_box(sww_hash::sha256(&data)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
