//! E3 bench: article → bullets conversion and bullets → article expansion
//! with the paper's model of choice.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sww_genai::text::{bullets, TextModel, TextModelKind};
use sww_workload::article;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_text_expansion");
    g.sample_size(20);
    g.bench_function("article_to_bullets", |b| {
        b.iter(|| black_box(bullets::to_bullets(article::ARTICLE, 6).len()))
    });
    let model = TextModel::new(TextModelKind::DeepSeekR1_8B);
    let blist = article::article_bullets();
    let target = article::target_words();
    g.bench_function("expand_article", |b| {
        b.iter(|| black_box(model.expand(&blist, target).len()))
    });
    g.bench_function("load_model", |b| {
        b.iter(|| black_box(TextModel::new(TextModelKind::DeepSeekR1_8B)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
