//! E4 bench: generation cost of each Table 1 model at the 224²/15-step
//! operating point, plus the CLIP measurement itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use sww_genai::diffusion::{DiffusionModel, ImageModelKind};
use sww_genai::metrics::clip;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_table1");
    g.sample_size(10);
    for kind in ImageModelKind::table1() {
        let model = DiffusionModel::new(kind);
        g.bench_function(
            format!("generate_{}", model.profile().name.replace([' ', '.'], "_")),
            |b| b.iter(|| black_box(model.generate("a mountain lake at sunset", 224, 224, 15))),
        );
    }
    let model = DiffusionModel::new(ImageModelKind::Sd3Medium);
    let img = model.generate("a mountain lake at sunset", 224, 224, 15);
    g.bench_function("clip_score", |b| {
        b.iter(|| black_box(clip::clip_score(&img, "a mountain lake at sunset")))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
