//! E6 bench: generation and decode compute across image sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use sww_genai::diffusion::{DiffusionModel, ImageModelKind};
use sww_genai::image::codec;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_size_sweep");
    g.sample_size(10);
    let model = DiffusionModel::new(ImageModelKind::Sd3Medium);
    for side in [256u32, 512, 1024] {
        g.bench_with_input(BenchmarkId::new("generate", side), &side, |b, &side| {
            b.iter(|| black_box(model.generate("a beach", side, side, 15)))
        });
        let img = model.generate("a beach", side, side, 15);
        let enc = codec::encode(&img, 55);
        g.bench_with_input(BenchmarkId::new("decode", side), &enc, |b, enc| {
            b.iter(|| black_box(codec::decode(enc).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
