//! E8 bench: codec encode cost per Table 2 media class and metadata
//! serialization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use sww_genai::diffusion::{DiffusionModel, ImageModelKind};
use sww_genai::image::codec;
use sww_workload::media_classes::{table2_classes, worst_case_image_metadata};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_table2");
    g.sample_size(10);
    let model = DiffusionModel::new(ImageModelKind::Sd3Medium);
    for class in table2_classes() {
        if class.side == 0 {
            continue;
        }
        let img = model.generate("a detailed landscape", class.side, class.side, 15);
        g.bench_with_input(BenchmarkId::new("encode", class.side), &img, |b, img| {
            b.iter(|| black_box(codec::encode(img, 55).len()))
        });
    }
    g.bench_function("metadata_serialize", |b| {
        b.iter(|| black_box(sww_json::to_string(&worst_case_image_metadata(1024)).len()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
