//! `report` — regenerates every table and figure of the paper and prints
//! paper-vs-measured values. Run all experiments with no arguments, or a
//! subset with `--exp e2,e4`.

use sww_bench::experiments::{
    ablations, article, batching, compression, concurrency, energy, fig1, mobile, models,
    negotiation, video_cdn, wikimedia,
};

fn wants(filter: &Option<Vec<String>>, id: &str) -> bool {
    match filter {
        None => true,
        Some(list) => list.iter().any(|x| x == id),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let filter: Option<Vec<String>> = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.split(',').map(|x| x.trim().to_lowercase()).collect());

    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(2)
        .enable_all()
        .build()
        .expect("tokio runtime");

    println!("SWW paper reproduction report — every §6 table/figure plus §2.2/§3.2/§7 claims\n");

    if wants(&filter, "fig1") {
        println!("{}", fig1::render(&fig1::run()));
    }
    if wants(&filter, "e1") {
        let scenarios = rt.block_on(negotiation::run());
        println!("{}", negotiation::table(&scenarios).render());
    }
    let mut measured_image_ratio = 157.0;
    if wants(&filter, "e2") {
        eprintln!("[building the 49-image Wikimedia workload ...]");
        let page = sww_workload::wikimedia::landscape_search_page();
        let r = rt.block_on(wikimedia::run(&page));
        measured_image_ratio = r.compression_ratio;
        println!("{}", wikimedia::table(&r).render());
    }
    if wants(&filter, "e3") {
        println!("{}", article::table(&article::run()).render());
    }
    if wants(&filter, "e4") {
        println!("{}", models::table1_table(&models::table1()).render());
    }
    if wants(&filter, "e5") {
        println!(
            "{}",
            models::step_sweep_table(&models::step_sweep()).render()
        );
    }
    if wants(&filter, "e6") {
        println!(
            "{}",
            models::size_sweep_table(&models::size_sweep()).render()
        );
    }
    if wants(&filter, "e7") {
        println!(
            "{}",
            models::text_models_table(&models::text_models(40)).render()
        );
    }
    if wants(&filter, "e8") {
        println!("{}", compression::table(&compression::run()).render());
    }
    if wants(&filter, "e9") {
        println!(
            "{}",
            energy::energy_table(&energy::energy_compare()).render()
        );
    }
    if wants(&filter, "e10") {
        println!(
            "{}",
            energy::carbon_table(&energy::carbon(measured_image_ratio)).render()
        );
    }
    if wants(&filter, "e11") {
        println!("{}", video_cdn::video_table(&video_cdn::video()).render());
    }
    if wants(&filter, "e12") {
        println!(
            "{}",
            energy::projection_table(&energy::projection(measured_image_ratio)).render()
        );
    }
    if wants(&filter, "e13") {
        println!("{}", video_cdn::cdn_table(&video_cdn::cdn()).render());
    }
    if wants(&filter, "e14") {
        println!("{}", mobile::table(&mobile::run()).render());
    }
    if wants(&filter, "e15") {
        let cfg = concurrency::ConcurrencyConfig::default();
        let samples = concurrency::run(cfg, &[0, 1, 2, 4, 8]);
        println!("{}", concurrency::table(cfg, &samples).render());
    }
    if wants(&filter, "e16") {
        let cfg = batching::BatchingConfig::default();
        let samples = batching::run(cfg, &[1, 2, 4, 8]);
        println!("{}", batching::table(cfg, &samples).render());
    }
    if wants(&filter, "ablations") {
        let pre = ablations::preload(4);
        let huff = ablations::huffman();
        let up = ablations::upscale_vs_ship();
        println!("{}", ablations::table(&pre, &huff, &up).render());
    }

    // Metrics appendix: everything the run above recorded, in Prometheus
    // text form. Goes to stderr so stdout (the report proper) stays
    // byte-identical whether or not anyone reads the appendix.
    let metrics = sww_obs::render();
    if !metrics.is_empty() {
        eprintln!("\n=== metrics appendix (see OBSERVABILITY.md) ===\n{metrics}");
    }
}
