//! E17 — data-parallel denoise kernel: throughput vs. kernel lanes.
//!
//! Two sweeps over the PR 6 tiled kernel, both pinned to the
//! bit-identity suites (`batch_equivalence`, `proptest_kernel`): tiling
//! may only move *where* a job's instruction stream runs, never its
//! contents.
//!
//! **Raw kernel sweep** — [`kernel_sweep`] drives
//! [`DiffusionModel::try_generate_batch_on`] directly: one batch of
//! distinct prompts, repeated over a persistent [`WorkerPool`] runner,
//! varying only the lane count. Reported throughput comes in two
//! currencies:
//!
//! * **wall** — measured images per wall-clock second on this host.
//!   Honest but host-shaped: it tracks the modelled curve only up to
//!   `min(lanes, cores)`, and on a single-core CI box it is flat.
//! * **modelled** — images per modelled device-second from
//!   [`sww_energy::cost::tiled_batch_pass_time`], the same cost model
//!   that prices the E16 batching win. This is the machine-independent
//!   number the regression gate compares (see PERFORMANCE.md).
//!
//! **Serving sweep** — [`serving_sweep`] is the E16 workload (rounds of
//! distinct prompts, barrier-aligned, announce hint held, so every group
//! closes on full) with the batch cap fixed at the thread count and only
//! `kernel_tiles` varying. It reports wall qps, request latency
//! percentiles, the modelled rate from the server's own accounting, and
//! the steady-state allocation delta.
//!
//! Both sweeps snapshot `sww_alloc_bytes_total` after a warmup phase:
//! the measured phase must allocate **zero** fresh bytes from the latent
//! and decode pools — the zero-copy hot-path property, asserted here
//! rather than assumed.

use crate::table::Table;
use std::sync::{Barrier, Mutex};
use std::time::Instant;
use sww_core::{GenAbility, GenerativeServer, WorkerPool};
use sww_energy::cost::tiled_batch_pass_time;
use sww_energy::device::{profile, DeviceKind};
use sww_genai::diffusion::{DiffusionModel, ImageModelKind, StepCancel, Tiling};
use sww_genai::prompt::PromptFeatures;
use sww_http2::Request;

/// One lane-count sample of the raw kernel sweep.
#[derive(Debug, Clone)]
pub struct KernelSample {
    /// Kernel lanes the batch was tiled across (1 = scalar step-major).
    pub tiles: usize,
    /// Measured images per wall-clock second on this host.
    pub wall_qps: f64,
    /// Median per-pass wall time in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-pass wall time in milliseconds.
    pub p99_ms: f64,
    /// Images per modelled device-second
    /// ([`sww_energy::cost::tiled_batch_pass_time`]).
    pub modelled_rate: f64,
    /// `modelled_rate` relative to the 1-lane row.
    pub speedup: f64,
    /// Fresh pool bytes allocated during the measured (post-warmup)
    /// passes — 0 when the hot path is steady-state allocation-free.
    pub alloc_bytes: u64,
}

/// Raw kernel sweep configuration.
#[derive(Debug, Clone, Copy)]
pub struct KernelConfig {
    /// Jobs per batched pass (distinct prompts).
    pub batch: usize,
    /// Square output side in pixels.
    pub side: u32,
    /// Denoising steps.
    pub steps: u32,
    /// Measured passes per lane count.
    pub reps: usize,
    /// Untimed warmup passes (fills the buffer-pool shelves).
    pub warmup: usize,
}

impl Default for KernelConfig {
    fn default() -> KernelConfig {
        KernelConfig {
            batch: 8,
            side: 64,
            steps: 15,
            reps: 6,
            warmup: 2,
        }
    }
}

/// Fresh pool bytes allocated so far, summed over the hot-path pools.
fn pool_alloc_bytes() -> u64 {
    ["latent", "decode_noise"]
        .iter()
        .map(|p| sww_obs::counter("sww_alloc_bytes_total", &[("pool", p)]).get())
        .sum()
}

/// Run one lane-count sample of the raw kernel sweep on `runner`.
pub fn kernel_sample(cfg: KernelConfig, runner: &WorkerPool, tiles: usize) -> KernelSample {
    let model = DiffusionModel::new(ImageModelKind::Sd3Medium);
    let features: Vec<PromptFeatures> = (0..cfg.batch.max(1))
        .map(|i| PromptFeatures::analyze(&format!("e17 kernel bench prompt {i} harbor light")))
        .collect();
    let run_pass = || {
        model
            .try_generate_batch_on(
                &features,
                cfg.side,
                cfg.side,
                cfg.steps,
                &StepCancel::never(),
                Tiling::new(runner, tiles),
            )
            .expect("StepCancel::never cannot abort a pass")
    };
    for _ in 0..cfg.warmup {
        run_pass();
    }
    // Organic warmup shelves only as many decode planes as were ever
    // live at once — scheduling-dependent for concurrent tiles. Prewarm
    // the worst case so the measured phase's zero-allocation property is
    // exact (the latent working set is deterministic: all 3·batch
    // buffers live through every pass, so warmup already covers it).
    sww_genai::pool::decode_pool().prewarm(tiles, (cfg.side * cfg.side) as usize);
    let alloc_before = pool_alloc_bytes();
    let mut pass_ms: Vec<f64> = Vec::with_capacity(cfg.reps);
    let start = Instant::now();
    for _ in 0..cfg.reps.max(1) {
        let t = Instant::now();
        run_pass();
        pass_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let elapsed = start.elapsed().as_secs_f64();
    pass_ms.sort_by(|a, b| a.total_cmp(b));
    let device = profile(DeviceKind::Workstation);
    let pass_s = tiled_batch_pass_time(
        ImageModelKind::Sd3Medium,
        &device,
        cfg.side,
        cfg.side,
        cfg.steps,
        cfg.batch,
        tiles,
    )
    .expect("sd3 runs on the workstation profile");
    KernelSample {
        tiles,
        wall_qps: (cfg.batch * cfg.reps.max(1)) as f64 / elapsed.max(1e-9),
        p50_ms: super::concurrency::percentile_ms(&pass_ms, 50.0),
        p99_ms: super::concurrency::percentile_ms(&pass_ms, 99.0),
        modelled_rate: cfg.batch as f64 / pass_s.max(1e-12),
        speedup: 1.0, // filled in by `kernel_sweep` against the 1-lane row
        alloc_bytes: pool_alloc_bytes() - alloc_before,
    }
}

/// Sweep the raw kernel over lane counts on one persistent pool sized for
/// the widest sample (lanes − 1 helpers; the caller is the last lane).
pub fn kernel_sweep(cfg: KernelConfig, tile_counts: &[usize]) -> Vec<KernelSample> {
    let widest = tile_counts.iter().copied().max().unwrap_or(1);
    let runner = WorkerPool::new(widest.saturating_sub(1), widest.max(1) * 4);
    let mut samples: Vec<KernelSample> = tile_counts
        .iter()
        .map(|&t| kernel_sample(cfg, &runner, t))
        .collect();
    let baseline = samples
        .iter()
        .find(|s| s.tiles <= 1)
        .or(samples.first())
        .map(|s| s.modelled_rate)
        .unwrap_or(1.0);
    for s in &mut samples {
        s.speedup = s.modelled_rate / baseline.max(1e-12);
    }
    samples
}

/// One `kernel_tiles` sample of the serving sweep.
#[derive(Debug, Clone)]
pub struct ServingSample {
    /// Kernel lanes inside each batched pass (1 = scalar kernel).
    pub kernel_tiles: usize,
    /// Measured requests per wall-clock second over the measured rounds.
    pub wall_qps: f64,
    /// Median request latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency in milliseconds.
    pub p99_ms: f64,
    /// Images per modelled device-second (server accounting delta).
    pub modelled_rate: f64,
    /// `modelled_rate` relative to the tiles-1 row.
    pub speedup: f64,
    /// Mean achieved batch size over the whole sample.
    pub mean_batch: f64,
    /// Fresh pool bytes allocated during the measured rounds.
    pub alloc_bytes: u64,
}

/// Serving sweep configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServingConfig {
    /// Client threads per round; also the pool size and the batch cap, so
    /// every round is one full batched pass.
    pub threads: usize,
    /// Measured barrier-aligned rounds of `threads` distinct prompts.
    pub rounds: usize,
    /// Untimed warmup rounds (fills pool shelves, warms the kernel pool).
    pub warmup_rounds: usize,
    /// Batch-wait deadline in milliseconds (generous: groups close on
    /// full, not on the clock).
    pub batch_wait_ms: u64,
}

impl Default for ServingConfig {
    fn default() -> ServingConfig {
        ServingConfig {
            threads: 8,
            rounds: 4,
            warmup_rounds: 1,
            batch_wait_ms: 250,
        }
    }
}

/// Drive `rounds` barrier-aligned rounds of distinct prompts starting at
/// page `first_page`, collecting per-request latencies.
fn drive_rounds(
    server: &GenerativeServer,
    threads: usize,
    rounds: usize,
    first_page: usize,
) -> Vec<f64> {
    let latencies_ms = Mutex::new(Vec::with_capacity(threads * rounds));
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let session = server.accept(GenAbility::none());
            let barrier = &barrier;
            let latencies_ms = &latencies_ms;
            scope.spawn(move || {
                let mut mine = Vec::with_capacity(rounds);
                for round in 0..rounds {
                    barrier.wait();
                    let path = format!("/page/{}", first_page + round * threads + t);
                    let attempt = Instant::now();
                    let resp = session.handle(&Request::get(&path));
                    assert_eq!(resp.status, 200, "GET {path}");
                    mine.push(attempt.elapsed().as_secs_f64() * 1e3);
                }
                latencies_ms
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .extend(mine);
            });
        }
    });
    let mut out = latencies_ms.into_inner().unwrap_or_else(|e| e.into_inner());
    out.sort_by(|a, b| a.total_cmp(b));
    out
}

/// Run one `kernel_tiles` sample of the serving sweep.
pub fn serving_sample(cfg: ServingConfig, kernel_tiles: usize) -> ServingSample {
    let total_rounds = cfg.warmup_rounds + cfg.rounds;
    let server = GenerativeServer::builder()
        .site(super::concurrency::bench_site(cfg.threads * total_rounds))
        .workers(cfg.threads)
        .batch_max(cfg.threads)
        .batch_wait(std::time::Duration::from_millis(cfg.batch_wait_ms))
        .kernel_tiles(kernel_tiles)
        .build();
    // Held across the sample: groups close on full, never on a
    // rendezvous-drain race (same discipline as E16).
    let hint = server.batcher().map(|b| b.announce());
    drive_rounds(&server, cfg.threads, cfg.warmup_rounds, 0);
    // See kernel_sample: up to `kernel_tiles` decode planes (64×64, the
    // bench_site image size) are live at once, and organic warmup only
    // shelves the peak this host's scheduler happened to reach.
    sww_genai::pool::decode_pool().prewarm(kernel_tiles.max(1), 64 * 64);
    let alloc_before = pool_alloc_bytes();
    let modelled_before = server.server_generation_time_s();
    let start = Instant::now();
    let latencies_ms = drive_rounds(
        &server,
        cfg.threads,
        cfg.rounds,
        cfg.warmup_rounds * cfg.threads,
    );
    let elapsed = start.elapsed().as_secs_f64();
    drop(hint);
    let images = (cfg.threads * cfg.rounds) as f64;
    let modelled_s = server.server_generation_time_s() - modelled_before;
    ServingSample {
        kernel_tiles,
        wall_qps: images / elapsed.max(1e-9),
        p50_ms: super::concurrency::percentile_ms(&latencies_ms, 50.0),
        p99_ms: super::concurrency::percentile_ms(&latencies_ms, 99.0),
        modelled_rate: images / modelled_s.max(1e-12),
        speedup: 1.0, // filled in by `serving_sweep` against the tiles-1 row
        mean_batch: server.batch_stats().map_or(0.0, |s| s.mean_batch),
        alloc_bytes: pool_alloc_bytes() - alloc_before,
    }
}

/// Sweep serving throughput over `kernel_tiles` values.
pub fn serving_sweep(cfg: ServingConfig, tile_counts: &[usize]) -> Vec<ServingSample> {
    let mut samples: Vec<ServingSample> = tile_counts
        .iter()
        .map(|&t| serving_sample(cfg, t))
        .collect();
    let baseline = samples
        .iter()
        .find(|s| s.kernel_tiles <= 1)
        .or(samples.first())
        .map(|s| s.modelled_rate)
        .unwrap_or(1.0);
    for s in &mut samples {
        s.speedup = s.modelled_rate / baseline.max(1e-12);
    }
    samples
}

/// Render the raw kernel sweep as a table.
pub fn kernel_table(cfg: KernelConfig, samples: &[KernelSample]) -> Table {
    let mut t = Table::new(
        format!(
            "E17 — Tiled denoise kernel: throughput vs. lanes \
             (batch {}, {}x{}, {} steps, {} reps)",
            cfg.batch, cfg.side, cfg.side, cfg.steps, cfg.reps
        ),
        &[
            "Lanes",
            "WallImg/s",
            "p50/p99 ms",
            "ModelImg/s",
            "Speedup",
            "AllocBytes",
        ],
    );
    for s in samples {
        t.row([
            if s.tiles <= 1 {
                "scalar".to_string()
            } else {
                s.tiles.to_string()
            },
            format!("{:.0}", s.wall_qps),
            format!("{:.1}/{:.1}", s.p50_ms, s.p99_ms),
            format!("{:.2}", s.modelled_rate),
            format!("{:.2}x", s.speedup),
            s.alloc_bytes.to_string(),
        ]);
    }
    t
}

/// Render the serving sweep as a table.
pub fn serving_table(cfg: ServingConfig, samples: &[ServingSample]) -> Table {
    let mut t = Table::new(
        format!(
            "E17 — Batched serving with tiled kernel \
             ({} threads x {} rounds, distinct prompts, batch {})",
            cfg.threads, cfg.rounds, cfg.threads
        ),
        &[
            "Tiles",
            "WallReq/s",
            "p50/p99 ms",
            "ModelImg/s",
            "Speedup",
            "MeanBatch",
            "AllocBytes",
        ],
    );
    for s in samples {
        t.row([
            if s.kernel_tiles <= 1 {
                "scalar".to_string()
            } else {
                s.kernel_tiles.to_string()
            },
            format!("{:.0}", s.wall_qps),
            format!("{:.1}/{:.1}", s.p50_ms, s.p99_ms),
            format!("{:.2}", s.modelled_rate),
            format!("{:.2}x", s.speedup),
            format!("{:.1}", s.mean_batch),
            s.alloc_bytes.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR 6 acceptance pair on the raw kernel: at batch 8 the 8-lane
    /// pass models ≥ 1.5× the scalar pass (the cost model puts it at
    /// 3.1×), and the measured passes allocate zero fresh pool bytes
    /// after warmup.
    #[test]
    fn eight_lanes_model_1_5x_and_stay_allocation_free() {
        let _serial = super::super::POOL_SERIAL
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let cfg = KernelConfig {
            batch: 8,
            side: 32,
            steps: 10,
            reps: 2,
            warmup: 1,
        };
        let samples = kernel_sweep(cfg, &[1, 8]);
        assert_eq!(samples.len(), 2);
        let tiled = &samples[1];
        assert!(
            tiled.speedup >= 1.5,
            "8-lane modelled speedup only {:.2}x",
            tiled.speedup
        );
        for s in &samples {
            assert_eq!(
                s.alloc_bytes, 0,
                "lanes={}: hot path allocated after warmup",
                s.tiles
            );
            assert!(s.wall_qps > 0.0);
        }
    }

    /// Serving with a tiled kernel: same close-on-full batches, modelled
    /// speedup from the lanes, zero steady-state allocations.
    #[test]
    fn tiled_serving_models_speedup_with_full_batches() {
        let _serial = super::super::POOL_SERIAL
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let cfg = ServingConfig {
            threads: 4,
            rounds: 2,
            warmup_rounds: 1,
            batch_wait_ms: 250,
        };
        let samples = serving_sweep(cfg, &[1, 4]);
        let tiled = &samples[1];
        // 4 lanes at batch 4: 4·t(4) / t(1) = 1.9 modelled.
        assert!(
            tiled.speedup >= 1.5,
            "4-lane serving modelled speedup only {:.2}x",
            tiled.speedup
        );
        for s in &samples {
            assert_eq!(s.mean_batch, cfg.threads as f64, "tiles={}", s.kernel_tiles);
            assert_eq!(
                s.alloc_bytes, 0,
                "tiles={}: steady state allocated",
                s.kernel_tiles
            );
        }
    }

    #[test]
    fn tables_render_both_sweeps() {
        let _serial = super::super::POOL_SERIAL
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let kcfg = KernelConfig {
            batch: 2,
            side: 16,
            steps: 4,
            reps: 1,
            warmup: 1,
        };
        let ks = kernel_sweep(kcfg, &[1, 2]);
        let rendered = kernel_table(kcfg, &ks).render();
        assert!(rendered.contains("scalar"));
        assert!(rendered.contains("E17"));
        let scfg = ServingConfig {
            threads: 2,
            rounds: 1,
            warmup_rounds: 1,
            batch_wait_ms: 100,
        };
        let ss = serving_sweep(scfg, &[2]);
        assert!(serving_table(scfg, &ss).render().contains("E17"));
    }
}
