//! E2 — the Figure 2 experiment: the Wikimedia "Landscape" search page
//! delivered as prompts and regenerated on-device. Reports the paper's
//! headline numbers: data reduction (1.4 MB → 8.92 kB, 157×; worst case
//! 68× at 428 B/image), generation time (≈6.32 s/image laptop, ≈1 s/image
//! workstation), and semantic preservation via CLIP-sim.

use crate::table::{bytes, secs, Table};
use sww_core::{GenAbility, GenerativeClient, GenerativeServer, SiteContent};
use sww_energy::device::{profile, DeviceKind};
use sww_genai::metrics::clip;
use sww_workload::wikimedia::{self, LandscapePage};

/// Results of the Figure 2 reproduction.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// Measured bytes of the 49 original thumbnails.
    pub original_media_bytes: u64,
    /// Measured metadata bytes of the prompt-form page.
    pub metadata_bytes: u64,
    /// original / metadata.
    pub compression_ratio: f64,
    /// Worst-case ratio with every image at the 428 B budget.
    pub worst_case_ratio: f64,
    /// Total modelled generation time on the laptop.
    pub laptop_total_s: f64,
    /// Total modelled generation time on the workstation.
    pub workstation_total_s: f64,
    /// Mean CLIP score of the regenerated images against their prompts.
    pub mean_clip: f64,
    /// Mean CLIP score of random images (the floor).
    pub random_clip: f64,
    /// Bytes that actually crossed the wire in the end-to-end SWW fetch.
    pub wire_bytes: u64,
}

/// Run the experiment end to end: real page over a real connection, real
/// client-side regeneration, measured bytes everywhere.
pub async fn run(page: &LandscapePage) -> Fig2Result {
    // Serve the prompt-form page and fetch it with a generating client.
    let mut site = SiteContent::new();
    site.add_page("/wiki/landscape", page.sww_html.clone());
    let server = GenerativeServer::builder()
        .site(site)
        .ability(GenAbility::full())
        .build();
    let (a, b) = tokio::io::duplex(1 << 22);
    let srv = server.clone();
    tokio::spawn(async move {
        let _ = srv.serve_stream(b).await;
    });
    let mut client = GenerativeClient::connect(a, GenAbility::full(), profile(DeviceKind::Laptop))
        .await
        .expect("handshake");
    let (rendered, stats) = client.fetch_page("/wiki/landscape").await.expect("fetch");
    assert_eq!(rendered.generated_count(), wikimedia::IMAGE_COUNT);

    // Workstation pass for the second timing column.
    let (c, d) = tokio::io::duplex(1 << 22);
    let srv = server.clone();
    tokio::spawn(async move {
        let _ = srv.serve_stream(d).await;
    });
    let mut ws_client =
        GenerativeClient::connect(c, GenAbility::full(), profile(DeviceKind::Workstation))
            .await
            .expect("handshake");
    let (_, ws_stats) = ws_client
        .fetch_page("/wiki/landscape")
        .await
        .expect("fetch");

    // CLIP preservation, measured from the regenerated pixels.
    let mut clip_sum = 0.0;
    for (res, img) in rendered.resources.iter().zip(&page.images) {
        clip_sum += clip::clip_score(&res.image, &img.prompt);
    }
    let mean_clip = clip_sum / page.images.len() as f64;

    let original = page.original_media_bytes() as u64;
    let metadata = page.metadata_bytes() as u64;
    Fig2Result {
        original_media_bytes: original,
        metadata_bytes: metadata,
        compression_ratio: original as f64 / metadata as f64,
        worst_case_ratio: original as f64 / (428.0 * wikimedia::IMAGE_COUNT as f64),
        laptop_total_s: stats.generation_time_s,
        workstation_total_s: ws_stats.generation_time_s,
        mean_clip,
        random_clip: clip::RANDOM_BASELINE,
        wire_bytes: stats.wire_bytes,
    }
}

/// Render side by side with the paper's values.
pub fn table(r: &Fig2Result) -> Table {
    let mut t = Table::new(
        "E2 — Fig. 2 Wikimedia 'Landscape' page (49 images)",
        &["Quantity", "Paper", "Measured"],
    );
    t.row(["original media", "1.40MB", &bytes(r.original_media_bytes)]);
    t.row(["prompt metadata", "8.92kB", &bytes(r.metadata_bytes)]);
    t.row([
        "compression",
        "157x",
        &format!("{:.0}x", r.compression_ratio),
    ]);
    t.row([
        "worst-case compression",
        "68x",
        &format!("{:.0}x", r.worst_case_ratio),
    ]);
    t.row([
        "laptop generation",
        "310s (6.32s/img)",
        &format!(
            "{} ({}/img)",
            secs(r.laptop_total_s),
            secs(r.laptop_total_s / wikimedia::IMAGE_COUNT as f64)
        ),
    ]);
    t.row([
        "workstation generation",
        "49s (~1s/img)",
        &format!(
            "{} ({}/img)",
            secs(r.workstation_total_s),
            secs(r.workstation_total_s / wikimedia::IMAGE_COUNT as f64)
        ),
    ]);
    t.row([
        "semantic preservation (CLIP)",
        "conserved",
        &format!("{:.3} vs random {:.2}", r.mean_clip, r.random_clip),
    ]);
    t.row(["SWW wire bytes (end-to-end)", "-", &bytes(r.wire_bytes)]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test(flavor = "multi_thread")]
    async fn fig2_shape_holds() {
        let page = wikimedia::landscape_search_page();
        let r = run(&page).await;
        // Who wins and by roughly what factor.
        assert!(
            r.compression_ratio > 60.0,
            "compression {:.0}x",
            r.compression_ratio
        );
        assert!(r.worst_case_ratio > 30.0);
        assert!(r.compression_ratio > r.worst_case_ratio);
        // Laptop ≈ 7× slower than the workstation at thumbnail size.
        let speedup = r.laptop_total_s / r.workstation_total_s;
        assert!((4.0..12.0).contains(&speedup), "speedup {speedup:.1}");
        // Workstation ≈ 1 s/image (the paper's "roughly 1 second").
        let per_img = r.workstation_total_s / wikimedia::IMAGE_COUNT as f64;
        assert!((0.8..1.3).contains(&per_img), "{per_img:.2} s/img");
        // Semantics conserved: well above the random floor.
        assert!(r.mean_clip > r.random_clip + 0.08);
        // The wire carried roughly the metadata, not the media.
        assert!(r.wire_bytes < r.original_media_bytes / 20);
    }
}
