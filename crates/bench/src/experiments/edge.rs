//! E19 — distributed generative edge: aggregate throughput and *global*
//! cache hit-rate vs node count, plus a chaos node-kill scenario.
//!
//! The sweep drives `N × threads_per_node` naive clients against an
//! [`EdgeRouter`] cluster over a shared pool of `prompts` recipes. Because
//! the ring funnels every recipe to one owner whose engine single-flights,
//! the cluster generates each recipe **exactly once** no matter how many
//! nodes or clients — so the request volume scales with `N` while the
//! generation count stays flat, and the global hit rate
//! `1 − generations/requests` strictly increases with node count. The
//! regression gate compares the **modelled** numbers (ring ownership +
//! the deterministic cost model); wall-clock columns ride along ungated,
//! exactly as in E17/E18.
//!
//! The chaos scenario kills the busiest owner mid-run: the router walks
//! the ring to the next alive successor (every entry converges on the
//! same acting owner), the client retry loop absorbs any in-flight 5xx,
//! and the scenario must end with **zero lost responses** and payloads
//! byte-identical to a 1-node baseline — generation is deterministic in
//! the recipe, so failover cannot change a single byte.

use crate::table::Table;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use sww_core::edge::{recipe_key, DEFAULT_VNODES};
use sww_core::{
    EdgeConfig, EdgeRouter, GenAbility, GenerativeServer, HashRing, MediaGenerator, ServerConfig,
};
use sww_energy::cost;
use sww_energy::device::{profile, DeviceKind};
use sww_http2::Request;

use super::concurrency::{bench_site, percentile_ms};

/// Sweep configuration. Requests per sample = `nodes × threads_per_node
/// × requests_per_thread`, so the offered load scales with the cluster
/// while the `prompts` recipe pool stays fixed.
#[derive(Debug, Clone)]
pub struct EdgeClusterConfig {
    /// Node counts to sweep (ascending).
    pub node_counts: Vec<usize>,
    /// Client threads per node.
    pub threads_per_node: usize,
    /// Requests each client thread issues.
    pub requests_per_thread: usize,
    /// Shared prompt-pool size (10 in the headline configuration).
    pub prompts: usize,
    /// Vnodes per node on the ring.
    pub replicas: usize,
}

impl Default for EdgeClusterConfig {
    fn default() -> EdgeClusterConfig {
        EdgeClusterConfig {
            node_counts: vec![1, 2, 4],
            threads_per_node: 2,
            requests_per_thread: 10,
            prompts: 10,
            replicas: DEFAULT_VNODES,
        }
    }
}

/// One node-count's measurement.
#[derive(Debug, Clone)]
pub struct EdgeSample {
    /// Cluster size.
    pub nodes: usize,
    /// Requests issued (= nodes × threads_per_node × requests_per_thread).
    pub requests: u64,
    /// Generations across every node's engine — exactly `prompts` when
    /// global single-flight holds.
    pub generations: u64,
    /// Same-node coalesces + cache hits (engine level, summed).
    pub coalesced: u64,
    /// Peer cache-fills performed by entry nodes.
    pub peer_fills: u64,
    /// Requests answered straight from an entry's fill cache.
    pub fill_hits: u64,
    /// Requests the entry served as acting owner.
    pub local: u64,
    /// Requests proxied to a peer acting owner.
    pub routed: u64,
    /// Failover skips observed (0 without chaos).
    pub failovers: u64,
    /// Global cache hit rate: `1 − generations/requests`.
    pub hit_rate: f64,
    /// Most prompts owned by any single node (ring ownership).
    pub max_owned: usize,
    /// Modelled aggregate throughput (deterministic; gated).
    pub modelled_qps: f64,
    /// Measured requests per wall-clock second (never gated).
    pub wall_qps: f64,
    /// Median request latency in ms (wall clock).
    pub p50_ms: f64,
    /// 99th-percentile request latency in ms.
    pub p99_ms: f64,
}

/// The chaos node-kill outcome.
#[derive(Debug, Clone)]
pub struct EdgeChaosOutcome {
    /// Cluster size the scenario ran at.
    pub nodes: usize,
    /// Requests issued.
    pub requests: u64,
    /// Requests that ended in a 200.
    pub completed: u64,
    /// Requests that never produced a 200 — the zero-lost-responses gate.
    pub lost: u64,
    /// Failover skips the router performed around the killed node.
    pub failovers: u64,
    /// Client-level retries absorbed by the retry loop.
    pub retries: u64,
    /// Generations across the cluster (may exceed `prompts`: the acting
    /// owner regenerates what the dead owner's cache held).
    pub generations: u64,
    /// Whether every payload matched the 1-node baseline byte for byte.
    pub byte_identical: bool,
    /// Which node the scenario killed.
    pub killed: String,
}

/// The deterministic half of one E19 row, computed from ring ownership
/// and the cost model alone — no traffic, no clocks. This is what the
/// golden snapshot pins and what `modelled_qps` gates.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelledRow {
    /// Cluster size.
    pub nodes: usize,
    /// Requests the sweep would issue at this size.
    pub requests: u64,
    /// Generations (always `prompts`: global single-flight).
    pub generations: u64,
    /// Global hit rate at this request volume.
    pub hit_rate: f64,
    /// Most prompts owned by one node.
    pub max_owned: usize,
    /// Fewest prompts owned by one node.
    pub min_owned: usize,
    /// Modelled aggregate qps: requests ÷ (max_owned × per-generation
    /// seconds) — the makespan is the busiest owner's generation queue.
    pub modelled_qps: f64,
}

/// The recipe keys the sweep's shared prompt pool hashes under —
/// identical to what the router derives from [`bench_site`]'s pages.
fn prompt_keys(cfg: &EdgeClusterConfig) -> Vec<String> {
    let generator = MediaGenerator::new(profile(DeviceKind::Workstation));
    (0..cfg.prompts)
        .map(|p| {
            recipe_key(&sww_core::cache::Recipe {
                prompt: format!("bench prompt {p} distant headland"),
                model: generator.image_model(),
                width: 64,
                height: 64,
                steps: generator.inference_steps(),
            })
        })
        .collect()
}

/// Seconds the cost model charges for one 64×64 bench generation on the
/// serving device.
fn generation_seconds() -> f64 {
    let generator = MediaGenerator::new(profile(DeviceKind::Workstation));
    cost::image_generation_time(
        generator.image_model(),
        &profile(DeviceKind::Workstation),
        64,
        64,
        generator.inference_steps(),
    )
    .expect("the bench model runs on a workstation")
}

/// The ring an `n`-node cluster builds (node ids follow the router's
/// `n0..n{N-1}` join naming).
fn cluster_ring(cfg: &EdgeClusterConfig, n: usize) -> HashRing {
    HashRing::with_nodes(cfg.replicas, (0..n).map(|i| format!("n{i}")))
}

/// Compute the deterministic rows for every node count in the sweep.
pub fn modelled_rows(cfg: &EdgeClusterConfig) -> Vec<ModelledRow> {
    let keys = prompt_keys(cfg);
    let gen_s = generation_seconds();
    cfg.node_counts
        .iter()
        .map(|&n| {
            let ring = cluster_ring(cfg, n);
            let ownership = ring.ownership(&keys);
            let max_owned = ownership.values().copied().max().unwrap_or(0);
            let min_owned = ownership.values().copied().min().unwrap_or(0);
            let requests = (n * cfg.threads_per_node * cfg.requests_per_thread) as u64;
            let makespan = max_owned as f64 * gen_s;
            ModelledRow {
                nodes: n,
                requests,
                generations: cfg.prompts as u64,
                hit_rate: 1.0 - cfg.prompts as f64 / requests as f64,
                max_owned,
                min_owned,
                modelled_qps: requests as f64 / makespan.max(1e-9),
            }
        })
        .collect()
}

fn edge_router(cfg: &EdgeClusterConfig, nodes: usize) -> EdgeRouter {
    EdgeRouter::new(
        EdgeConfig {
            nodes,
            replicas: cfg.replicas,
            ..EdgeConfig::default()
        },
        bench_site(cfg.prompts),
        |site| {
            GenerativeServer::from_config(ServerConfig {
                site,
                ..ServerConfig::default()
            })
        },
    )
}

/// Drive the cluster with naive clients; returns per-request latencies
/// in ms and the count of client-level retries.
fn drive(
    router: &EdgeRouter,
    nodes: usize,
    threads_per_node: usize,
    requests_per_thread: usize,
    prompts: usize,
) -> (Vec<f64>, u64) {
    let threads = nodes * threads_per_node;
    let retries = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::with_capacity(threads);
    for t in 0..threads {
        let router = router.clone();
        let retries = Arc::clone(&retries);
        handles.push(std::thread::spawn(move || {
            let mut latencies = Vec::with_capacity(requests_per_thread);
            for r in 0..requests_per_thread {
                let p = (t + r) % prompts;
                let req = Request::get(format!("/page/{p}"));
                let t0 = Instant::now();
                // Bounded retry: chaos 5xx (including a response lost to
                // a mid-flight kill) is retried; persistent failure
                // surfaces as a lost response in the caller's audit.
                for attempt in 0..10 {
                    let resp = router.handle(t % nodes.max(1), GenAbility::none(), &req);
                    if resp.status == 200 {
                        break;
                    }
                    retries.fetch_add(1, Ordering::Relaxed);
                    if attempt == 9 {
                        return (latencies, false);
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                latencies.push(t0.elapsed().as_secs_f64() * 1e3);
            }
            (latencies, true)
        }));
    }
    let mut all = Vec::new();
    for handle in handles {
        let (latencies, _complete) = handle.join().expect("client thread");
        all.extend(latencies);
    }
    (all, retries.load(Ordering::Relaxed))
}

/// Run the sweep. The caller may install a chaos spec first (`sww
/// bench-cluster --chaos`); the sweep itself injects nothing.
pub fn run(cfg: &EdgeClusterConfig) -> Vec<EdgeSample> {
    let modelled = modelled_rows(cfg);
    cfg.node_counts
        .iter()
        .zip(modelled)
        .map(|(&n, row)| {
            let router = edge_router(cfg, n);
            let start = Instant::now();
            let (mut latencies, _retries) = drive(
                &router,
                n,
                cfg.threads_per_node,
                cfg.requests_per_thread,
                cfg.prompts,
            );
            let elapsed = start.elapsed().as_secs_f64();
            latencies.sort_by(|a, b| a.total_cmp(b));
            let nodes = router.nodes();
            let generations: u64 = nodes
                .iter()
                .map(|n| n.server().engine().generations())
                .sum();
            // `coalesced()` already folds shard-cache hits in with
            // in-flight joins: every amortized request, however it won.
            let coalesced: u64 = nodes.iter().map(|n| n.server().engine().coalesced()).sum();
            let stats: Vec<_> = nodes.iter().map(|n| n.stats()).collect();
            let requests = row.requests;
            EdgeSample {
                nodes: n,
                requests,
                generations,
                coalesced,
                peer_fills: stats.iter().map(|s| s.fills).sum(),
                fill_hits: stats.iter().map(|s| s.fill_hits).sum(),
                local: stats.iter().map(|s| s.local_media).sum(),
                routed: stats.iter().map(|s| s.peer_serves).sum(),
                failovers: stats.iter().map(|s| s.failovers).sum(),
                hit_rate: 1.0 - generations as f64 / requests as f64,
                max_owned: row.max_owned,
                modelled_qps: row.modelled_qps,
                wall_qps: requests as f64 / elapsed.max(1e-9),
                p50_ms: percentile_ms(&latencies, 50.0),
                p99_ms: percentile_ms(&latencies, 99.0),
            }
        })
        .collect()
}

/// The chaos node-kill scenario: run a 3-node cluster under client load,
/// kill the busiest owner mid-run, and audit the outcome against a
/// 1-node baseline.
pub fn chaos_kill(cfg: &EdgeClusterConfig) -> EdgeChaosOutcome {
    let nodes = 3usize;
    // 1-node baseline bodies: generation is deterministic in the recipe,
    // so these are the ground truth for byte-identity.
    let baseline = edge_router(cfg, 1);
    let baseline_bodies: Vec<Vec<u8>> = (0..cfg.prompts)
        .map(|p| {
            let resp = baseline.handle(0, GenAbility::none(), &Request::get(format!("/page/{p}")));
            assert_eq!(resp.status, 200, "baseline GET /page/{p}");
            resp.body.to_vec()
        })
        .collect();

    let router = edge_router(cfg, nodes);
    // Kill the node that owns the most prompts — the worst case for
    // failover volume.
    let keys = prompt_keys(cfg);
    let ownership = router.ring().ownership(&keys);
    let victim = ownership
        .iter()
        .max_by_key(|(id, count)| (**count, std::cmp::Reverse(id.as_str())))
        .map(|(id, _)| id.clone())
        .expect("cluster has nodes");
    {
        let router = router.clone();
        let victim = victim.clone();
        std::thread::spawn(move || {
            // Land the kill mid-run: after the first flights have
            // started (the latency chaos the caller installs widens the
            // window), not before the run begins.
            std::thread::sleep(std::time::Duration::from_millis(15));
            router.kill(&victim);
        });
    }
    let threads = nodes * cfg.threads_per_node;
    let per_thread = cfg.requests_per_thread;
    let completed = Arc::new(AtomicU64::new(0));
    let lost = Arc::new(AtomicU64::new(0));
    let retries = Arc::new(AtomicU64::new(0));
    let mismatched = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::with_capacity(threads);
    for t in 0..threads {
        let router = router.clone();
        let completed = Arc::clone(&completed);
        let lost = Arc::clone(&lost);
        let retries = Arc::clone(&retries);
        let mismatched = Arc::clone(&mismatched);
        let baseline_bodies = baseline_bodies.clone();
        handles.push(std::thread::spawn(move || {
            for r in 0..per_thread {
                let p = (t + r) % baseline_bodies.len();
                let req = Request::get(format!("/page/{p}"));
                let mut done = false;
                for attempt in 0..20 {
                    // On retry, reconnect through the next edge node —
                    // a dead *entry* answers 503 until it is revived, so
                    // the client rotates exactly as a real one would
                    // re-resolve to a healthy PoP.
                    let resp = router.handle((t + attempt) % 3, GenAbility::none(), &req);
                    if resp.status == 200 {
                        if resp.body.as_ref() != baseline_bodies[p].as_slice() {
                            mismatched.fetch_add(1, Ordering::Relaxed);
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                        done = true;
                        break;
                    }
                    retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                if !done {
                    lost.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    for handle in handles {
        handle.join().expect("chaos client thread");
    }
    let generations: u64 = router
        .nodes()
        .iter()
        .map(|n| n.server().engine().generations())
        .sum();
    let failovers: u64 = router.nodes().iter().map(|n| n.stats().failovers).sum();
    let requests = (threads * cfg.requests_per_thread) as u64;
    EdgeChaosOutcome {
        nodes,
        requests,
        completed: completed.load(Ordering::Relaxed),
        lost: lost.load(Ordering::Relaxed),
        failovers,
        retries: retries.load(Ordering::Relaxed),
        generations,
        byte_identical: mismatched.load(Ordering::Relaxed) == 0,
        killed: victim,
    }
}

/// Render the sweep as the E19 table.
pub fn table(cfg: &EdgeClusterConfig, samples: &[EdgeSample]) -> Table {
    let mut t = Table::new(
        format!(
            "E19 — Edge cluster scaling ({} prompts, {} threads/node x {} reqs)",
            cfg.prompts, cfg.threads_per_node, cfg.requests_per_thread
        ),
        &[
            "Nodes",
            "Requests",
            "Gen",
            "Hit rate",
            "Fills",
            "Fill hits",
            "Routed",
            "Local",
            "Modelled qps",
            "Wall qps",
            "p50/p99 ms",
        ],
    );
    for s in samples {
        t.row([
            s.nodes.to_string(),
            s.requests.to_string(),
            s.generations.to_string(),
            format!("{:.3}", s.hit_rate),
            s.peer_fills.to_string(),
            s.fill_hits.to_string(),
            s.routed.to_string(),
            s.local.to_string(),
            format!("{:.2}", s.modelled_qps),
            format!("{:.1}", s.wall_qps),
            format!("{:.1}/{:.1}", s.p50_ms, s.p99_ms),
        ]);
    }
    t
}

/// Render the deterministic rows — the golden-snapshot surface (no
/// wall-clock columns, nothing host-shaped).
pub fn modelled_table(cfg: &EdgeClusterConfig) -> Table {
    let mut t = Table::new(
        format!(
            "E19 (modelled) — Edge cluster scaling ({} prompts, {} threads/node x {} reqs)",
            cfg.prompts, cfg.threads_per_node, cfg.requests_per_thread
        ),
        &[
            "Nodes",
            "Requests",
            "Gen",
            "Global hit rate",
            "Owned max/min",
            "Modelled qps",
        ],
    );
    for row in modelled_rows(cfg) {
        t.row([
            row.nodes.to_string(),
            row.requests.to_string(),
            row.generations.to_string(),
            format!("{:.3}", row.hit_rate),
            format!("{}/{}", row.max_owned, row.min_owned),
            format!("{:.2}", row.modelled_qps),
        ]);
    }
    t
}

/// Render the chaos outcome as a table.
pub fn chaos_table(outcome: &EdgeChaosOutcome) -> Table {
    let mut t = Table::new(
        format!(
            "E19 chaos — node-kill at {} nodes (killed {})",
            outcome.nodes, outcome.killed
        ),
        &[
            "Requests",
            "Completed",
            "Lost",
            "Failovers",
            "Retries",
            "Gen",
            "Bytes identical",
        ],
    );
    t.row([
        outcome.requests.to_string(),
        outcome.completed.to_string(),
        outcome.lost.to_string(),
        outcome.failovers.to_string(),
        outcome.retries.to_string(),
        outcome.generations.to_string(),
        outcome.byte_identical.to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EdgeClusterConfig {
        EdgeClusterConfig {
            node_counts: vec![1, 2, 4],
            threads_per_node: 2,
            requests_per_thread: 5,
            prompts: 6,
            replicas: DEFAULT_VNODES,
        }
    }

    #[test]
    fn modelled_hit_rate_and_qps_strictly_increase_with_nodes() {
        let rows = modelled_rows(&EdgeClusterConfig::default());
        assert_eq!(rows.len(), 3);
        for pair in rows.windows(2) {
            assert!(
                pair[1].hit_rate > pair[0].hit_rate,
                "hit rate must strictly increase: {pair:?}"
            );
            assert!(
                pair[1].modelled_qps > pair[0].modelled_qps,
                "modelled qps must strictly increase: {pair:?}"
            );
        }
        for row in &rows {
            assert_eq!(row.generations, 10, "global single-flight");
        }
    }

    #[test]
    fn modelled_ownership_matches_the_live_router() {
        // The modelled rows and the live router must agree on who owns
        // what — otherwise the golden numbers describe a different
        // cluster than the one serving.
        let cfg = small();
        let router = edge_router(&cfg, 4);
        let keys = prompt_keys(&cfg);
        let ring = cluster_ring(&cfg, 4);
        for (p, key) in keys.iter().enumerate() {
            assert_eq!(
                router.owner_of(&format!("/page/{p}")).as_deref(),
                ring.owner(key.as_bytes()),
                "prompt {p}"
            );
        }
    }

    #[test]
    fn sweep_generates_each_prompt_exactly_once_per_cluster() {
        let cfg = small();
        let samples = run(&cfg);
        for s in &samples {
            assert_eq!(
                s.generations, cfg.prompts as u64,
                "{} nodes: global single-flight",
                s.nodes
            );
            assert_eq!(s.failovers, 0, "no chaos, no failover");
            // Every request is accounted for: answered from the entry's
            // fill cache, served locally by the acting owner, proxied to
            // a peer, or (multi-item pages aside) nothing else.
            assert_eq!(
                s.fill_hits + s.local + s.routed,
                s.requests,
                "{} nodes: request accounting",
                s.nodes
            );
        }
        // Measured hit rate matches the model's strict increase.
        for pair in samples.windows(2) {
            assert!(pair[1].hit_rate > pair[0].hit_rate, "{pair:?}");
        }
    }

    #[test]
    fn chaos_kill_loses_nothing_and_keeps_bytes_identical() {
        let _serial = super::super::POOL_SERIAL
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let spec = sww_core::ChaosSpec::parse("seed=7,engine.generate=latency:1.0:10")
            .expect("latency spec");
        sww_core::faults::install(&spec);
        let outcome = chaos_kill(&small());
        sww_core::faults::clear();
        assert_eq!(outcome.lost, 0, "zero lost responses: {outcome:?}");
        assert_eq!(outcome.completed, outcome.requests);
        assert!(outcome.byte_identical, "failover must not change bytes");
        assert!(
            outcome.failovers > 0,
            "the killed owner must have been skipped: {outcome:?}"
        );
    }

    #[test]
    fn tables_render_every_row() {
        let cfg = small();
        let rendered = modelled_table(&cfg).render();
        for n in &cfg.node_counts {
            assert!(rendered.contains(&n.to_string()));
        }
        assert!(rendered.contains("Modelled qps"));
    }
}
