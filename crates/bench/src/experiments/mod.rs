//! The experiment implementations, one per table/figure (DESIGN.md E1–E21)
//! plus the design-choice ablations.

pub mod ablations;
pub mod article;
pub mod batching;
pub mod compression;
pub mod concurrency;
pub mod edge;
pub mod energy;
pub mod fig1;
pub mod kernel;
pub mod mobile;
pub mod models;
pub mod negotiation;
pub mod resilience;
pub mod transport;
pub mod video_cdn;
pub mod wikimedia;
pub mod workload;

/// Serializes tests that read global-registry counter deltas around a
/// pooled server (the worker-pool and batch counters are process-wide,
/// so concurrent pooled tests would pollute each other's deltas).
#[cfg(test)]
pub(crate) static POOL_SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());
