//! The experiment implementations, one per table/figure (DESIGN.md E1–E15)
//! plus the design-choice ablations.

pub mod ablations;
pub mod article;
pub mod compression;
pub mod concurrency;
pub mod energy;
pub mod fig1;
pub mod mobile;
pub mod models;
pub mod negotiation;
pub mod video_cdn;
pub mod wikimedia;
