//! E4–E7 — the §6.3 model-quality experiments: Table 1 (ELO, CLIP,
//! time/step), the inference-step sweep, the image-size sweep, and the
//! text-to-text comparison.

use crate::table::{secs, Table};
use sww_energy::cost;
use sww_energy::device::{profile, DeviceKind};
use sww_genai::diffusion::{DiffusionModel, ImageModelKind};
use sww_genai::metrics::{clip, sbert};
use sww_genai::text::{TextModel, TextModelKind};

/// Prompt set used for CLIP measurements (averages out per-prompt noise).
pub fn clip_prompts() -> [&'static str; 6] {
    [
        "a mountain landscape at sunset with a lake",
        "a dense forest trail in autumn",
        "a sandy beach with turquoise ocean water",
        "storm clouds over a wheat field",
        "a snow covered village at night",
        "rolling green hills under a clear sky",
    ]
}

/// One Table 1 row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Model name as printed.
    pub model: String,
    /// Published arena ELO (calibration data, as in the paper).
    pub elo: u32,
    /// Measured CLIP score at 224², 15 steps.
    pub clip: f64,
    /// Modelled laptop s/step (None for server-only models).
    pub laptop_s_per_step: Option<f64>,
    /// Modelled workstation s/step.
    pub workstation_s_per_step: Option<f64>,
}

/// E4: regenerate Table 1.
pub fn table1() -> Vec<Table1Row> {
    let laptop = profile(DeviceKind::Laptop);
    let ws = profile(DeviceKind::Workstation);
    ImageModelKind::table1()
        .into_iter()
        .map(|kind| {
            let model = DiffusionModel::new(kind);
            let clip_mean = clip_prompts()
                .iter()
                .map(|p| clip::clip_score(&model.generate(p, 224, 224, 15), p))
                .sum::<f64>()
                / clip_prompts().len() as f64;
            Table1Row {
                model: model.profile().name.to_string(),
                elo: model.profile().elo,
                clip: clip_mean,
                laptop_s_per_step: cost::time_per_step(kind, &laptop),
                workstation_s_per_step: cost::time_per_step(kind, &ws),
            }
        })
        .collect()
}

/// Render Table 1.
pub fn table1_table(rows: &[Table1Row]) -> Table {
    let mut t = Table::new(
        "E4 — Table 1: ELO & CLIP scores with time per step (224², 15 steps)",
        &[
            "Model",
            "ELO",
            "CLIP (paper)",
            "CLIP (measured)",
            "Laptop t/step",
            "WS t/step",
        ],
    );
    let paper_clip = [0.19, 0.27, 0.27, 0.32];
    for (row, pc) in rows.iter().zip(paper_clip) {
        t.row([
            row.model.clone(),
            row.elo.to_string(),
            format!("{pc:.2}"),
            format!("{:.3}", row.clip),
            row.laptop_s_per_step
                .map_or("-".into(), |s| format!("{s:.2}s")),
            row.workstation_s_per_step
                .map_or("-".into(), |s| format!("{s:.2}s")),
        ]);
    }
    t
}

/// E5: the inference-step sweep (10→60): CLIP ≈ flat, time linear.
#[derive(Debug, Clone)]
pub struct StepSweepRow {
    /// Step count.
    pub steps: u32,
    /// Measured CLIP at this step count (SD 3 Medium).
    pub clip: f64,
    /// Modelled workstation time at 224².
    pub workstation_s: f64,
}

/// Run the step sweep.
pub fn step_sweep() -> Vec<StepSweepRow> {
    let model = DiffusionModel::new(ImageModelKind::Sd3Medium);
    let ws = profile(DeviceKind::Workstation);
    [10u32, 20, 30, 40, 50, 60]
        .into_iter()
        .map(|steps| {
            let clip_mean = clip_prompts()
                .iter()
                .map(|p| clip::clip_score(&model.generate(p, 224, 224, steps), p))
                .sum::<f64>()
                / clip_prompts().len() as f64;
            StepSweepRow {
                steps,
                clip: clip_mean,
                workstation_s: cost::image_generation_time(
                    ImageModelKind::Sd3Medium,
                    &ws,
                    224,
                    224,
                    steps,
                )
                .expect("local model"),
            }
        })
        .collect()
}

/// Render the step sweep.
pub fn step_sweep_table(rows: &[StepSweepRow]) -> Table {
    let mut t = Table::new(
        "E5 — Step sweep 10→60 (§6.3.1): CLIP flat, time linear",
        &["Steps", "CLIP", "WS time"],
    );
    for r in rows {
        t.row([
            r.steps.to_string(),
            format!("{:.3}", r.clip),
            secs(r.workstation_s),
        ]);
    }
    t
}

/// E6: image-size sweep across devices.
#[derive(Debug, Clone)]
pub struct SizeSweepRow {
    /// Image side in pixels.
    pub side: u32,
    /// Laptop generation time (SD 3, 15 steps).
    pub laptop_s: f64,
    /// Workstation generation time.
    pub workstation_s: f64,
}

/// Run the size sweep.
pub fn size_sweep() -> Vec<SizeSweepRow> {
    let laptop = profile(DeviceKind::Laptop);
    let ws = profile(DeviceKind::Workstation);
    [256u32, 384, 512, 768, 1024]
        .into_iter()
        .map(|side| SizeSweepRow {
            side,
            laptop_s: cost::image_generation_time(
                ImageModelKind::Sd3Medium,
                &laptop,
                side,
                side,
                15,
            )
            .expect("local model"),
            workstation_s: cost::image_generation_time(
                ImageModelKind::Sd3Medium,
                &ws,
                side,
                side,
                15,
            )
            .expect("local model"),
        })
        .collect()
}

/// Render the size sweep.
pub fn size_sweep_table(rows: &[SizeSweepRow]) -> Table {
    let mut t = Table::new(
        "E6 — Size sweep (§6.3.1): WS ∝ pixels, laptop superlinear at 1024²",
        &["Size", "Laptop", "Workstation", "Laptop/WS"],
    );
    for r in rows {
        t.row([
            format!("{0}x{0}", r.side),
            secs(r.laptop_s),
            secs(r.workstation_s),
            format!("{:.0}x", r.laptop_s / r.workstation_s),
        ]);
    }
    t
}

/// E7: one text-model row.
#[derive(Debug, Clone)]
pub struct TextModelRow {
    /// Model name.
    pub model: String,
    /// Mean measured SBERT over the sample set.
    pub sbert_mean: f64,
    /// Mean |overshoot| (%).
    pub overshoot_mean_pct: f64,
    /// 25th percentile |overshoot| (%).
    pub overshoot_p25_pct: f64,
    /// 75th percentile |overshoot| (%).
    pub overshoot_p75_pct: f64,
    /// Workstation time range over 50–250 words.
    pub ws_range: (f64, f64),
    /// Laptop time range.
    pub laptop_range: (f64, f64),
}

/// Run the text-model comparison. `samples` controls the overshoot
/// distribution resolution.
pub fn text_models(samples: usize) -> Vec<TextModelRow> {
    let laptop = profile(DeviceKind::Laptop);
    let ws = profile(DeviceKind::Workstation);
    let base_bullets = [
        "trail climbs forest pines morning light".to_string(),
        "ridge view valley snow peaks river".to_string(),
        "route marked moderate fitness boots scree".to_string(),
    ];
    TextModelKind::all()
        .into_iter()
        .map(|kind| {
            let model = TextModel::new(kind);
            let mut sberts = Vec::new();
            let mut overshoots = Vec::new();
            for i in 0..samples {
                let mut bullets = base_bullets.to_vec();
                bullets.push(format!("sample variation {i}"));
                let target = 50 + (i % 5) * 50;
                let text = model.expand(&bullets, target);
                sberts.push(sbert::sbert_score(&bullets, &text));
                overshoots
                    .push(sww_genai::text::word_length_overshoot(&text, target).abs() * 100.0);
            }
            overshoots.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            let pct = |v: &[f64], p: f64| v[((v.len() - 1) as f64 * p) as usize];
            let times = |dev| {
                let ts: Vec<f64> = [50, 100, 150, 200, 250]
                    .iter()
                    .map(|&w| cost::text_generation_time(kind, dev, w))
                    .collect();
                (
                    ts.iter().cloned().fold(f64::MAX, f64::min),
                    ts.iter().cloned().fold(f64::MIN, f64::max),
                )
            };
            TextModelRow {
                model: model.profile().name.to_string(),
                sbert_mean: mean(&sberts),
                overshoot_mean_pct: mean(&overshoots),
                overshoot_p25_pct: pct(&overshoots, 0.25),
                overshoot_p75_pct: pct(&overshoots, 0.75),
                ws_range: times(&ws),
                laptop_range: times(&laptop),
            }
        })
        .collect()
}

/// Render the text-model comparison.
pub fn text_models_table(rows: &[TextModelRow]) -> Table {
    let mut t = Table::new(
        "E7 — Text-to-text models (§6.3.2): SBERT 0.82–0.91, overshoot ≤20%, WS 6.98–14.33s / laptop 16.06–34.04s",
        &["Model", "SBERT", "|overshoot| mean/p25/p75", "WS time", "Laptop time"],
    );
    for r in rows {
        t.row([
            r.model.clone(),
            format!("{:.3}", r.sbert_mean),
            format!(
                "{:.1}% / {:.1}% / {:.1}%",
                r.overshoot_mean_pct, r.overshoot_p25_pct, r.overshoot_p75_pct
            ),
            format!("{}–{}", secs(r.ws_range.0), secs(r.ws_range.1)),
            format!("{}–{}", secs(r.laptop_range.0), secs(r.laptop_range.1)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_ordering_and_anchors() {
        let rows = table1();
        assert_eq!(rows.len(), 4);
        // ELO: SD 2.1 far below the rest (paper: 688 vs 895/927/923).
        assert!(rows[0].elo < rows[1].elo - 150);
        // CLIP ordering: SD2.1 < SD3 ≈ SD3.5 < DALLE.
        assert!(rows[0].clip < rows[1].clip);
        assert!((rows[1].clip - rows[2].clip).abs() < 0.04);
        assert!(rows[2].clip < rows[3].clip);
        // Time/step anchors.
        assert!((rows[0].laptop_s_per_step.unwrap() - 0.18).abs() < 0.01);
        assert!((rows[2].workstation_s_per_step.unwrap() - 0.06).abs() < 0.005);
        assert!(rows[3].laptop_s_per_step.is_none(), "DALLE is server-only");
    }

    #[test]
    fn step_sweep_flat_clip_linear_time() {
        let rows = step_sweep();
        let clip_spread = rows.iter().map(|r| r.clip).fold(f64::MIN, f64::max)
            - rows.iter().map(|r| r.clip).fold(f64::MAX, f64::min);
        assert!(
            clip_spread < 0.08,
            "CLIP spread {clip_spread:.3} should be flat"
        );
        // Time at 60 steps = 6× time at 10 steps.
        let t10 = rows[0].workstation_s;
        let t60 = rows.last().unwrap().workstation_s;
        assert!((t60 / t10 - 6.0).abs() < 1e-6);
    }

    #[test]
    fn size_sweep_crossover_shapes() {
        let rows = size_sweep();
        let r256 = &rows[0];
        let r1024 = rows.last().unwrap();
        // Laptop/WS gap widens dramatically with size (7x → 50x).
        let small_gap = r256.laptop_s / r256.workstation_s;
        let large_gap = r1024.laptop_s / r1024.workstation_s;
        assert!(
            large_gap > small_gap * 4.0,
            "{small_gap:.1} → {large_gap:.1}"
        );
        assert!((r1024.laptop_s - 310.0).abs() < 1.0, "paper anchor");
    }

    #[test]
    fn text_models_match_paper_bands() {
        let rows = text_models(20);
        for r in &rows {
            assert!(
                (0.78..=0.95).contains(&r.sbert_mean),
                "{}: {}",
                r.model,
                r.sbert_mean
            );
            assert!(r.overshoot_p75_pct <= 21.0);
            assert!(r.ws_range.1 < 17.0);
            assert!(r.laptop_range.1 < 45.0);
        }
        // The 8B model of choice beats the 1.5B on both quality and
        // length discipline (paper's stated reason for choosing it).
        let r15 = rows.iter().find(|r| r.model.contains("1.5B")).unwrap();
        let r8 = rows.iter().find(|r| r.model.contains("8B")).unwrap();
        assert!(r8.sbert_mean > r15.sbert_mean);
        assert!(r8.overshoot_mean_pct < r15.overshoot_mean_pct);
    }
}
