//! Ablations of the design choices DESIGN.md calls out: the preloaded
//! pipeline (§4.1), HPACK Huffman coding, upscale-vs-generate (§2.2), and
//! metadata-size sensitivity.

use crate::table::Table;
use std::time::Instant;
use sww_genai::image::codec;
use sww_genai::upscale::upscale;
use sww_genai::{DiffusionModel, GenerationPipeline, ImageModelKind};
use sww_http2::hpack::{Decoder, Encoder, HeaderField};

/// Preload ablation result: wall-clock cost of reusing one pipeline vs
/// constructing a fresh one per request (the §4.1 rationale).
#[derive(Debug, Clone)]
pub struct PreloadAblation {
    /// Requests timed.
    pub requests: u32,
    /// Seconds with a single preloaded pipeline.
    pub preloaded_s: f64,
    /// Seconds constructing the pipeline per request.
    pub per_request_s: f64,
}

/// Run the preload ablation (real wall-clock on this machine).
pub fn preload(requests: u32) -> PreloadAblation {
    let prompts: Vec<String> = (0..requests).map(|i| format!("scene number {i}")).collect();
    // Warm-up: pay one-time global initialization (lazily built tables)
    // outside both timed sections.
    let mut warm = GenerationPipeline::preload_default();
    let _ = warm.generate_image("warmup", 64, 64, 10);
    let _ = warm.generate_text(&["warmup".to_string()], 40);
    let start = Instant::now();
    let mut pipeline = GenerationPipeline::preload_default();
    for p in &prompts {
        let _ = pipeline.generate_image(p, 64, 64, 10);
        let _ = pipeline.generate_text(std::slice::from_ref(p), 40);
    }
    let preloaded_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    for p in &prompts {
        // The §4.1 anti-pattern: "repeatedly deleted and reloaded within
        // the media generator every time it is invoked".
        let mut fresh = GenerationPipeline::preload_default();
        let _ = fresh.generate_image(p, 64, 64, 10);
        let _ = fresh.generate_text(std::slice::from_ref(p), 40);
    }
    let per_request_s = start.elapsed().as_secs_f64();
    PreloadAblation {
        requests,
        preloaded_s,
        per_request_s,
    }
}

/// Huffman ablation: bytes of a prompt-heavy header block with and
/// without HPACK string compression.
#[derive(Debug, Clone)]
pub struct HuffmanAblation {
    /// Block bytes with Huffman coding.
    pub with_huffman: usize,
    /// Block bytes without.
    pub without_huffman: usize,
}

/// Run the Huffman ablation.
pub fn huffman() -> HuffmanAblation {
    let headers: Vec<HeaderField> = vec![
        HeaderField::new(":method", "GET"),
        HeaderField::new(
            ":path",
            "/wiki/landscape-search-results?query=landscape&page=2",
        ),
        HeaderField::new(
            "user-agent",
            "sww-generative-client/0.1 (prototype evaluation)",
        ),
        HeaderField::new("accept", "text/html,application/xhtml+xml;q=0.9,*/*;q=0.8"),
        HeaderField::new("accept-language", "en-GB,en;q=0.7"),
    ];
    let mut enc_on = Encoder::new();
    enc_on.use_huffman = true;
    let mut enc_off = Encoder::new();
    enc_off.use_huffman = false;
    let block_on = enc_on.encode(&headers);
    let block_off = enc_off.encode(&headers);
    // Sanity: both blocks decode to the same field list.
    assert_eq!(Decoder::new().decode(&block_on).unwrap(), headers);
    assert_eq!(Decoder::new().decode(&block_off).unwrap(), headers);
    HuffmanAblation {
        with_huffman: block_on.len(),
        without_huffman: block_off.len(),
    }
}

/// Upscale-vs-generate ablation (§2.2): shipping a quarter-size unique
/// image and upscaling client-side vs shipping the full-size file.
#[derive(Debug, Clone)]
pub struct UpscaleAblation {
    /// Bytes of the full-resolution encoded image.
    pub full_bytes: usize,
    /// Bytes of the quarter-size image actually shipped.
    pub shipped_bytes: usize,
    /// Transmission saving factor.
    pub savings: f64,
    /// Mean absolute pixel error of the upscaled image vs the original.
    pub upscale_error: f64,
}

/// Run the upscale ablation.
pub fn upscale_vs_ship() -> UpscaleAblation {
    let model = DiffusionModel::new(ImageModelKind::Dalle3);
    let original = model.generate(
        "a unique holiday photograph of a mountain summit",
        512,
        512,
        15,
    );
    let full_bytes = codec::encode(&original, 70).len();
    // Server downsizes to 256² (simulated by regenerating small — the
    // shipped artifact), client upscales 2×.
    let small = model.generate(
        "a unique holiday photograph of a mountain summit",
        256,
        256,
        15,
    );
    let shipped_bytes = codec::encode(&small, 70).len();
    let upscaled = upscale(&small, 2);
    let upscale_error = codec::mean_abs_error(&original, &upscaled);
    UpscaleAblation {
        full_bytes,
        shipped_bytes,
        savings: full_bytes as f64 / shipped_bytes as f64,
        upscale_error,
    }
}

/// Metadata-size sensitivity: compression ratio of the large image as the
/// prompt length grows.
pub fn metadata_sensitivity() -> Vec<(usize, f64)> {
    let media_bytes = 131_072f64;
    [50usize, 120, 262, 400, 800, 1600]
        .into_iter()
        .map(|prompt_len| {
            let metadata = sww_json::to_string(&sww_json::Value::object([
                (
                    "prompt",
                    sww_json::Value::from("p".repeat(prompt_len).as_str()),
                ),
                ("name", sww_json::Value::from("image.jpg")),
                ("width", sww_json::Value::from(1024i64)),
                ("height", sww_json::Value::from(1024i64)),
            ]))
            .len();
            (prompt_len, media_bytes / metadata as f64)
        })
        .collect()
}

/// Render all ablations.
pub fn table(pre: &PreloadAblation, huff: &HuffmanAblation, up: &UpscaleAblation) -> Table {
    let mut t = Table::new("Ablations (design choices)", &["Ablation", "Result"]);
    t.row([
        "preloaded pipeline (§4.1)".to_string(),
        format!(
            "{} requests: {:.3}s reused vs {:.3}s per-request ({:.1}x)",
            pre.requests,
            pre.preloaded_s,
            pre.per_request_s,
            pre.per_request_s / pre.preloaded_s.max(1e-9)
        ),
    ]);
    t.row([
        "HPACK huffman".to_string(),
        format!(
            "{}B vs {}B raw ({:.0}% smaller)",
            huff.with_huffman,
            huff.without_huffman,
            100.0 * (1.0 - huff.with_huffman as f64 / huff.without_huffman as f64)
        ),
    ]);
    t.row([
        "upscale unique content (§2.2)".to_string(),
        format!(
            "ship {}B instead of {}B ({:.1}x), upscale error {:.1}",
            up.shipped_bytes, up.full_bytes, up.savings, up.upscale_error
        ),
    ]);
    for (len, ratio) in metadata_sensitivity() {
        t.row([
            format!("metadata sensitivity: {len}B prompt"),
            format!("large-image compression {ratio:.0}x"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preload_wins() {
        // Wall-clock comparison with a thin margin (pipeline construction
        // overhead): keep the thread-pool-heavy experiments in this
        // binary from running concurrently, and retry a bounded number of
        // times so one noisy scheduling slice cannot flip the verdict.
        let _serial = super::super::POOL_SERIAL
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let mut r = preload(4);
        for _ in 0..2 {
            if r.per_request_s > r.preloaded_s {
                break;
            }
            r = preload(4);
        }
        assert!(
            r.per_request_s > r.preloaded_s,
            "per-request {:.4}s must exceed preloaded {:.4}s",
            r.per_request_s,
            r.preloaded_s
        );
    }

    #[test]
    fn huffman_compresses_headers() {
        let r = huffman();
        assert!(r.with_huffman < r.without_huffman);
    }

    #[test]
    fn upscaling_saves_transmission() {
        let r = upscale_vs_ship();
        assert!(r.savings > 2.0, "savings {:.2}", r.savings);
        // The upscaled image is a usable approximation, not garbage.
        assert!(r.upscale_error < 60.0, "error {:.1}", r.upscale_error);
    }

    #[test]
    fn longer_prompts_cost_ratio() {
        let rows = metadata_sensitivity();
        for pair in rows.windows(2) {
            assert!(pair[0].1 > pair[1].1, "ratio must fall as prompts grow");
        }
        // Even at 1600 B prompts the large image still compresses >50×.
        assert!(rows.last().unwrap().1 > 50.0);
    }
}
