//! E15 — concurrent serving engine: throughput vs. worker count.
//!
//! Naive (non-generative) sessions drive server-side generation from many
//! threads at once, so every request exercises the sharded cache and the
//! single-flight coalescer. The sweep holds the workload fixed (threads ×
//! requests over a small set of unique prompts) and varies only the worker
//! pool size, reporting throughput plus the engine's amortization
//! counters: generation count (must equal the number of unique prompts at
//! every pool size) and coalesced requests (everyone else).
//!
//! When a chaos spec is installed (`sww_core::faults` — e.g. via
//! `sww bench-concurrent --chaos`), the sweep also reports faults
//! injected during each sample, and the client loop treats injected
//! `500`/`502` like saturation `503`s: retry until the request lands.
//! With chaos off the fault column reads zero and behaviour is
//! identical to the pre-fault-layer bench.

use crate::table::Table;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use sww_core::{GenAbility, GenerativeServer, SiteContent};
use sww_html::gencontent;
use sww_http2::Request;

/// One worker-count sample of the sweep.
#[derive(Debug, Clone)]
pub struct ConcurrencySample {
    /// Pool size (0 = inline handling, no pool).
    pub workers: usize,
    /// Requests completed per wall-clock second.
    pub throughput_rps: f64,
    /// Generations actually run (single-flight: one per unique prompt).
    pub generations: u64,
    /// Requests amortized onto another request's generation.
    pub coalesced: u64,
    /// Transient failures absorbed by client retry: saturation 503s,
    /// plus injected-fault 500/502s when chaos is installed.
    pub rejected: u64,
    /// Faults injected by the chaos layer during this sample (0 when
    /// chaos is off).
    pub faults: u64,
    /// Jobs the worker pool executed during this sample (0 for inline
    /// handling). The pool counter lives in the **global** metrics
    /// registry, so this is a before/after delta — reading the raw
    /// counter would make later sweep rows cumulative.
    pub pool_jobs: u64,
    /// Requests shed at admission during this sample (global
    /// `sww_shed_total` delta, summed over reasons).
    pub shed: u64,
    /// Cancellations that took effect during this sample (global
    /// `sww_cancelled_total` delta, summed over sites).
    pub cancelled: u64,
    /// Deadline misses answered `504` during this sample (global
    /// `sww_deadline_exceeded_total` delta).
    pub deadline_misses: u64,
    /// Median request latency in milliseconds (successful attempt only —
    /// a retried request's clock restarts with its fresh budget).
    pub p50_ms: f64,
    /// 99th-percentile request latency in milliseconds.
    pub p99_ms: f64,
}

/// Sweep configuration.
#[derive(Debug, Clone, Copy)]
pub struct ConcurrencyConfig {
    /// Client threads issuing requests.
    pub threads: usize,
    /// Requests per thread.
    pub requests: usize,
    /// Unique prompts (= unique pages) in the site.
    pub prompts: usize,
    /// Batch-scheduler cap passed to the server (1 disables batching,
    /// preserving the original E15 configuration exactly).
    pub batch_max: usize,
    /// Batch-wait deadline in milliseconds (ignored when `batch_max`
    /// is 1).
    pub batch_wait_ms: u64,
    /// Per-request deadline budget in milliseconds (`None` preserves the
    /// original unbounded behaviour). With a deadline set, `504`s and
    /// admission sheds join the retryable set.
    pub deadline_ms: Option<u64>,
    /// Circuit-breaker tuning as `(failure_threshold, cooldown_ms)`;
    /// `None` leaves the breaker off.
    pub breaker: Option<(u32, u64)>,
    /// Data-parallel denoise lanes inside each batched kernel pass
    /// (1 = scalar kernel; ignored when `batch_max` is 1).
    pub kernel_tiles: usize,
}

impl Default for ConcurrencyConfig {
    fn default() -> ConcurrencyConfig {
        ConcurrencyConfig {
            threads: 8,
            requests: 50,
            prompts: 10,
            batch_max: 1,
            batch_wait_ms: 2,
            deadline_ms: None,
            breaker: None,
            kernel_tiles: 1,
        }
    }
}

/// Percentile over a latency set, by nearest-rank on the sorted samples.
/// Shared with the E17 kernel sweep. Returns 0 for an empty set.
pub(crate) fn percentile_ms(sorted: &[f64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The sweep workload: one page per unique prompt, each carrying one
/// 64×64 generated-content image. Shared with the E16 batching sweep.
pub(crate) fn bench_site(prompts: usize) -> SiteContent {
    let mut site = SiteContent::new();
    for p in 0..prompts {
        site.add_page(
            format!("/page/{p}"),
            format!(
                "<html><body>{}</body></html>",
                gencontent::image_div(
                    &format!("bench prompt {p} distant headland"),
                    &format!("bench{p}.jpg"),
                    64,
                    64,
                )
            ),
        );
    }
    site
}

/// The pool's executed-jobs counter from the global metrics registry.
fn pool_jobs_executed() -> u64 {
    sww_obs::counter("sww_pool_jobs_total", &[("result", "executed")]).get()
}

/// Lifecycle counters from the global registry: `(shed, cancelled,
/// deadline_misses)`. Labelled series are summed over their documented
/// label values. Shared with the E16 sweep.
pub(crate) fn lifecycle_counters() -> (u64, u64, u64) {
    let shed = ["deadline", "breaker", "draining"]
        .iter()
        .map(|r| sww_obs::counter("sww_shed_total", &[("reason", r)]).get())
        .sum();
    let cancelled = [
        "engine.wait",
        "engine.handoff",
        "denoise",
        "batch.wait",
        "pool.queue",
    ]
    .iter()
    .map(|s| sww_obs::counter("sww_cancelled_total", &[("site", s)]).get())
    .sum();
    let misses = sww_obs::counter("sww_deadline_exceeded_total", &[]).get();
    (shed, cancelled, misses)
}

/// Run one worker-count sample. Every reported number is **per-sample**:
/// engine counters come from the sample's own fresh server, and
/// global-registry counters (faults, pool jobs, lifecycle) are
/// before/after deltas.
pub fn sample(cfg: ConcurrencyConfig, workers: usize) -> ConcurrencySample {
    let mut builder = GenerativeServer::builder()
        .site(bench_site(cfg.prompts))
        .workers(workers)
        .batch_max(cfg.batch_max)
        .batch_wait(std::time::Duration::from_millis(cfg.batch_wait_ms))
        .kernel_tiles(cfg.kernel_tiles);
    if let Some(ms) = cfg.deadline_ms {
        builder = builder.default_deadline(std::time::Duration::from_millis(ms));
    }
    if let Some((failure_threshold, cooldown_ms)) = cfg.breaker {
        builder = builder.breaker(sww_core::BreakerConfig {
            failure_threshold,
            cooldown: std::time::Duration::from_millis(cooldown_ms),
        });
    }
    let server = builder.build();
    let rejected = AtomicU64::new(0);
    let latencies_ms = Mutex::new(Vec::with_capacity(cfg.threads * cfg.requests));
    let faults_before = sww_core::faults::injected_total();
    let pool_jobs_before = pool_jobs_executed();
    let (shed_before, cancelled_before, misses_before) = lifecycle_counters();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..cfg.threads {
            let session = server.accept(GenAbility::none());
            let rejected = &rejected;
            let latencies_ms = &latencies_ms;
            scope.spawn(move || {
                let mut mine = Vec::with_capacity(cfg.requests);
                for i in 0..cfg.requests {
                    let path = format!("/page/{}", (i + t) % cfg.prompts);
                    loop {
                        let attempt = Instant::now();
                        let resp = session.handle(&Request::get(&path));
                        // 504 joins the retryable set: a missed deadline
                        // is transient — the retry carries a fresh budget.
                        if !matches!(resp.status, 500 | 502 | 503 | 504) {
                            assert_eq!(resp.status, 200, "GET {path}");
                            mine.push(attempt.elapsed().as_secs_f64() * 1e3);
                            break;
                        }
                        rejected.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
                latencies_ms
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .extend(mine);
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let (shed_after, cancelled_after, misses_after) = lifecycle_counters();
    let mut latencies_ms = latencies_ms.into_inner().unwrap_or_else(|e| e.into_inner());
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    ConcurrencySample {
        workers,
        throughput_rps: (cfg.threads * cfg.requests) as f64 / elapsed.max(1e-9),
        generations: server.engine().generations(),
        coalesced: server.engine().coalesced(),
        rejected: rejected.load(Ordering::Relaxed),
        faults: sww_core::faults::injected_total() - faults_before,
        pool_jobs: pool_jobs_executed() - pool_jobs_before,
        shed: shed_after - shed_before,
        cancelled: cancelled_after - cancelled_before,
        deadline_misses: misses_after - misses_before,
        p50_ms: percentile_ms(&latencies_ms, 50.0),
        p99_ms: percentile_ms(&latencies_ms, 99.0),
    }
}

/// Sweep throughput over worker counts (0 = inline baseline).
pub fn run(cfg: ConcurrencyConfig, worker_counts: &[usize]) -> Vec<ConcurrencySample> {
    worker_counts.iter().map(|&w| sample(cfg, w)).collect()
}

/// Render as a table.
pub fn table(cfg: ConcurrencyConfig, samples: &[ConcurrencySample]) -> Table {
    let mut t = Table::new(
        format!(
            "E15 — Concurrent serving: throughput vs. workers \
             ({} threads x {} requests, {} unique prompts)",
            cfg.threads, cfg.requests, cfg.prompts
        ),
        &[
            "Workers",
            "Throughput",
            "p50/p99 ms",
            "Generations",
            "Coalesced",
            "Rejected",
            "Faults",
            "PoolJobs",
            "Shed/Cxl",
            "504s",
        ],
    );
    for s in samples {
        t.row([
            if s.workers == 0 {
                "inline".to_string()
            } else {
                s.workers.to_string()
            },
            format!("{:.0}/s", s.throughput_rps),
            format!("{:.2}/{:.2}", s.p50_ms, s.p99_ms),
            s.generations.to_string(),
            s.coalesced.to_string(),
            s.rejected.to_string(),
            s.faults.to_string(),
            s.pool_jobs.to_string(),
            format!("{}/{}", s.shed, s.cancelled),
            s.deadline_misses.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flight_holds_at_every_pool_size() {
        let _serial = super::super::POOL_SERIAL
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let cfg = ConcurrencyConfig {
            threads: 4,
            requests: 10,
            prompts: 5,
            ..ConcurrencyConfig::default()
        };
        for s in run(cfg, &[0, 2]) {
            // Exactly one generation per unique prompt, regardless of
            // concurrency; everyone else shares.
            assert_eq!(s.generations, cfg.prompts as u64, "workers={}", s.workers);
            assert_eq!(
                s.coalesced,
                (cfg.threads * cfg.requests - cfg.prompts) as u64,
                "workers={}",
                s.workers
            );
        }
    }

    #[test]
    fn table_renders_all_samples() {
        let _serial = super::super::POOL_SERIAL
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let cfg = ConcurrencyConfig {
            threads: 2,
            requests: 5,
            prompts: 2,
            ..ConcurrencyConfig::default()
        };
        let samples = run(cfg, &[0, 1]);
        let t = table(cfg, &samples);
        assert_eq!(t.len(), 2);
        assert!(t.render().contains("inline"));
    }

    /// Regression: sweep rows must be per-sample, not cumulative. The
    /// pool counter lives in the global metrics registry and only grows
    /// across a process, so without the before/after delta every later
    /// row would also carry all earlier rows' jobs.
    #[test]
    fn pool_jobs_are_per_sample_not_cumulative() {
        let _serial = super::super::POOL_SERIAL
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let cfg = ConcurrencyConfig {
            threads: 2,
            requests: 5,
            prompts: 2,
            ..ConcurrencyConfig::default()
        };
        let expected = (cfg.threads * cfg.requests) as u64;
        // Two pooled samples in sequence: each must report exactly its
        // own jobs even though the underlying counter has doubled.
        let first = sample(cfg, 2);
        let second = sample(cfg, 2);
        assert_eq!(first.pool_jobs, expected);
        assert_eq!(
            second.pool_jobs, expected,
            "second row must not be cumulative"
        );
        // Inline handling uses no pool at all.
        assert_eq!(sample(cfg, 0).pool_jobs, 0);
    }
}
