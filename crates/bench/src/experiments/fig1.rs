//! Figure 1 — the paper's before/after HTML division: "Top: HTML div
//! before processing. Bottom: HTML div after processing." The before form
//! carries the goldfish prompt; the after form points at the generated
//! JPEG. This experiment performs the actual transformation through the
//! real parser, generator and rewriter, and returns both forms.

use sww_core::mediagen::{GeneratedMedia, MediaGenerator};
use sww_energy::device::{profile, DeviceKind};
use sww_html::{gencontent, parse, serialize};

/// The two forms of the Figure 1 division plus the measured artifacts.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// The division before processing (prompt form).
    pub before: String,
    /// The division after processing (pointer to the generated file).
    pub after: String,
    /// Encoded size of the generated image.
    pub generated_bytes: usize,
    /// Metadata size of the prompt form.
    pub metadata_bytes: usize,
}

/// Run the Figure 1 transformation.
pub fn run() -> Fig1 {
    let before = gencontent::image_div(
        "A cartoon goldfish swimming in a round glass bowl, bright colors",
        "goldfish.jpg",
        256,
        256,
    );
    let mut doc = parse(&before);
    let item = gencontent::extract(&doc).remove(0);
    let metadata_bytes = item.metadata_size();
    let mut generator = MediaGenerator::new(profile(DeviceKind::Laptop));
    let (media, _) = generator.generate(&item);
    let GeneratedMedia::Image {
        name,
        image,
        encoded,
    } = media
    else {
        unreachable!("figure 1 is an image division");
    };
    gencontent::replace_with_image(
        &mut doc,
        item.node,
        &format!("generated/{name}"),
        image.width(),
        image.height(),
    );
    Fig1 {
        before,
        after: serialize(&doc),
        generated_bytes: encoded.len(),
        metadata_bytes,
    }
}

/// Render the figure as text.
pub fn render(f: &Fig1) -> String {
    format!(
        "## Fig. 1 — HTML div before and after processing (§4.1)\n\
         before ({} B metadata):\n  {}\n\
         after ({} B generated media):\n  {}\n",
        f.metadata_bytes, f.before, f.generated_bytes, f.after
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_transformation_matches_paper() {
        let f = run();
        // Before: the prompt travels in the division.
        assert!(f.before.contains("generated-content"));
        assert!(f.before.contains("cartoon goldfish"));
        // After: a concrete pointer to the generated JPEG, no prompt.
        assert!(f.after.contains(r#"<img src="generated/goldfish.jpg""#));
        assert!(!f.after.contains("generated-content"));
        assert!(!f.after.contains("cartoon goldfish"));
        // The prompt form is far smaller than the media it stands for.
        assert!(f.metadata_bytes < f.generated_bytes / 10);
    }
}
