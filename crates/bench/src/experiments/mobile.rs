//! E14 (extension) — generation on mobile devices (paper §7: "To achieve
//! maximum impact, SWW requires generation on mobile devices. These
//! devices are resource constrained, aimed at low power consumption, and
//! often missing the required hardware acceleration capabilities").
//!
//! The mobile profile models a 2024-class NPU flagship. The experiment
//! reports generation time per media class against the paper's two
//! evaluation machines, and the battery budget: how much of a phone's
//! charge a day of SWW browsing would take today vs with a future fast
//! model — quantifying why the paper ties mobile viability to new
//! accelerators and lighter models.

use crate::table::{secs, Table};
use sww_energy::cost;
use sww_energy::device::{profile, DeviceKind};
use sww_energy::Energy;
use sww_genai::diffusion::ImageModelKind;

/// Typical flagship battery, watt-hours.
pub const PHONE_BATTERY_WH: f64 = 15.0;

/// Images a user's browsing generates per day in the projection.
pub const IMAGES_PER_DAY: u32 = 200;

/// One mobile-experiment row.
#[derive(Debug, Clone)]
pub struct MobileRow {
    /// Media label.
    pub label: String,
    /// Mobile generation seconds (SD 3 class).
    pub mobile_s: f64,
    /// Laptop seconds for reference.
    pub laptop_s: f64,
    /// Mobile generation energy.
    pub mobile_energy: Energy,
    /// Mobile seconds with the future fast model (§7 outlook).
    pub mobile_fast_s: f64,
}

/// Run the per-class comparison.
pub fn run() -> Vec<MobileRow> {
    let mobile = profile(DeviceKind::Mobile);
    let laptop = profile(DeviceKind::Laptop);
    [
        (256u32, "Small Image (256x256)"),
        (512, "Medium Image (512x512)"),
        (1024, "Large Image (1024x1024)"),
    ]
    .into_iter()
    .map(|(side, label)| {
        let mobile_s =
            cost::image_generation_time(ImageModelKind::Sd3Medium, &mobile, side, side, 15)
                .expect("local");
        let laptop_s =
            cost::image_generation_time(ImageModelKind::Sd3Medium, &laptop, side, side, 15)
                .expect("local");
        let mobile_fast_s =
            cost::image_generation_time(ImageModelKind::FluxFast, &mobile, side, side, 15)
                .expect("local");
        MobileRow {
            label: label.to_string(),
            mobile_s,
            laptop_s,
            mobile_energy: Energy::from_power(mobile.image_power_w, mobile_s),
            mobile_fast_s,
        }
    })
    .collect()
}

/// Battery share of a day's browsing (IMAGES_PER_DAY small images).
pub fn battery_share(model: ImageModelKind) -> f64 {
    let mobile = profile(DeviceKind::Mobile);
    let per_image = cost::image_generation_time(model, &mobile, 256, 256, 15).expect("local model");
    let day = Energy::from_power(mobile.image_power_w, per_image).scale(f64::from(IMAGES_PER_DAY));
    day.wh() / PHONE_BATTERY_WH
}

/// Render the mobile table.
pub fn table(rows: &[MobileRow]) -> Table {
    let mut t = Table::new(
        "E14 — Generation on mobile devices (§7 extension): NPU flagship profile",
        &[
            "Media",
            "Mobile (SD3)",
            "Laptop (SD3)",
            "Mobile Wh",
            "Mobile (fast model)",
        ],
    );
    for r in rows {
        t.row([
            r.label.clone(),
            secs(r.mobile_s),
            secs(r.laptop_s),
            format!("{:.3}Wh", r.mobile_energy.wh()),
            secs(r.mobile_fast_s),
        ]);
    }
    t.row([
        format!("battery share of {IMAGES_PER_DAY} imgs/day"),
        format!("{:.0}%", battery_share(ImageModelKind::Sd3Medium) * 100.0),
        "-".into(),
        "-".into(),
        format!("{:.1}%", battery_share(ImageModelKind::FluxFast) * 100.0),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobile_is_the_bottleneck_today() {
        let rows = run();
        for r in &rows {
            assert!(r.mobile_s > r.laptop_s * 2.0, "{}", r.label);
        }
        // Large image on mobile is prohibitive (beyond 20 minutes).
        assert!(rows[2].mobile_s > 1200.0, "{}", rows[2].mobile_s);
    }

    #[test]
    fn fast_models_change_the_verdict() {
        // §7: "The emergence of new low-power accelerator technologies
        // will make SWW a sustainable, efficient solution."
        let rows = run();
        for r in &rows {
            assert!(
                r.mobile_fast_s < r.mobile_s / 4.0,
                "{}: {} vs {}",
                r.label,
                r.mobile_fast_s,
                r.mobile_s
            );
        }
        // Small images become interactive-adjacent (< 4 s).
        assert!(rows[0].mobile_fast_s < 4.0, "{}", rows[0].mobile_fast_s);
    }

    #[test]
    fn battery_budget_shifts_from_prohibitive_to_tolerable() {
        // Today a day of SWW browsing drains a substantial battery share —
        // part of why the paper defers mobile deployment to future
        // accelerators; the fast-model profile brings it under a tenth.
        let today = battery_share(ImageModelKind::Sd3Medium);
        assert!((0.15..0.8).contains(&today), "battery share {today:.2}");
        let fast = battery_share(ImageModelKind::FluxFast);
        assert!(fast < 0.10, "fast-model share {fast:.2}");
        assert!(fast < today / 3.0);
    }
}
