//! E16 — continuous batching: modelled throughput vs. batch size.
//!
//! Companion to E15: the workload again drives server-side generation
//! from many naive sessions, but every round requests **distinct**
//! prompts, so single-flight cannot amortize anything and all the
//! sharing comes from the [`BatchScheduler`] grouping compatible
//! cache-misses into one denoising pass.
//!
//! Batched execution is bit-identical to sequential execution (see the
//! `batch_equivalence` suite), so the win is not wall-clock in this
//! process — it is the **modelled device time** of the batched pass:
//! `t(batch) = t(1)·(0.7/batch + 0.3)` per image
//! ([`sww_energy::cost::batched_image_generation_time`]). The sweep
//! reports images per modelled second and the speedup over the
//! unbatched baseline, alongside the achieved batch size and the p99
//! wait members paid for their group to close (bounded by the
//! configured deadline).
//!
//! Rounds are barrier-aligned and one [`announce`] hint is held for the
//! whole sample, so groups close on *full*, never on a rendezvous-drain
//! race: the sweep measures the policy, not thread-scheduling noise.
//!
//! [`BatchScheduler`]: sww_core::BatchScheduler
//! [`announce`]: sww_core::BatchScheduler::announce

use crate::table::Table;
use std::sync::Barrier;
use sww_core::{GenAbility, GenerativeServer};
use sww_http2::Request;

/// One batch-size sample of the sweep.
#[derive(Debug, Clone)]
pub struct BatchSample {
    /// Batch cap handed to the server (1 = batching disabled).
    pub batch_max: usize,
    /// Images generated (always `threads × rounds`; nothing coalesces).
    pub images: u64,
    /// Modelled device seconds spent generating them.
    pub modelled_time_s: f64,
    /// Images per modelled device second.
    pub modelled_rate: f64,
    /// `modelled_rate` relative to the batch-1 baseline row.
    pub speedup: f64,
    /// Mean achieved batch size (0 when batching is disabled).
    pub mean_batch: f64,
    /// p99 wait for a group to close, in milliseconds.
    pub p99_wait_ms: f64,
    /// Requests shed at admission during this sample (global delta; 0
    /// unless lifecycle knobs are in play).
    pub shed: u64,
    /// Cancellations that took effect during this sample (global delta).
    pub cancelled: u64,
}

/// Sweep configuration.
#[derive(Debug, Clone, Copy)]
pub struct BatchingConfig {
    /// Client threads per round; also the pool size, so every round's
    /// generations are concurrent.
    pub threads: usize,
    /// Barrier-aligned rounds of `threads` distinct prompts each.
    pub rounds: usize,
    /// Batch-wait deadline in milliseconds. Generous by default so the
    /// sweep exercises close-on-full, not close-on-deadline.
    pub batch_wait_ms: u64,
}

impl Default for BatchingConfig {
    fn default() -> BatchingConfig {
        BatchingConfig {
            threads: 8,
            rounds: 4,
            batch_wait_ms: 250,
        }
    }
}

/// Run one batch-size sample.
pub fn sample(cfg: BatchingConfig, batch_max: usize) -> BatchSample {
    let prompts = cfg.threads * cfg.rounds;
    let server = GenerativeServer::builder()
        .site(super::concurrency::bench_site(prompts))
        .workers(cfg.threads)
        .batch_max(batch_max)
        .batch_wait(std::time::Duration::from_millis(cfg.batch_wait_ms))
        .build();
    let (shed_before, cancelled_before, _) = super::concurrency::lifecycle_counters();
    // Held across the sample: groups never close for rendezvous drain,
    // only on full (or the deadline), making composition deterministic.
    let hint = server.batcher().map(|b| b.announce());
    let barrier = Barrier::new(cfg.threads);
    std::thread::scope(|scope| {
        for t in 0..cfg.threads {
            let session = server.accept(GenAbility::none());
            let barrier = &barrier;
            scope.spawn(move || {
                for round in 0..cfg.rounds {
                    barrier.wait();
                    let path = format!("/page/{}", round * cfg.threads + t);
                    let resp = session.handle(&Request::get(&path));
                    assert_eq!(resp.status, 200, "GET {path}");
                }
            });
        }
    });
    drop(hint);
    let images = server.engine().generations();
    let modelled_time_s = server.server_generation_time_s();
    let stats = server.batch_stats();
    let (shed_after, cancelled_after, _) = super::concurrency::lifecycle_counters();
    BatchSample {
        batch_max,
        images,
        modelled_time_s,
        modelled_rate: images as f64 / modelled_time_s.max(1e-12),
        speedup: 1.0, // filled in by `run` against the baseline row
        mean_batch: stats.as_ref().map_or(0.0, |s| s.mean_batch),
        p99_wait_ms: stats.as_ref().map_or(0.0, |s| s.p99_wait_s * 1e3),
        shed: shed_after - shed_before,
        cancelled: cancelled_after - cancelled_before,
    }
}

/// Sweep over batch caps. The first entry should be 1 (the unbatched
/// baseline); every row's speedup is relative to the batch-1 row (or the
/// first row when 1 is not swept).
pub fn run(cfg: BatchingConfig, batch_sizes: &[usize]) -> Vec<BatchSample> {
    let mut samples: Vec<BatchSample> = batch_sizes.iter().map(|&b| sample(cfg, b)).collect();
    let baseline = samples
        .iter()
        .find(|s| s.batch_max == 1)
        .or(samples.first())
        .map(|s| s.modelled_rate)
        .unwrap_or(1.0);
    for s in &mut samples {
        s.speedup = s.modelled_rate / baseline.max(1e-12);
    }
    samples
}

/// Render as a table.
pub fn table(cfg: BatchingConfig, samples: &[BatchSample]) -> Table {
    let mut t = Table::new(
        format!(
            "E16 — Continuous batching: modelled throughput vs. batch size \
             ({} threads x {} rounds, distinct prompts, {} ms deadline)",
            cfg.threads, cfg.rounds, cfg.batch_wait_ms
        ),
        &[
            "Batch",
            "Images",
            "DeviceTime",
            "Img/s",
            "Speedup",
            "MeanBatch",
            "p99Wait",
            "Shed/Cxl",
        ],
    );
    for s in samples {
        t.row([
            if s.batch_max == 1 {
                "off".to_string()
            } else {
                s.batch_max.to_string()
            },
            s.images.to_string(),
            format!("{:.1} s", s.modelled_time_s),
            format!("{:.2}", s.modelled_rate),
            format!("{:.2}x", s.speedup),
            format!("{:.1}", s.mean_batch),
            format!("{:.1} ms", s.p99_wait_ms),
            format!("{}/{}", s.shed, s.cancelled),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance criterion: ≥ 2× modelled throughput at batch 8 vs
    /// batch 1 on the pooled engine, with p99 added wait bounded by the
    /// configured deadline.
    #[test]
    fn batch_eight_at_least_doubles_modelled_throughput() {
        let _serial = super::super::POOL_SERIAL
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let cfg = BatchingConfig {
            threads: 8,
            rounds: 2,
            batch_wait_ms: 250,
        };
        let samples = run(cfg, &[1, 8]);
        let expected = (cfg.threads * cfg.rounds) as u64;
        for s in &samples {
            assert_eq!(s.images, expected, "batch={}: no coalescing", s.batch_max);
        }
        let batched = &samples[1];
        assert!(
            batched.speedup >= 2.0,
            "batch 8 must at least double modelled throughput, got {:.2}x",
            batched.speedup
        );
        // The announce hint plus barrier alignment makes every group
        // close on full: achieved batch equals the cap exactly.
        assert_eq!(batched.mean_batch, 8.0);
        assert!(
            batched.p99_wait_ms <= cfg.batch_wait_ms as f64,
            "p99 wait {:.1} ms exceeded the {} ms deadline",
            batched.p99_wait_ms,
            cfg.batch_wait_ms
        );
    }

    #[test]
    fn table_marks_the_unbatched_baseline() {
        let _serial = super::super::POOL_SERIAL
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let cfg = BatchingConfig {
            threads: 2,
            rounds: 1,
            batch_wait_ms: 100,
        };
        let samples = run(cfg, &[1, 2]);
        let rendered = table(cfg, &samples).render();
        assert!(rendered.contains("off"));
        assert!(rendered.contains("E16"));
        assert!((samples[0].speedup - 1.0).abs() < 1e-9);
    }
}
