//! E21 — edge resilience: hot-key replication under owner death, and
//! gossip partition healing — the PR 10 acceptance scenarios, run as
//! deterministic bench gates.
//!
//! **Scenario A (failover)** warms every prompt past the hot threshold
//! at its *owner* entry (a local serve never peer-fills, so the entry
//! fill caches stay empty and replicas are the only thing standing
//! between an owner kill and a re-render), kills the most-loaded owner,
//! then replays the hot keys through surviving entries. At
//! `replication 2` the successor walk serves every request from the
//! owner's pushed replicas — zero lost responses, byte-identical
//! payloads, **zero additional generations**. At `replication 1` the
//! identical scenario must regenerate at least once: the contrast that
//! proves replicas (not caches) carried the failover. Both outcomes are
//! audited by exact engine-counter reconciliation, not sampling.
//!
//! **Scenario B (partition)** drops gossip between `{n0}` and
//! `{n1, n2}` until the views diverge (each side declares the other
//! dead), heals the partition, and counts virtual-clock rounds until
//! every live view is identical again. The SWIM refutation path (the
//! "dead" node re-announces itself at a higher incarnation) must
//! converge within a deterministic bound, and the whole scenario must
//! replay bit-for-bit: the round count and membership digest are
//! compared across two runs from the same seed.

use crate::table::Table;
use sww_core::edge::recipe_key;
use sww_core::{
    EdgeConfig, EdgeRouter, GenAbility, GenerativeServer, HashRing, MediaGenerator, ServerConfig,
};
use sww_energy::device::{profile, DeviceKind};
use sww_http2::Request;

use super::concurrency::bench_site;

/// E21 configuration. The failover scenario runs once per entry in
/// `replication_levels`; the partition scenario uses the same cluster
/// shape with the gossip seed from [`EdgeConfig::default`].
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Cluster size for both scenarios.
    pub nodes: usize,
    /// Shared prompt-pool size.
    pub prompts: usize,
    /// Vnodes per node on the ring.
    pub replicas: usize,
    /// Total copies per hot key (owner included) to test, ascending —
    /// `[1, 2]` in the headline configuration so the report carries the
    /// re-render contrast.
    pub replication_levels: Vec<usize>,
    /// Acting-owner hit count at which a key is pushed to its seats.
    pub hot_threshold: u64,
    /// Post-kill fetch rounds over the hot-key pool.
    pub rounds: usize,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            nodes: 3,
            prompts: 10,
            replicas: sww_core::edge::DEFAULT_VNODES,
            replication_levels: vec![1, 2],
            hot_threshold: 2,
            rounds: 3,
        }
    }
}

/// The failover scenario's outcome at one replication level.
#[derive(Debug, Clone)]
pub struct FailoverOutcome {
    /// Total copies per hot key (owner included).
    pub replication: usize,
    /// Cluster size.
    pub nodes: usize,
    /// Post-kill requests issued.
    pub requests: u64,
    /// Post-kill requests that produced a 200.
    pub completed: u64,
    /// Requests that never produced a 200 — gated to zero.
    pub lost: u64,
    /// Whether every post-kill payload matched the owner's bytes.
    pub byte_identical: bool,
    /// Generations during the warm phase (one per prompt).
    pub warm_generations: u64,
    /// Generations the kill cost on top of the warm phase — gated to
    /// zero at `replication ≥ 2`, gated to **nonzero** at 1.
    pub regenerations: u64,
    /// Hot keys the owners pushed to their ring successors.
    pub replica_pushes: u64,
    /// Requests served straight from a replica store.
    pub replica_hits: u64,
    /// Which node the scenario killed.
    pub killed: String,
}

/// The partition scenario's outcome.
#[derive(Debug, Clone)]
pub struct PartitionOutcome {
    /// Cluster size.
    pub nodes: usize,
    /// Whether the views diverged while partitioned (they must — a
    /// partition nobody notices is not a partition).
    pub diverged: bool,
    /// Virtual-clock rounds from heal to a converged membership view.
    pub rounds_to_heal: u64,
    /// The deterministic bound the heal must land under.
    pub bound: u64,
    /// Whether every live view converged to the identical map.
    pub converged: bool,
    /// Whether a second run from the same seed reproduced the same
    /// round count and membership digest — the replay witness.
    pub deterministic: bool,
    /// Membership digest at convergence.
    pub digest: u64,
}

fn resilient_router(cfg: &ResilienceConfig, replication: usize) -> EdgeRouter {
    EdgeRouter::new(
        EdgeConfig {
            nodes: cfg.nodes,
            replicas: cfg.replicas,
            replication,
            hot_threshold: cfg.hot_threshold,
            ..EdgeConfig::default()
        },
        bench_site(cfg.prompts),
        |site| {
            GenerativeServer::from_config(ServerConfig {
                site,
                ..ServerConfig::default()
            })
        },
    )
}

fn cluster_generations(router: &EdgeRouter) -> u64 {
    router
        .nodes()
        .iter()
        .map(|n| n.server().engine().generations())
        .sum()
}

/// The node owning the most prompts — the worst case for failover
/// volume, with ties broken toward the smaller id (the E19 convention).
fn most_loaded_owner(cfg: &ResilienceConfig, router: &EdgeRouter) -> String {
    let generator = MediaGenerator::new(profile(DeviceKind::Workstation));
    let keys: Vec<String> = (0..cfg.prompts)
        .map(|p| {
            recipe_key(&sww_core::cache::Recipe {
                prompt: format!("bench prompt {p} distant headland"),
                model: generator.image_model(),
                width: 64,
                height: 64,
                steps: generator.inference_steps(),
            })
        })
        .collect();
    let ring: HashRing = router.ring();
    ring.ownership(&keys)
        .iter()
        .max_by_key(|(id, count)| (**count, std::cmp::Reverse(id.as_str())))
        .map(|(id, _)| id.clone())
        .expect("cluster has nodes")
}

/// Run the failover scenario at one replication level. Fully
/// deterministic: the kill lands between the warm phase and the replay
/// phase (the mid-flight variant is the E19 chaos scenario and the
/// `edge_cluster` integration suite), so the gated counters are exact.
pub fn failover(cfg: &ResilienceConfig, replication: usize) -> FailoverOutcome {
    let router = resilient_router(cfg, replication);
    let ids = router.node_ids();

    // Warm every prompt past the hot threshold at its *owner* entry:
    // local serves never peer-fill, so the fill caches stay empty and
    // only the replica pushes survive the owner.
    let mut bodies = Vec::with_capacity(cfg.prompts);
    for p in 0..cfg.prompts {
        let path = format!("/page/{p}");
        let owner = router.owner_of(&path).expect("routable page");
        let entry = ids.iter().position(|id| *id == owner).expect("owner entry");
        let mut body = Vec::new();
        for _ in 0..=cfg.hot_threshold {
            let resp = router.handle(entry, GenAbility::none(), &Request::get(&path));
            assert_eq!(resp.status, 200, "warm GET {path}");
            body = resp.body.to_vec();
        }
        bodies.push(body);
    }
    let warm_generations = cluster_generations(&router);

    let victim = most_loaded_owner(cfg, &router);
    router.kill(&victim);

    let mut completed = 0u64;
    let mut lost = 0u64;
    let mut mismatched = 0u64;
    let mut requests = 0u64;
    for round in 0..cfg.rounds {
        for (p, warm_body) in bodies.iter().enumerate() {
            requests += 1;
            let path = format!("/page/{p}");
            // Rotate entries exactly as a client re-resolving to a
            // healthy PoP would; a dead entry answers 503 and the next
            // attempt moves on.
            let mut done = false;
            for attempt in 0..cfg.nodes {
                let resp = router.handle(
                    (round + p + attempt) % cfg.nodes,
                    GenAbility::none(),
                    &Request::get(&path),
                );
                if resp.status == 200 {
                    if resp.body.as_ref() != warm_body.as_slice() {
                        mismatched += 1;
                    }
                    completed += 1;
                    done = true;
                    break;
                }
            }
            if !done {
                lost += 1;
            }
        }
    }
    let stats: Vec<_> = router.nodes().iter().map(|n| n.stats()).collect();
    FailoverOutcome {
        replication,
        nodes: cfg.nodes,
        requests,
        completed,
        lost,
        byte_identical: mismatched == 0,
        warm_generations,
        regenerations: cluster_generations(&router) - warm_generations,
        replica_pushes: stats.iter().map(|s| s.replica_pushes).sum(),
        replica_hits: stats.iter().map(|s| s.replica_hits).sum(),
        killed: victim,
    }
}

/// Run the failover scenario at every configured replication level.
pub fn failover_sweep(cfg: &ResilienceConfig) -> Vec<FailoverOutcome> {
    cfg.replication_levels
        .iter()
        .map(|&r| failover(cfg, r))
        .collect()
}

/// One partition-heal run; returns (diverged, rounds_to_heal, digest,
/// converged) so [`partition_heal`] can compare two runs for the
/// determinism witness.
fn partition_run(cfg: &ResilienceConfig, bound: u64) -> (bool, u64, u64, bool) {
    let router = resilient_router(
        cfg,
        cfg.replication_levels.iter().copied().max().unwrap_or(1),
    );
    let ids = router.node_ids();
    let (island, mainland) = ids.split_at(1);
    router.set_partition(&[island.to_vec(), mainland.to_vec()]);
    // Run the failure detector long enough for each side to declare the
    // other dead: probes cross the cut, get dropped, and the suspect
    // timers expire.
    router.tick_gossip(bound);
    let diverged = !router.gossip_converged();

    router.heal_partition();
    let healed_at = router.gossip_round();
    let mut rounds_to_heal = bound;
    for _ in 0..bound {
        router.tick_gossip(1);
        if router.gossip_converged() {
            rounds_to_heal = router.gossip_round() - healed_at;
            break;
        }
    }
    (
        diverged,
        rounds_to_heal,
        router.gossip_digest(),
        router.gossip_converged(),
    )
}

/// Run the partition scenario twice from the same seed and compare.
pub fn partition_heal(cfg: &ResilienceConfig) -> PartitionOutcome {
    // Same generous deterministic bound the gossip property tests use:
    // a probe round per observer, the suspect timer, and dissemination.
    let bound = 6 * sww_core::GossipConfig::default().suspect_rounds + 6;
    let (diverged, rounds, digest, converged) = partition_run(cfg, bound);
    let (d2, r2, g2, c2) = partition_run(cfg, bound);
    PartitionOutcome {
        nodes: cfg.nodes,
        diverged,
        rounds_to_heal: rounds,
        bound,
        converged,
        deterministic: diverged == d2 && rounds == r2 && digest == g2 && converged == c2,
        digest,
    }
}

/// Render the failover sweep as the E21 table.
pub fn failover_table(cfg: &ResilienceConfig, outcomes: &[FailoverOutcome]) -> Table {
    let mut t = Table::new(
        format!(
            "E21 — Edge resilience ({} nodes, {} prompts, hot threshold {})",
            cfg.nodes, cfg.prompts, cfg.hot_threshold
        ),
        &[
            "Replication",
            "Killed",
            "Requests",
            "Lost",
            "Regen",
            "Replica pushes",
            "Replica hits",
            "Bytes identical",
        ],
    );
    for o in outcomes {
        t.row([
            o.replication.to_string(),
            o.killed.clone(),
            o.requests.to_string(),
            o.lost.to_string(),
            o.regenerations.to_string(),
            o.replica_pushes.to_string(),
            o.replica_hits.to_string(),
            o.byte_identical.to_string(),
        ]);
    }
    t
}

/// Render the partition outcome as a table.
pub fn partition_table(outcome: &PartitionOutcome) -> Table {
    let mut t = Table::new(
        format!("E21 — Gossip partition heal ({} nodes)", outcome.nodes),
        &[
            "Diverged",
            "Rounds to heal",
            "Bound",
            "Converged",
            "Deterministic",
            "Digest",
        ],
    );
    t.row([
        outcome.diverged.to_string(),
        outcome.rounds_to_heal.to_string(),
        outcome.bound.to_string(),
        outcome.converged.to_string(),
        outcome.deterministic.to_string(),
        format!("{:016x}", outcome.digest),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ResilienceConfig {
        ResilienceConfig {
            prompts: 6,
            ..ResilienceConfig::default()
        }
    }

    #[test]
    fn replicated_failover_costs_zero_regenerations() {
        let o = failover(&small(), 2);
        assert_eq!(o.lost, 0, "{o:?}");
        assert_eq!(o.completed, o.requests);
        assert!(o.byte_identical, "{o:?}");
        assert_eq!(o.regenerations, 0, "replicas must absorb the kill: {o:?}");
        assert_eq!(o.warm_generations, 6, "one generation per prompt");
        assert!(o.replica_hits > 0, "{o:?}");
        assert_eq!(
            o.replica_pushes, 6,
            "every hot prompt pushed to one seat: {o:?}"
        );
    }

    #[test]
    fn unreplicated_failover_must_rerender() {
        let o = failover(&small(), 1);
        assert_eq!(o.lost, 0, "{o:?}");
        assert!(o.byte_identical, "{o:?}");
        assert!(
            o.regenerations > 0,
            "without replicas the kill must cost a re-render: {o:?}"
        );
        assert_eq!(o.replica_pushes, 0, "{o:?}");
    }

    #[test]
    fn partition_diverges_heals_in_bound_and_replays() {
        let o = partition_heal(&small());
        assert!(o.diverged, "{o:?}");
        assert!(o.converged, "{o:?}");
        assert!(o.rounds_to_heal <= o.bound, "{o:?}");
        assert!(o.deterministic, "{o:?}");
    }

    #[test]
    fn tables_render_every_outcome() {
        let cfg = small();
        let outcomes = failover_sweep(&cfg);
        let rendered = failover_table(&cfg, &outcomes).render();
        assert!(rendered.contains("Replication"));
        for o in &outcomes {
            assert!(rendered.contains(&o.killed));
        }
        let partition = partition_heal(&cfg);
        assert!(partition_table(&partition)
            .render()
            .contains("Rounds to heal"));
    }
}
