//! E3 — the §6.2 text-expansion experiment: a newspaper article shipped
//! as bullets and regenerated (paper: 2400 B → 778 B, 3.1×; 41.9 s on the
//! laptop, >10 s on the workstation).

use crate::table::{bytes, secs, Table};
use sww_energy::cost;
use sww_energy::device::{profile, DeviceKind};
use sww_genai::metrics::sbert;
use sww_genai::text::{TextModel, TextModelKind};
use sww_workload::article;

/// Results of the article reproduction.
#[derive(Debug, Clone)]
pub struct ArticleResult {
    /// Original article bytes.
    pub original_bytes: u64,
    /// Bullet (wire) bytes.
    pub converted_bytes: u64,
    /// original / converted.
    pub compression_ratio: f64,
    /// Modelled laptop expansion time (DeepSeek-R1 8B).
    pub laptop_s: f64,
    /// Modelled workstation expansion time.
    pub workstation_s: f64,
    /// SBERT similarity of the regenerated article to the bullets.
    pub sbert: f64,
    /// Word-length deviation of the regeneration.
    pub overshoot: f64,
}

/// Run the text experiment with the paper's model of choice.
pub fn run() -> ArticleResult {
    let (original, converted) = article::sizes();
    let bullets = article::article_bullets();
    let target = article::target_words();
    let model = TextModel::new(TextModelKind::DeepSeekR1_8B);
    let text = model.expand(&bullets, target);
    let laptop = profile(DeviceKind::Laptop);
    let ws = profile(DeviceKind::Workstation);
    ArticleResult {
        original_bytes: original as u64,
        converted_bytes: converted as u64,
        compression_ratio: original as f64 / converted as f64,
        laptop_s: cost::text_generation_time(TextModelKind::DeepSeekR1_8B, &laptop, target),
        workstation_s: cost::text_generation_time(TextModelKind::DeepSeekR1_8B, &ws, target),
        sbert: sbert::sbert_score(&bullets, &text),
        overshoot: sww_genai::text::word_length_overshoot(&text, target),
    }
}

/// Render side by side with the paper.
pub fn table(r: &ArticleResult) -> Table {
    let mut t = Table::new(
        "E3 — Newspaper article text expansion (§6.2)",
        &["Quantity", "Paper", "Measured"],
    );
    t.row(["original article", "2400B", &bytes(r.original_bytes)]);
    t.row(["bullet form", "778B", &bytes(r.converted_bytes)]);
    t.row([
        "compression",
        "3.1x",
        &format!("{:.2}x", r.compression_ratio),
    ]);
    t.row(["laptop expansion", "41.9s", &secs(r.laptop_s)]);
    t.row(["workstation expansion", ">10s", &secs(r.workstation_s)]);
    t.row(["SBERT similarity", "0.82-0.91", &format!("{:.3}", r.sbert)]);
    t.row([
        "length deviation",
        "<=20%",
        &format!("{:+.1}%", r.overshoot * 100.0),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn article_shape_holds() {
        let r = run();
        assert!(
            (2.4..4.2).contains(&r.compression_ratio),
            "{}",
            r.compression_ratio
        );
        // Laptop slower than workstation, workstation > 10 s.
        assert!(r.workstation_s > 10.0, "{}", r.workstation_s);
        assert!(r.laptop_s > r.workstation_s * 2.0);
        // Laptop in the ballpark of the paper's 41.9 s.
        assert!((25.0..45.0).contains(&r.laptop_s), "{}", r.laptop_s);
        assert!((0.78..=1.0).contains(&r.sbert), "{}", r.sbert);
        assert!(r.overshoot.abs() <= 0.25);
    }
}
