//! E9, E10, E12 — the §6.4 energy comparison, the embodied-carbon
//! estimate, and the §7 web-scale traffic projection.

use crate::table::{bytes, secs, wh, Table};
use sww_energy::carbon;
use sww_energy::cost;
use sww_energy::device::{profile, DeviceKind};
use sww_energy::network::{self, LinkModel};
use sww_genai::diffusion::ImageModelKind;

/// E9 results: transmit vs generate for the large image.
#[derive(Debug, Clone)]
pub struct EnergyCompare {
    /// Large-image bytes used for the comparison.
    pub image_bytes: u64,
    /// Transmit time on the 100 Mbps link.
    pub transmit_s: f64,
    /// Workstation generation time.
    pub generate_s: f64,
    /// generate ÷ transmit (paper: ≈620×).
    pub time_ratio: f64,
    /// Transmission energy (paper: ≈0.005 Wh).
    pub transmit_wh: f64,
    /// Workstation generation energy (paper: ≈0.21 Wh).
    pub generate_wh: f64,
    /// transmit ÷ generate (paper: ≈2.5%).
    pub energy_share: f64,
}

/// Run the §6.4 comparison.
pub fn energy_compare() -> EnergyCompare {
    let image_bytes = 131_072u64;
    let link = LinkModel::typical();
    let ws = profile(DeviceKind::Workstation);
    let transmit_s = link.transmit_time(image_bytes);
    let generate_s =
        cost::image_generation_time(ImageModelKind::Sd3Medium, &ws, 1024, 1024, 15).expect("local");
    let transmit_wh = network::transmission_energy(image_bytes).wh();
    let generate_wh = sww_energy::Energy::from_power(ws.image_power_w, generate_s).wh();
    EnergyCompare {
        image_bytes,
        transmit_s,
        generate_s,
        time_ratio: generate_s / transmit_s,
        transmit_wh,
        generate_wh,
        energy_share: transmit_wh / generate_wh,
    }
}

/// Render E9.
pub fn energy_table(r: &EnergyCompare) -> Table {
    let mut t = Table::new(
        "E9 — Transmit vs generate, large image (§6.4)",
        &["Quantity", "Paper", "Measured"],
    );
    t.row(["image size", "131072B", &bytes(r.image_bytes)]);
    t.row(["transmit @100Mbps", "~10ms", &secs(r.transmit_s)]);
    t.row(["WS generation", "6.2s", &secs(r.generate_s)]);
    t.row([
        "generation / transmit",
        "620x",
        &format!("{:.0}x", r.time_ratio),
    ]);
    t.row(["transmit energy", "0.005Wh", &wh(r.transmit_wh)]);
    t.row(["WS generation energy", "0.21Wh", &wh(r.generate_wh)]);
    t.row([
        "transmit share of generation",
        "2.5%",
        &format!("{:.1}%", r.energy_share * 100.0),
    ]);
    t
}

/// E10 results: embodied-carbon savings at scale.
#[derive(Debug, Clone)]
pub struct CarbonRow {
    /// Storage volume label.
    pub label: String,
    /// Compression ratio applied.
    pub ratio: f64,
    /// kgCO₂e saved.
    pub saved_kg: f64,
}

/// Run E10 at several scales/ratios, including the measured image ratio.
pub fn carbon(measured_image_ratio: f64) -> Vec<CarbonRow> {
    let mut rows = Vec::new();
    for (label, volume) in [("1 PB", 1e15), ("1 EB", 1e18)] {
        for ratio in [2.0, 19.14, measured_image_ratio, 306.24] {
            rows.push(CarbonRow {
                label: label.to_string(),
                ratio,
                saved_kg: carbon::storage_savings_kg_co2e(volume, ratio),
            });
        }
    }
    rows
}

/// Render E10.
pub fn carbon_table(rows: &[CarbonRow]) -> Table {
    let mut t = Table::new(
        "E10 — Embodied carbon saved by prompt storage (6.5 kgCO2e/TB SSD)",
        &["Stored volume", "Compression", "kgCO2e saved"],
    );
    for r in rows {
        t.row([
            r.label.clone(),
            format!("{:.1}x", r.ratio),
            format!("{:.2e}", r.saved_kg),
        ]);
    }
    t
}

/// E12 results: the §7 traffic projection.
#[derive(Debug, Clone)]
pub struct ProjectionRow {
    /// Monthly mobile-web volume assumed (bytes).
    pub eb_per_month: f64,
    /// Compression ratio applied.
    pub ratio: f64,
    /// Resulting petabytes per month.
    pub pb_per_month: f64,
}

/// Run E12 for the paper's 2–3 EB/month mobile-web estimate.
pub fn projection(measured_ratio: f64) -> Vec<ProjectionRow> {
    [2.0e18, 2.5e18, 3.0e18]
        .into_iter()
        .map(|volume| ProjectionRow {
            eb_per_month: volume / 1e18,
            ratio: measured_ratio,
            pb_per_month: sww_core::stats::project_traffic(volume, measured_ratio) / 1e15,
        })
        .collect()
}

/// Render E12.
pub fn projection_table(rows: &[ProjectionRow]) -> Table {
    let mut t = Table::new(
        "E12 — §7 projection: mobile web traffic under SWW (paper: EB/month → tens of PB/month)",
        &["Mobile web today", "Compression", "Under SWW"],
    );
    for r in rows {
        t.row([
            format!("{:.1} EB/month", r.eb_per_month),
            format!("{:.0}x", r.ratio),
            format!("{:.0} PB/month", r.pb_per_month),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_matches_paper_shape() {
        let r = energy_compare();
        assert!((0.008..0.013).contains(&r.transmit_s));
        assert!(
            (500.0..700.0).contains(&r.time_ratio),
            "ratio {:.0}",
            r.time_ratio
        );
        assert!((r.transmit_wh - 0.005).abs() < 0.001);
        assert!((r.generate_wh - 0.22).abs() < 0.03);
        assert!((0.015..0.035).contains(&r.energy_share));
        // The paper's present-day verdict: generation costs far more
        // energy than transmission.
        assert!(r.generate_wh > r.transmit_wh * 20.0);
    }

    #[test]
    fn e10_exabyte_savings_in_millions() {
        let rows = carbon(157.0);
        let eb_rows: Vec<_> = rows.iter().filter(|r| r.label == "1 EB").collect();
        for r in eb_rows {
            assert!(
                r.saved_kg > 1e6,
                "{} at {:.0}x: {}",
                r.label,
                r.ratio,
                r.saved_kg
            );
        }
        // Higher ratio saves more.
        assert!(rows[3].saved_kg > rows[0].saved_kg);
    }

    #[test]
    fn e12_lands_in_tens_of_pb() {
        for r in projection(100.0) {
            assert!(
                (10.0..100.0).contains(&r.pb_per_month),
                "{} PB/month",
                r.pb_per_month
            );
        }
    }
}
