//! E8 — Table 2: compression ratio, generation time and energy for the
//! four media classes, on both devices. Media bytes are reported twice:
//! the paper's nominal sizes and the bytes our codec actually measures on
//! the generated pixels.

use crate::table::{bytes, secs, wh, Table};
use sww_energy::cost;
use sww_energy::device::{profile, DeviceKind};
use sww_energy::Energy;
use sww_genai::diffusion::{DiffusionModel, ImageModelKind};
use sww_genai::image::codec;
use sww_genai::text::bullets;
use sww_workload::media_classes::{table2_classes, text_block_250, worst_case_image_metadata};

/// One regenerated Table 2 row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Row label.
    pub label: String,
    /// The paper's nominal media bytes.
    pub nominal_bytes: u64,
    /// Bytes measured by encoding the actually generated media.
    pub measured_bytes: u64,
    /// Metadata bytes (measured, worst-case dictionary).
    pub metadata_bytes: u64,
    /// Nominal compression ratio (paper's column).
    pub nominal_ratio: f64,
    /// Measured compression ratio.
    pub measured_ratio: f64,
    /// Laptop generation seconds.
    pub laptop_s: f64,
    /// Laptop energy.
    pub laptop_energy: Energy,
    /// Workstation generation seconds.
    pub workstation_s: f64,
    /// Workstation energy.
    pub workstation_energy: Energy,
}

/// Regenerate Table 2 (SD 3 Medium + DeepSeek-R1 8B, as the paper states).
pub fn run() -> Vec<Table2Row> {
    let laptop = profile(DeviceKind::Laptop);
    let ws = profile(DeviceKind::Workstation);
    let model = DiffusionModel::new(ImageModelKind::Sd3Medium);
    table2_classes()
        .into_iter()
        .map(|class| {
            if class.side > 0 {
                let prompt = "a detailed mountain landscape with a lake, rich natural texture";
                let img = model.generate(prompt, class.side, class.side, 15);
                let measured = codec::encode(&img, 55).len() as u64;
                let metadata =
                    sww_json::to_string(&worst_case_image_metadata(class.side)).len() as u64;
                let lap_t = cost::image_generation_time(
                    ImageModelKind::Sd3Medium,
                    &laptop,
                    class.side,
                    class.side,
                    15,
                )
                .expect("local");
                let ws_t = cost::image_generation_time(
                    ImageModelKind::Sd3Medium,
                    &ws,
                    class.side,
                    class.side,
                    15,
                )
                .expect("local");
                Table2Row {
                    label: class.label.to_string(),
                    nominal_bytes: class.nominal_bytes,
                    measured_bytes: measured,
                    metadata_bytes: metadata,
                    nominal_ratio: class.nominal_bytes as f64 / class.nominal_metadata as f64,
                    measured_ratio: measured as f64 / metadata as f64,
                    laptop_s: lap_t,
                    laptop_energy: Energy::from_power(laptop.image_power_w, lap_t),
                    workstation_s: ws_t,
                    workstation_energy: Energy::from_power(ws.image_power_w, ws_t),
                }
            } else {
                let (text, _div) = text_block_250();
                let blist = bullets::to_bullets(&text, 5);
                let metadata = bullets::bullets_wire_size(&blist) as u64 + 24;
                let lap_t = cost::text_generation_time(
                    sww_genai::text::TextModelKind::DeepSeekR1_8B,
                    &laptop,
                    250,
                );
                let ws_t = cost::text_generation_time(
                    sww_genai::text::TextModelKind::DeepSeekR1_8B,
                    &ws,
                    250,
                );
                Table2Row {
                    label: class.label.to_string(),
                    nominal_bytes: class.nominal_bytes,
                    measured_bytes: text.len() as u64,
                    metadata_bytes: metadata,
                    nominal_ratio: class.nominal_bytes as f64 / class.nominal_metadata as f64,
                    measured_ratio: text.len() as f64 / metadata as f64,
                    laptop_s: lap_t,
                    laptop_energy: Energy::from_power(laptop.text_power_w, lap_t),
                    workstation_s: ws_t,
                    workstation_energy: Energy::from_power(ws.text_power_w, ws_t),
                }
            }
        })
        .collect()
}

/// Render Table 2.
pub fn table(rows: &[Table2Row]) -> Table {
    let mut t = Table::new(
        "E8 — Table 2: compression, generation time and energy per media class",
        &[
            "Media",
            "Size (paper/measured)",
            "Metadata",
            "Ratio (paper/measured)",
            "Laptop gen",
            "Laptop Wh",
            "WS gen",
            "WS Wh",
        ],
    );
    for r in rows {
        t.row([
            r.label.clone(),
            format!("{} / {}", bytes(r.nominal_bytes), bytes(r.measured_bytes)),
            bytes(r.metadata_bytes),
            format!("{:.2}x / {:.2}x", r.nominal_ratio, r.measured_ratio),
            secs(r.laptop_s),
            wh(r.laptop_energy.wh()),
            secs(r.workstation_s),
            wh(r.workstation_energy.wh()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_holds() {
        let rows = run();
        assert_eq!(rows.len(), 4);
        // Bigger image → higher compression ratio (the paper's trend).
        assert!(rows[0].measured_ratio < rows[1].measured_ratio);
        assert!(rows[1].measured_ratio < rows[2].measured_ratio);
        // Text compresses far less than any image.
        assert!(rows[3].measured_ratio < rows[0].measured_ratio);
        assert!(rows[3].measured_ratio < 4.0);
        // Nominal ratios are the paper's exact column.
        let expected = [19.14, 76.56, 306.24, 1.93];
        for (r, e) in rows.iter().zip(expected) {
            assert!(
                (r.nominal_ratio - e).abs() / e < 0.01,
                "{}: {}",
                r.label,
                r.nominal_ratio
            );
        }
        // Timing anchors: laptop 7/19/310 s, workstation 1.0/1.7/6.2 s.
        assert!((rows[0].laptop_s - 7.0).abs() < 1e-9);
        assert!((rows[2].laptop_s - 310.0).abs() < 1e-9);
        assert!((rows[0].workstation_s - 1.0).abs() < 1e-9);
        assert!((rows[2].workstation_s - 6.2).abs() < 1e-9);
        // Energy: laptop large image ≈0.90 Wh, WS ≈0.21 Wh (paper).
        assert!((rows[2].laptop_energy.wh() - 0.90).abs() < 0.02);
        assert!((rows[2].workstation_energy.wh() - 0.21).abs() < 0.02);
        // Text block energy: ws ≈0.51 Wh, laptop ≈0.01 Wh.
        assert!((rows[3].workstation_energy.wh() - 0.51).abs() < 0.06);
        assert!(rows[3].laptop_energy.wh() < 0.02);
    }

    #[test]
    fn measured_sizes_same_order_of_magnitude_as_nominal() {
        for r in run() {
            let ratio = r.measured_bytes as f64 / r.nominal_bytes as f64;
            assert!(
                (0.15..6.0).contains(&ratio),
                "{}: measured {} vs nominal {}",
                r.label,
                r.measured_bytes,
                r.nominal_bytes
            );
        }
    }
}
