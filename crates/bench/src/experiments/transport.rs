//! E18 — transport shoot-out: page load latency over h2 vs h3 when every
//! recipe on a page needs a slow server-side generation.
//!
//! Both transports drive the *same* request core
//! (`sww_core::server::dispatch` behind [`GenerativeServer`]), so the
//! per-recipe payloads are byte-identical; the only difference is the
//! framing. HTTP/2 in this stack answers a connection's requests in
//! order, so a page of `K` recipes that each cost `W` of generation
//! loads in ≈ `K·W` — every recipe queues behind the generations before
//! it (head-of-line blocking). HTTP/3 ships each recipe on its own
//! QUIC-lite stream and the server runs the handlers concurrently,
//! shipping responses in *completion* order, so the same page loads in
//! ≈ `W`.
//!
//! The slow generation is injected with the PR 3 chaos layer
//! (`engine.generate=latency:1.0:W`, see [`latency_spec`]) so the
//! experiment is deterministic and the sweep composes with
//! `sww bench-transport --chaos`. Measured wall-clock percentiles are
//! host-shaped and never gated; the regression gate compares the
//! modelled page rates (`1000/(K·W)` vs `1000/W`), which are exact.

use crate::table::Table;
use std::time::Instant;
use sww_core::{GenAbility, GenerativeServer, ServerConfig, SiteContent, TransportKind};
use sww_html::gencontent;
use sww_http2::Request;
use sww_http3::H3ClientConnection;

use super::concurrency::percentile_ms;

/// Sweep configuration: `pages` pages of `recipes` unique recipes each,
/// with every server-side generation slowed by `gen_latency_ms`.
#[derive(Debug, Clone, Copy)]
pub struct TransportConfig {
    /// Pages fetched per transport (each on a fresh connection).
    pub pages: usize,
    /// Recipes per page, every one a distinct prompt (no cache reuse —
    /// each recipe request pays the full generation latency).
    pub recipes: usize,
    /// Injected `engine.generate` latency in milliseconds (the `W` in the
    /// modelled `K·W` vs `W` page times).
    pub gen_latency_ms: u64,
    /// Chaos seed for [`latency_spec`].
    pub seed: u64,
}

impl Default for TransportConfig {
    fn default() -> TransportConfig {
        TransportConfig {
            pages: 5,
            recipes: 4,
            gen_latency_ms: 25,
            seed: 7,
        }
    }
}

/// One transport's measurement.
#[derive(Debug, Clone)]
pub struct TransportSample {
    /// Which framing carried the page loads.
    pub transport: TransportKind,
    /// Median page-load time in milliseconds (wall clock, not gated).
    pub p50_ms: f64,
    /// 99th-percentile page-load time in milliseconds.
    pub p99_ms: f64,
    /// Measured pages per wall-clock second.
    pub wall_qps: f64,
    /// Modelled pages per second from the injected latency alone —
    /// deterministic, the number the regression gate compares.
    pub modelled_qps: f64,
    /// `sww_server_requests_total{route="page",transport=...}` delta over
    /// the sample — reconciles the measurement against the server's own
    /// accounting (must equal `pages × recipes`).
    pub requests: u64,
    /// Response bodies keyed by path, for cross-transport byte-identity.
    pub bodies: std::collections::BTreeMap<String, Vec<u8>>,
}

/// The full h2-vs-h3 run.
#[derive(Debug, Clone)]
pub struct TransportRun {
    /// The HTTP/2 sample (serial per connection: page ≈ `K·W`).
    pub h2: TransportSample,
    /// The HTTP/3 sample (concurrent streams: page ≈ `W`).
    pub h3: TransportSample,
    /// Whether every recipe payload matched byte-for-byte across
    /// transports.
    pub byte_identical: bool,
}

impl TransportRun {
    /// Modelled h3-over-h2 page-rate speedup (= `recipes` exactly).
    pub fn modelled_speedup(&self) -> f64 {
        self.h3.modelled_qps / self.h2.modelled_qps.max(1e-12)
    }

    /// Measured p99 speedup — noisy, reported but never gated.
    pub fn measured_p99_speedup(&self) -> f64 {
        self.h2.p99_ms / self.h3.p99_ms.max(1e-9)
    }
}

/// The chaos spec that makes every generation cost `gen_latency_ms`:
/// `seed=S,engine.generate=latency:1.0:W`. Callers install it (directly
/// or via `--chaos`) around [`run`]; the experiment itself never touches
/// the process-global fault registry.
pub fn latency_spec(cfg: TransportConfig) -> String {
    format!(
        "seed={},engine.generate=latency:1.0:{}",
        cfg.seed, cfg.gen_latency_ms
    )
}

/// Modelled page time in milliseconds: h2 serializes the `K` generations,
/// h3 overlaps them.
pub fn modelled_page_ms(cfg: TransportConfig, transport: TransportKind) -> f64 {
    let w = cfg.gen_latency_ms as f64;
    match transport {
        TransportKind::H2 => cfg.recipes as f64 * w,
        _ => w,
    }
}

/// The workload: one single-recipe page per `(page, recipe)` pair, every
/// prompt unique so no request coalesces onto another's generation.
fn transport_site(cfg: TransportConfig) -> SiteContent {
    let mut site = SiteContent::new();
    for p in 0..cfg.pages {
        for r in 0..cfg.recipes {
            site.add_page(
                page_path(p, r),
                format!(
                    "<html><body>{}</body></html>",
                    gencontent::image_div(
                        &format!("transport bench page {p} recipe {r} sea stack"),
                        &format!("t{p}x{r}.jpg"),
                        48,
                        48,
                    )
                ),
            );
        }
    }
    site
}

fn page_path(page: usize, recipe: usize) -> String {
    format!("/e18/p{page}/r{recipe}")
}

fn requests_served(transport: TransportKind) -> u64 {
    sww_obs::counter(
        "sww_server_requests_total",
        &[("route", "page"), ("transport", transport.label())],
    )
    .get()
}

fn sample_from(
    cfg: TransportConfig,
    transport: TransportKind,
    mut page_ms: Vec<f64>,
    elapsed_s: f64,
    requests: u64,
    bodies: std::collections::BTreeMap<String, Vec<u8>>,
) -> TransportSample {
    page_ms.sort_by(|a, b| a.total_cmp(b));
    TransportSample {
        transport,
        p50_ms: percentile_ms(&page_ms, 50.0),
        p99_ms: percentile_ms(&page_ms, 99.0),
        wall_qps: cfg.pages as f64 / elapsed_s.max(1e-9),
        modelled_qps: 1000.0 / modelled_page_ms(cfg, transport),
        requests,
        bodies,
    }
}

/// Fetch every page serially over HTTP/2: one connection per page, the
/// `K` recipe requests issued back to back on it. Naive clients
/// (`GenAbility::none()`) force server-side generation.
fn h2_sample(cfg: TransportConfig, server: &GenerativeServer) -> TransportSample {
    let rt = runtime();
    let mut bodies = std::collections::BTreeMap::new();
    let mut page_ms = Vec::with_capacity(cfg.pages);
    let before = requests_served(TransportKind::H2);
    let start = Instant::now();
    rt.block_on(async {
        for p in 0..cfg.pages {
            let (a, b) = tokio::io::duplex(1 << 20);
            let srv = server.clone();
            tokio::spawn(async move {
                let _ = srv.serve_stream(b).await;
            });
            let mut conn = sww_http2::ClientConnection::handshake(a, GenAbility::none())
                .await
                .expect("h2 handshake");
            let t0 = Instant::now();
            for r in 0..cfg.recipes {
                let path = page_path(p, r);
                let resp = conn
                    .send_request(&Request::get(&path))
                    .await
                    .expect("h2 request");
                assert_eq!(resp.status, 200, "GET {path} over h2");
                bodies.insert(path, resp.body.to_vec());
            }
            page_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            let _ = conn.close().await;
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let requests = requests_served(TransportKind::H2) - before;
    sample_from(cfg, TransportKind::H2, page_ms, elapsed, requests, bodies)
}

/// Fetch every page over HTTP/3: one connection per page, all `K` recipe
/// streams opened up front and collected together — the server runs the
/// generations concurrently, so the page completes with the slowest one.
fn h3_sample(cfg: TransportConfig, server: &GenerativeServer) -> TransportSample {
    let rt = runtime();
    let mut bodies = std::collections::BTreeMap::new();
    let mut page_ms = Vec::with_capacity(cfg.pages);
    let before = requests_served(TransportKind::H3);
    let start = Instant::now();
    rt.block_on(async {
        for p in 0..cfg.pages {
            let (a, b) = tokio::io::duplex(1 << 20);
            let srv = server.clone();
            tokio::spawn(async move {
                let _ = srv.serve_h3_stream(b).await;
            });
            let mut conn = H3ClientConnection::handshake(a, GenAbility::none())
                .await
                .expect("h3 handshake");
            let paths: Vec<String> = (0..cfg.recipes).map(|r| page_path(p, r)).collect();
            let reqs: Vec<Request> = paths.iter().map(Request::get).collect();
            let t0 = Instant::now();
            let resps = conn.send_requests(&reqs).await.expect("h3 requests");
            page_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            for (path, resp) in paths.into_iter().zip(resps) {
                assert_eq!(resp.status, 200, "GET {path} over h3");
                bodies.insert(path, resp.body.to_vec());
            }
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let requests = requests_served(TransportKind::H3) - before;
    sample_from(cfg, TransportKind::H3, page_ms, elapsed, requests, bodies)
}

fn runtime() -> tokio::runtime::Runtime {
    tokio::runtime::Builder::new_multi_thread()
        .worker_threads(2)
        .enable_all()
        .build()
        .expect("tokio runtime")
}

/// Run the full comparison. Each transport gets a fresh server (fresh
/// generation cache, so every recipe request really generates); the
/// caller is responsible for installing the latency chaos spec — see
/// [`latency_spec`].
pub fn run(cfg: TransportConfig) -> TransportRun {
    let fresh = || {
        GenerativeServer::from_config(ServerConfig {
            site: transport_site(cfg),
            ..ServerConfig::default()
        })
    };
    let h2 = h2_sample(cfg, &fresh());
    let h3 = h3_sample(cfg, &fresh());
    let byte_identical = h2.bodies == h3.bodies && !h2.bodies.is_empty();
    TransportRun {
        h2,
        h3,
        byte_identical,
    }
}

/// [`run`] with the latency chaos spec installed for the duration: the
/// self-contained entry point `sww bench-transport` and `bench-pr6` use
/// when no `--chaos` spec was supplied by the caller.
pub fn run_with_latency(cfg: TransportConfig) -> TransportRun {
    let spec = sww_core::ChaosSpec::parse(&latency_spec(cfg)).expect("latency spec");
    sww_core::faults::install(&spec);
    let out = run(cfg);
    sww_core::faults::clear();
    out
}

/// Render as a table.
pub fn table(cfg: TransportConfig, run: &TransportRun) -> Table {
    let mut t = Table::new(
        format!(
            "E18 — Page load by transport ({} pages x {} recipes, {} ms per generation)",
            cfg.pages, cfg.recipes, cfg.gen_latency_ms
        ),
        &[
            "Transport",
            "Page p50/p99 ms",
            "Pages/s",
            "Modelled pages/s",
            "Requests",
        ],
    );
    for s in [&run.h2, &run.h3] {
        t.row([
            s.transport.label().to_string(),
            format!("{:.1}/{:.1}", s.p50_ms, s.p99_ms),
            format!("{:.1}", s.wall_qps),
            format!("{:.2}", s.modelled_qps),
            s.requests.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TransportConfig {
        TransportConfig {
            pages: 3,
            recipes: 3,
            gen_latency_ms: 20,
            seed: 7,
        }
    }

    #[test]
    fn h3_dodges_the_head_of_line_and_payloads_match() {
        // Chaos and the server counters are process-global.
        let _serial = super::super::POOL_SERIAL
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let cfg = small();
        let run = run_with_latency(cfg);
        // Every request reconciled against the transport-labelled server
        // counter.
        let expect = (cfg.pages * cfg.recipes) as u64;
        assert_eq!(run.h2.requests, expect, "h2 request accounting");
        assert_eq!(run.h3.requests, expect, "h3 request accounting");
        // Byte-identical recipes: same core, different framing.
        assert!(run.byte_identical, "payloads must not depend on transport");
        // The no-HoL win: h2 serializes the K generations, h3 overlaps
        // them. Modelled exactly K×; the wall clock only has to show a
        // strict win — this test shares the host with the whole
        // workspace suite, so a hard measured ratio would gate noise.
        assert_eq!(run.modelled_speedup(), cfg.recipes as f64);
        assert!(
            run.h3.p99_ms < run.h2.p99_ms,
            "h3 p99 {:.1} ms vs h2 p99 {:.1} ms",
            run.h3.p99_ms,
            run.h2.p99_ms
        );
    }

    #[test]
    fn table_lists_both_transports() {
        let _serial = super::super::POOL_SERIAL
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let cfg = TransportConfig {
            pages: 1,
            recipes: 2,
            gen_latency_ms: 1,
            seed: 7,
        };
        let rendered = table(cfg, &run_with_latency(cfg)).render();
        assert!(rendered.contains("h2") && rendered.contains("h3"));
    }
}
